"""Benchmark-suite configuration.

Each ``test_figN_*`` module regenerates one table/figure from the paper's
evaluation (section 6): it runs the corresponding experiment harness once
(module-scoped, results cached), prints the series the paper plots, and
asserts the paper's qualitative shape. ``pytest-benchmark`` timings are
taken on one representative configuration per figure so the suite stays
runnable in minutes.
"""

from __future__ import annotations

import pytest

from repro.common.metrics import METRICS


@pytest.fixture
def fault_activity(benchmark):
    """Stamp the benchmark sample with the fault-injection delta.

    The adversary layer must be zero-cost when unconfigured, so figure
    cells are expected to record ``faults_injected == 0``;
    ``benchmarks/compare.py`` refuses to treat a fault-active run as a
    performance baseline (chaos scenarios must not pollute the fig7/8/9
    trajectory).
    """
    before = METRICS.faults_injected
    yield
    benchmark.extra_info["faults_injected"] = METRICS.faults_injected - before


def print_series(title: str, rows: list[str]) -> None:
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}")
    for row in rows:
        print(row)
