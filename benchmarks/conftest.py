"""Benchmark-suite configuration.

Each ``test_figN_*`` module regenerates one table/figure from the paper's
evaluation (section 6): it runs the corresponding experiment harness once
(module-scoped, results cached), prints the series the paper plots, and
asserts the paper's qualitative shape. ``pytest-benchmark`` timings are
taken on one representative configuration per figure so the suite stays
runnable in minutes.
"""

from __future__ import annotations


def print_series(title: str, rows: list[str]) -> None:
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}")
    for row in rows:
        print(row)
