"""FIG6 + TXT-A: the TPC-W macro-benchmark (paper Figure 6, section 6.4).

WIPS versus RBE count with the PGE and bank replicated at {1, 4, 7, 10}.
Paper shape: the four curves nearly coincide — "the effects of
replicating the PGE and Bank layers is minimal" — because only 5-10% of
bookstore traffic touches the payment tier. The TXT-A claim compares the
asynchronous PGE/Bank against synchronous variants (paper: async up to
~4% better overall).
"""

import pytest

from benchmarks.conftest import print_series
from repro.experiments.tpcw import async_vs_sync
from repro.tpcw.harness import run_tpcw

RBE_COUNTS = (7, 21, 42)
GROUP_SIZES = (1, 4, 7, 10)
DURATION_S = 45.0


@pytest.fixture(scope="module")
def grid():
    results = {}
    for n in GROUP_SIZES:
        for rbe_count in RBE_COUNTS:
            results[(n, rbe_count)] = run_tpcw(
                rbe_count=rbe_count, n_pge=n, duration_s=DURATION_S
            )
    return results


def test_fig6_series(grid, benchmark):
    def build_rows():
        rows = []
        for n in GROUP_SIZES:
            rows.append(f"-- n_pge = n_bank = {n}")
            for rbe_count in RBE_COUNTS:
                rows.append("   " + grid[(n, rbe_count)].row())
        return rows

    rows = benchmark(build_rows)
    print_series("Figure 6: TPC-W benchmark (WIPS vs RBE count)", rows)
    for result in grid.values():
        assert result.interactions > 0
    # Key paper shape: replication of the payment tier barely moves WIPS.
    for rbe_count in RBE_COUNTS:
        wips = [grid[(n, rbe_count)].wips for n in GROUP_SIZES]
        assert (max(wips) - min(wips)) / max(wips) < 0.15


def test_fig6_shape_wips_grows_with_rbes(grid):
    for n in GROUP_SIZES:
        series = [grid[(n, r)].wips for r in RBE_COUNTS]
        assert series == sorted(series)
        assert series[-1] > series[0] * 2


def test_fig6_shape_replication_effect_minimal(grid):
    """The paper's headline: PGE/Bank replication barely moves WIPS."""
    for rbe_count in RBE_COUNTS:
        wips = [grid[(n, rbe_count)].wips for n in GROUP_SIZES]
        spread = (max(wips) - min(wips)) / max(wips)
        assert spread < 0.15, (
            f"rbe={rbe_count}: replication changed WIPS by {spread:.0%}"
        )


def test_fig6_payment_fraction_in_paper_band(grid):
    """5-10% of bookstore traffic reaches the PGE (section 6.1)."""
    total = sum(r.interactions for r in grid.values())
    payments = sum(r.pge_calls for r in grid.values())
    fraction = payments / total
    assert 0.04 <= fraction <= 0.12, f"payment fraction {fraction:.1%}"


def test_txt_a_async_vs_sync_pge(benchmark):
    comparison = benchmark.pedantic(
        lambda: async_vs_sync(rbe_count=21, n_pge=4, duration_s=45.0),
        rounds=1,
        iterations=1,
    )
    print_series(
        "Section 6.4 claim (TXT-A): async vs sync PGE/Bank",
        [
            comparison.async_result.row(),
            comparison.sync_result.row(),
            f"async gain: {comparison.gain_percent:+.1f}% (paper: up to ~4%)",
        ],
    )
    # Async is at least as good; the effect is small because only the
    # payment slice of traffic is touched (same reasoning as the paper).
    assert comparison.gain_percent >= -2.0
    assert comparison.gain_percent <= 15.0
