"""FIG9: effect of asynchronous messaging (paper Figure 9).

Throughput as the window of parallel asynchronous requests grows over
{1, 5, 10, 20, 25} for n_t = n_c in {4, 7, 10}. Paper shape: large gains
over the synchronous (window=1) baseline — "as much as 225%, 239%, and
227%" for 4, 7, and 10 replicas — saturating as the window fills the
pipeline.
"""

import pytest

from benchmarks.conftest import print_series
from repro.experiments.microbench import run_async_window

GROUP_SIZES = (4, 7, 10)
WINDOWS = (1, 5, 10, 20, 25)
CALLS = 120


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for n in GROUP_SIZES:
        for window in WINDOWS:
            results[(n, window)] = run_async_window(
                n, n, window=window, total_calls=CALLS
            )
    return results


def test_fig9_series(sweep, benchmark):
    def build_rows():
        rows = []
        for n in GROUP_SIZES:
            base = sweep[(n, 1)].throughput_rps
            rows.append(f"-- nt = nc = {n}")
            for window in WINDOWS:
                result = sweep[(n, window)]
                gain = (result.throughput_rps - base) / base * 100
                rows.append(
                    f"   window={window:<3d} {result.throughput_rps:8.1f} "
                    f"req/s   gain {gain:+6.0f}%"
                )
        return rows

    rows = benchmark(build_rows)
    print_series("Figure 9: effect of asynchronous messaging", rows)
    for result in sweep.values():
        assert result.completed == CALLS
    # Key paper shape: substantial async gain at every replication degree.
    # (Paper: +225/239/227%; our simulator reproduces +~200% at n=4 and
    # +~100% at n=10 -- see EXPERIMENTS.md for the deviation discussion.)
    for n in GROUP_SIZES:
        base = sweep[(n, 1)].throughput_rps
        best = max(sweep[(n, w)].throughput_rps for w in WINDOWS)
        assert (best - base) / base * 100 >= 90


def test_fig9_shape_async_beats_sync_substantially(sweep):
    """TXT-C: the async gain lands in the paper's order of magnitude
    (reported: +225/+239/+227% at the best window; measured here +~200%
    at n=4 falling to +~100% at n=10 -- the win is still multi-x)."""
    for n in GROUP_SIZES:
        base = sweep[(n, 1)].throughput_rps
        best = max(sweep[(n, w)].throughput_rps for w in WINDOWS)
        gain = (best - base) / base * 100
        assert gain >= 90, f"n={n}: async gain only {gain:.0f}%"
        assert gain <= 400, f"n={n}: async gain implausibly high {gain:.0f}%"


def test_fig9_shape_gain_saturates(sweep):
    # The step from window 1->5 dwarfs the step from 10->25.
    for n in GROUP_SIZES:
        t1 = sweep[(n, 1)].throughput_rps
        t5 = sweep[(n, 5)].throughput_rps
        t10 = sweep[(n, 10)].throughput_rps
        t25 = sweep[(n, 25)].throughput_rps
        assert (t5 - t1) > abs(t25 - t10) * 2


def test_fig9_shape_ordering_by_replication(sweep):
    # At every window, smaller groups are faster.
    for window in WINDOWS:
        series = [sweep[(n, window)].throughput_rps for n in GROUP_SIZES]
        assert series == sorted(series, reverse=True)


def test_fig9_benchmark_representative_cell(benchmark, fault_activity):
    # Steady-state measurement (one warmup round, median of five):
    # benchmarks/compare.py gates this cell's median at 10%.
    result = benchmark.pedantic(
        lambda: run_async_window(4, 4, window=10, total_calls=40, batching="tick"),
        rounds=5,
        warmup_rounds=1,
        iterations=1,
    )
    assert result.completed == 40
