#!/usr/bin/env python
"""Run the fig8 processing-time benchmark and gate on regressions.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/compare.py                 # run + compare
    PYTHONPATH=src python benchmarks/compare.py --update-baseline

The script runs the representative Figure-8 benchmark cell under
``pytest-benchmark`` (with ``--benchmark-autosave``, so the full history
accumulates under ``.benchmarks/``), writes the trajectory point to
``BENCH_PR1.json`` at the repo root, and exits non-zero if the median
processing time regressed more than :data:`TOLERANCE` versus the stored
baseline in ``benchmarks/baseline_fig8.json``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "baseline_fig8.json"
#: Default tag for the trajectory point; later PRs pass --tag PR<n> so the
#: BENCH_PR*.json series accumulates instead of overwriting.
DEFAULT_TAG = "PR1"
BENCH_TEST = (
    "benchmarks/test_fig8_processing_time.py::"
    "test_fig8_benchmark_representative_cell"
)
#: Maximum tolerated median regression vs the stored baseline.
TOLERANCE = 0.10


def run_benchmark() -> dict:
    """Run the fig8 representative cell; return its pytest-benchmark stats."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = Path(handle.name)
    try:
        result = subprocess.run(
            [
                sys.executable, "-m", "pytest", BENCH_TEST, "-q",
                "--benchmark-autosave",
                f"--benchmark-json={json_path}",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            sys.stderr.write(result.stdout[-4000:])
            sys.stderr.write(result.stderr[-4000:])
            raise SystemExit(f"benchmark run failed ({result.returncode})")
        data = json.loads(json_path.read_text())
    finally:
        json_path.unlink(missing_ok=True)
    benchmarks = data.get("benchmarks", [])
    if not benchmarks:
        raise SystemExit("benchmark run produced no samples")
    stats = benchmarks[0]["stats"]
    machine = data.get("machine_info", {})
    return {
        "test": BENCH_TEST,
        "mean_s": stats["mean"],
        "median_s": stats["median"],
        "min_s": stats["min"],
        "max_s": stats["max"],
        "rounds": stats["rounds"],
        "machine": {
            "cpu": machine.get("cpu", {}).get("brand_raw", ""),
            "python": machine.get("python_version", ""),
            "node": machine.get("node", ""),
        },
        "datetime": data.get("datetime"),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="store this run's stats as the new regression baseline",
    )
    parser.add_argument(
        "--tag",
        default=DEFAULT_TAG,
        help="trajectory label; the point is written to BENCH_<TAG>.json",
    )
    args = parser.parse_args()

    point = run_benchmark()
    point["tag"] = args.tag
    output_path = REPO_ROOT / f"BENCH_{args.tag}.json"
    output_path.write_text(json.dumps(point, indent=2, sort_keys=True) + "\n")
    print(f"fig8 representative cell: median {point['median_s'] * 1000:.1f} ms "
          f"mean {point['mean_s'] * 1000:.1f} ms -> {output_path.name}")

    if args.update_baseline or not BASELINE_PATH.exists():
        BASELINE_PATH.write_text(
            json.dumps(point, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline written to {BASELINE_PATH.relative_to(REPO_ROOT)}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    allowed = baseline["median_s"] * (1.0 + TOLERANCE)
    ratio = point["median_s"] / baseline["median_s"]
    print(f"baseline median {baseline['median_s'] * 1000:.1f} ms; "
          f"this run is {ratio:.2f}x the baseline "
          f"(fail threshold {1.0 + TOLERANCE:.2f}x)")
    if point["median_s"] > allowed:
        print("REGRESSION: median processing time exceeds tolerance",
              file=sys.stderr)
        return 1
    print("OK: within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
