#!/usr/bin/env python
"""Run the figure benchmarks' representative cells and gate on regressions.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/compare.py                 # run + compare
    PYTHONPATH=src python benchmarks/compare.py --update-baseline
    PYTHONPATH=src python benchmarks/compare.py --tag PR3

The script runs one representative cell per gated figure — fig7
(replica scalability), fig8 (processing time), fig9 (async window), and
fig10 (sharded throughput) — under ``pytest-benchmark`` (with ``--benchmark-autosave``, so
the full history accumulates under ``.benchmarks/``), writes the
trajectory point to ``BENCH_<TAG>.json`` at the repo root, and exits
non-zero if any cell's median regressed more than :data:`TOLERANCE`
versus its stored baseline in ``benchmarks/baseline_<fig>.json``.

For continuity with the PR 1 trajectory point, the fig8 stats are also
mirrored at the top level of the output document.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
#: Default tag for the trajectory point; later PRs pass --tag PR<n> so the
#: BENCH_PR*.json series accumulates instead of overwriting.
DEFAULT_TAG = "PR2"
#: One gated representative cell per micro-benchmark figure.
BENCH_CELLS = {
    "fig7": (
        "benchmarks/test_fig7_replica_scalability.py::"
        "test_fig7_benchmark_representative_cell"
    ),
    "fig8": (
        "benchmarks/test_fig8_processing_time.py::"
        "test_fig8_benchmark_representative_cell"
    ),
    "fig9": (
        "benchmarks/test_fig9_async_window.py::"
        "test_fig9_benchmark_representative_cell"
    ),
    "fig10": (
        "benchmarks/test_fig10_sharded_throughput.py::"
        "test_fig10_benchmark_representative_cell"
    ),
}
#: Maximum tolerated median regression vs the stored baseline.
TOLERANCE = 0.10


def baseline_path(fig: str) -> Path:
    return REPO_ROOT / "benchmarks" / f"baseline_{fig}.json"


def run_benchmarks() -> dict[str, dict]:
    """Run every representative cell; return per-figure benchmark stats."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = Path(handle.name)
    try:
        result = subprocess.run(
            [
                sys.executable, "-m", "pytest", *BENCH_CELLS.values(), "-q",
                "--benchmark-autosave",
                f"--benchmark-json={json_path}",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            sys.stderr.write(result.stdout[-4000:])
            sys.stderr.write(result.stderr[-4000:])
            raise SystemExit(f"benchmark run failed ({result.returncode})")
        data = json.loads(json_path.read_text())
    finally:
        json_path.unlink(missing_ok=True)
    benchmarks = data.get("benchmarks", [])
    if not benchmarks:
        raise SystemExit("benchmark run produced no samples")
    machine = data.get("machine_info", {})
    machine_point = {
        "cpu": machine.get("cpu", {}).get("brand_raw", ""),
        "python": machine.get("python_version", ""),
        "node": machine.get("node", ""),
    }
    cells: dict[str, dict] = {}
    for fig, test in BENCH_CELLS.items():
        # Representative-cell test names are unique across figures.
        test_name = test.split("::")[-1]
        sample = next(
            (b for b in benchmarks
             if b["fullname"].split("::")[-1] == test_name),
            None,
        )
        if sample is None:
            raise SystemExit(f"benchmark run produced no sample for {fig}")
        stats = sample["stats"]
        cells[fig] = {
            "test": test,
            "mean_s": stats["mean"],
            "median_s": stats["median"],
            "min_s": stats["min"],
            "max_s": stats["max"],
            "rounds": stats["rounds"],
            # Fault-injection activity during the measured cell (the
            # fault_activity fixture's delta). Chaos scenarios measure a
            # scripted adversary, not the protocol fast path, so a
            # nonzero count marks the run unfit as a baseline.
            "faults_injected": sample.get("extra_info", {}).get(
                "faults_injected", 0
            ),
            # Cell-specific measurements (fig10 records the sharded
            # scale-out speedup here) ride along on the trajectory point.
            "extra": {
                key: value
                for key, value in sample.get("extra_info", {}).items()
                if key != "faults_injected"
            },
            "machine": machine_point,
            "datetime": data.get("datetime"),
        }
    return cells


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="store this run's stats as the new regression baselines",
    )
    parser.add_argument(
        "--tag",
        default=DEFAULT_TAG,
        help="trajectory label; the point is written to BENCH_<TAG>.json",
    )
    args = parser.parse_args()

    cells = run_benchmarks()
    # Top-level fig8 stats keep the BENCH_PR*.json series comparable with
    # the PR 1 point; the per-figure cells carry the wider gate.
    point = dict(cells["fig8"])
    point["tag"] = args.tag
    point["cells"] = cells
    point["fault_active"] = any(c["faults_injected"] for c in cells.values())
    output_path = REPO_ROOT / f"BENCH_{args.tag}.json"
    output_path.write_text(json.dumps(point, indent=2, sort_keys=True) + "\n")
    for fig, cell in cells.items():
        print(f"{fig} representative cell: median {cell['median_s'] * 1000:.1f} ms "
              f"mean {cell['mean_s'] * 1000:.1f} ms")
    print(f"trajectory point -> {output_path.name}")

    failed = []
    for fig, cell in cells.items():
        path = baseline_path(fig)
        if cell["faults_injected"]:
            print(f"{fig}: FAULT-ACTIVE run ({cell['faults_injected']} "
                  f"injections) — not eligible as a baseline", file=sys.stderr)
            if args.update_baseline or not path.exists():
                raise SystemExit(
                    f"refusing to store a fault-active run as the {fig} "
                    "baseline"
                )
        if args.update_baseline or not path.exists():
            path.write_text(json.dumps(cell, indent=2, sort_keys=True) + "\n")
            print(f"{fig}: baseline written to {path.relative_to(REPO_ROOT)}")
            continue
        baseline = json.loads(path.read_text())
        allowed = baseline["median_s"] * (1.0 + TOLERANCE)
        ratio = cell["median_s"] / baseline["median_s"]
        print(f"{fig}: baseline median {baseline['median_s'] * 1000:.1f} ms; "
              f"this run is {ratio:.2f}x the baseline "
              f"(fail threshold {1.0 + TOLERANCE:.2f}x)")
        if cell["median_s"] > allowed:
            failed.append(fig)
    if failed:
        print(f"REGRESSION: median processing time exceeds tolerance "
              f"for {', '.join(failed)}", file=sys.stderr)
        return 1
    print("OK: all gated cells within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
