"""FIG8: effect of non-zero processing time (paper Figure 8).

Request completion time and relative replication overhead as per-request
CPU time sweeps 0..20 ms. Paper shape: completion time grows linearly in
CPU time for every replication degree; the *relative* overhead decays
quickly (section 6.4 quantifies: 4-replica throughput goes from ~31% of
unreplicated at null ops to ~66% at 6 ms).
"""

import pytest

from benchmarks.conftest import print_series
from repro.experiments.microbench import run_two_tier

GROUP_SIZES = (1, 4, 7, 10)
CPU_POINTS_MS = (0, 2, 6, 12, 20)
CALLS = 60


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for n in GROUP_SIZES:
        for cpu_ms in CPU_POINTS_MS:
            results[(n, cpu_ms)] = run_two_tier(
                n, n, total_calls=CALLS, cpu_ms=cpu_ms
            )
    return results


def test_fig8_series(sweep, benchmark):
    def build_rows():
        rows = []
        for n in GROUP_SIZES:
            rows.append(f"-- nt = nc = {n}")
            for cpu_ms in CPU_POINTS_MS:
                result = sweep[(n, cpu_ms)]
                overhead = (
                    result.ms_per_request / sweep[(1, cpu_ms)].ms_per_request
                )
                rows.append(
                    f"   cpu={cpu_ms:>2d}ms  {result.ms_per_request:7.3f} "
                    f"ms/req   relative overhead {overhead:4.2f}x"
                )
        return rows

    rows = benchmark(build_rows)
    print_series("Figure 8: effect of non-zero processing time", rows)
    # Key paper shape: overhead decays with processing time (TXT-B band).
    at_null = sweep[(4, 0)].throughput_rps / sweep[(1, 0)].throughput_rps
    at_6ms = sweep[(4, 6)].throughput_rps / sweep[(1, 6)].throughput_rps
    assert at_6ms > at_null * 1.5


def test_fig8_shape_completion_time_linear_in_cpu(sweep):
    for n in GROUP_SIZES:
        times = [sweep[(n, c)].ms_per_request for c in CPU_POINTS_MS]
        assert times == sorted(times)
        # Slope dominated by the CPU term at the high end: 20ms of work
        # must cost at least 20ms of completion time.
        assert times[-1] >= 20.0


def test_fig8_shape_relative_overhead_decays(sweep):
    for n in (4, 7, 10):
        overheads = [
            sweep[(n, c)].ms_per_request / sweep[(1, c)].ms_per_request
            for c in CPU_POINTS_MS
        ]
        # Strictly decaying from null ops to 20ms within tolerance.
        assert overheads[0] > overheads[-1]
        assert all(a >= b * 0.9 for a, b in zip(overheads, overheads[1:]))
        # At 20ms of real work the overhead is small (paper: replication
        # justified for real workloads).
        assert overheads[-1] < 1.6


def test_fig8_paper_throughput_claims(sweep):
    """TXT-B: ~31% of unreplicated at null ops -> ~66% at 6 ms (n=4)."""
    at_null = sweep[(4, 0)].throughput_rps / sweep[(1, 0)].throughput_rps
    at_6ms = sweep[(4, 6)].throughput_rps / sweep[(1, 6)].throughput_rps
    print_series(
        "Section 6.4 claim (TXT-B)",
        [
            f"4-replica relative throughput at null ops: {at_null:5.1%} (paper ~31%)",
            f"4-replica relative throughput at 6ms CPU:  {at_6ms:5.1%} (paper ~66%)",
        ],
    )
    assert 0.20 <= at_null <= 0.45
    assert 0.55 <= at_6ms <= 0.90
    assert at_6ms > at_null * 1.5


def test_fig8_benchmark_representative_cell(benchmark, fault_activity):
    # Steady-state measurement: one warmup round populates the encode/
    # digest caches and import-time state, then the median of five rounds
    # is the trajectory point benchmarks/compare.py gates on.
    result = benchmark.pedantic(
        lambda: run_two_tier(4, 4, total_calls=20, cpu_ms=6, batching="tick"),
        rounds=5,
        warmup_rounds=1,
        iterations=1,
    )
    assert result.completed == 20
