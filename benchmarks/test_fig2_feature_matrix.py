"""FIG2: the unique-properties feature matrix (paper Figure 2).

Regenerates the 9-property x 4-system table and checks it against the
paper's section 3 prose. The Perpetual-WS column is additionally backed
by executable probes elsewhere in the test suite (see the probe paths).
"""

from benchmarks.conftest import print_series
from repro.baselines.features import (
    FEATURE_MATRIX,
    PERPETUAL_WS,
    PROPERTIES,
    SYSTEMS,
    render_matrix,
    supports,
)


def test_fig2_feature_matrix(benchmark):
    table = benchmark(render_matrix)
    print_series("Figure 2: unique properties of Perpetual-WS", table.split("\n"))
    # Perpetual-WS supports everything except dynamic discovery.
    supported = [p for p in PROPERTIES if supports(PERPETUAL_WS, p)]
    assert len(supported) == len(PROPERTIES) - 1
    # No other system matches Perpetual-WS's coverage.
    for system in SYSTEMS:
        if system == PERPETUAL_WS:
            continue
        coverage = sum(supports(system, p) for p in PROPERTIES)
        assert coverage < len(supported)


def test_fig2_probes_exist():
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    for (system, prop), claim in FEATURE_MATRIX.items():
        if claim.probe:
            assert (root / claim.probe).exists(), claim.probe
