"""Ablation: responder reply-bundling vs all-to-all replies.

Figure 1 stages 5-6 exist "to avoid the nt x nc messages that would
result from having all voters of t send replies to all drivers of c".
This ablation quantifies the reply-path message counts under both
designs across the paper's replication grid, and cross-checks the
responder path's measured message count in a live run.
"""

import pytest

from benchmarks.conftest import print_series
from repro.experiments.ablations import reply_path_ablation

GROUP_SIZES = (1, 4, 7, 10)


@pytest.fixture(scope="module")
def rows():
    return reply_path_ablation(GROUP_SIZES)


def test_ablation_series(rows, benchmark):
    rows = benchmark(lambda: reply_path_ablation(GROUP_SIZES))
    lines = [
        f"nt={row.n_target:<3d} nc={row.n_calling:<3d} "
        f"responder {row.responder_messages:>4d} msgs   "
        f"all-to-all {row.all_to_all_messages:>4d} msgs   "
        f"saving {row.savings_factor:4.1f}x"
        for row in rows
    ]
    print_series("Ablation: responder bundling vs all-to-all replies", lines)


def test_responder_never_worse_at_scale(rows):
    for row in rows:
        if row.n_target >= 4 and row.n_calling >= 4:
            assert row.responder_messages < row.all_to_all_messages


def test_saving_grows_quadratically(rows):
    small = next(r for r in rows if (r.n_target, r.n_calling) == (4, 4))
    large = next(r for r in rows if (r.n_target, r.n_calling) == (10, 10))
    assert large.savings_factor > small.savings_factor


def test_live_reply_path_message_count():
    """Measured: stage 5-6 traffic in a live 4x4 run matches the formula's
    order (nt + nc, not nt * nc)."""
    from repro.clbft.messages import message_from_wire
    from repro.common.encoding import decode_payload
    from repro.perpetual.messages import ReplyBundle, ReplyForward
    from repro.transport.wire import WireEnvelope
    from repro.ws.deployment import Deployment
    from tests.integration.helpers import counter_service, scripted_caller

    deployment = Deployment(name="reply-count")
    deployment.declare("caller", 4)
    deployment.declare("target", 4)
    deployment.add_service("target", counter_service())
    results = []
    deployment.add_service("caller", scripted_caller("target", 1, results))

    reply_messages = [0]
    original_post = deployment.sim.post_message

    def counting_post(src, dst, msg, size_bytes):
        if isinstance(msg, WireEnvelope):
            try:
                decoded = message_from_wire(decode_payload(msg.payload))
            except Exception:
                decoded = None
            if isinstance(decoded, (ReplyForward, ReplyBundle)):
                reply_messages[0] += 1
        original_post(src, dst, msg, size_bytes)

    deployment.sim.post_message = counting_post
    deployment.run(seconds=30)
    assert results
    # Responder path: ~(nt - 1) forwards + nc bundles = 7, far below the
    # 16-message all-to-all mesh (retransmissions may add a few).
    assert reply_messages[0] <= 10, reply_messages[0]
