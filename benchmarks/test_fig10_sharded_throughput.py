"""FIG10: aggregate throughput vs. group count under sharding (PR 9).

No counterpart in the paper's evaluation — the paper runs one replicated
group per service chain. This figure measures the sharding tentpole's
payoff: a scenario split into independent BFT groups, each with its own
bank -> PGE -> bookstore chain and its own RBE population, executes the
groups concurrently, so aggregate throughput grows with the group count
(weak scaling: every added group brings its own clients and its own
worker set).

The scale-out cell runs on ``ProcessRuntime`` — the substrate with real
OS-process parallelism — and compares the single-group TPC-W preset
against ``sharded-tpcw`` with 3 groups at the same per-group population.
The workload is think-time-bound (closed-loop RBEs), so the aggregate
scales with the number of independent populations rather than raw CPU
count, and the >= 2x acceptance bound holds on small containers.

The gated representative cell (``benchmarks/compare.py``, 10% median
gate) is the deterministic simulator running the 2-group sharded echo
preset through its per-group sub-kernels; the measured process-substrate
speedup is stamped on the sample via ``extra_info`` so every
``BENCH_<TAG>.json`` trajectory point records it.
"""

import pytest

from benchmarks.conftest import print_series
from repro.scenario.presets import (
    sharded_echo_scenario,
    sharded_tpcw_scenario,
    tpcw_scenario,
)
from repro.scenario.runtime import run_scenario

#: The sweep: the single-group baseline and the 3-group sharded split.
GROUP_COUNTS = (1, 3)
#: Closed-loop population per group (every group gets its own RBEs).
RBES_PER_GROUP = 3
#: Unreplicated inner tiers keep the process count per group small.
N_PGE = 1
#: Wall-clock budget per cell; think-time-bound, so short runs suffice.
DURATION_S = 6.0
THINK_TIME_US = 300_000
SEED = 11


def aggregate_throughput_rps(metrics) -> float:
    """Completed RBE interactions per second of elapsed run time."""
    completed = sum(
        svc.completed_calls
        for name, svc in metrics.services.items()
        if "rbe" in name
    )
    elapsed_s = metrics.now_us / 1e6
    return completed / elapsed_s if elapsed_s > 0 else 0.0


@pytest.fixture(scope="module")
def process_sweep():
    results = {}
    for groups in GROUP_COUNTS:
        if groups == 1:
            spec = tpcw_scenario(
                rbe_count=RBES_PER_GROUP,
                n_pge=N_PGE,
                duration_s=DURATION_S,
                think_time_mean_us=THINK_TIME_US,
                seed=SEED,
                name="fig10-tpcw-1g",
            )
        else:
            spec = sharded_tpcw_scenario(
                group_count=groups,
                rbes_per_group=RBES_PER_GROUP,
                n_pge=N_PGE,
                duration_s=DURATION_S,
                think_time_mean_us=THINK_TIME_US,
                seed=SEED,
                name=f"fig10-tpcw-{groups}g",
            )
        results[groups] = run_scenario(spec, runtime="process")
    return results


def test_fig10_series(process_sweep):
    rows = []
    base = aggregate_throughput_rps(process_sweep[GROUP_COUNTS[0]])
    for groups in GROUP_COUNTS:
        rps = aggregate_throughput_rps(process_sweep[groups])
        rows.append(
            f"   groups={groups}  {rps:8.1f} interactions/s   "
            f"speedup {rps / base:4.2f}x"
        )
    print_series("Figure 10: sharded TPC-W aggregate throughput", rows)
    for metrics in process_sweep.values():
        assert sum(
            svc.completed_calls for svc in metrics.services.values()
        ) > 0


def test_fig10_scaleout_meets_acceptance_bound(process_sweep):
    """The PR 9 acceptance criterion: 3 groups >= 2x one group."""
    base = aggregate_throughput_rps(process_sweep[1])
    sharded = aggregate_throughput_rps(process_sweep[3])
    assert base > 0
    assert sharded / base >= 2.0, (
        f"3-group sharded TPC-W only {sharded / base:.2f}x the "
        f"single-group baseline ({sharded:.1f} vs {base:.1f} rps)"
    )


def test_fig10_groups_stay_isolated(process_sweep):
    """Every group completes work; no cross-group calls in the preset."""
    metrics = process_sweep[3]
    per_group = metrics.by_group()
    assert set(per_group) == {"g0", "g1", "g2"}
    for group, summary in per_group.items():
        assert summary["completed_calls"] > 0, group
    assert metrics.counters["cross_group_calls"] == 0
    assert metrics.counters["requests_routed"] > 0


def test_fig10_benchmark_representative_cell(
    benchmark, fault_activity, process_sweep
):
    # Steady-state measurement (one warmup round, median of five):
    # benchmarks/compare.py gates this cell's median at 10%. The cell is
    # the deterministic sim substrate running the 2-group sharded echo
    # preset end to end through its per-group sub-kernels.
    spec = sharded_echo_scenario(group_count=2, n=4, total_calls=6)
    result = benchmark.pedantic(
        lambda: run_scenario(spec, runtime="sim"),
        rounds=5,
        warmup_rounds=1,
        iterations=1,
    )
    for group in ("g0", "g1"):
        assert result.services[f"{group}-caller"].completed_calls == 6
        assert result.services[f"{group}-caller"].aborted_calls == 0
    # Record the scale-out measurement on the trajectory point.
    base = aggregate_throughput_rps(process_sweep[1])
    sharded = aggregate_throughput_rps(process_sweep[3])
    benchmark.extra_info["throughput_1g_rps"] = round(base, 2)
    benchmark.extra_info["throughput_3g_rps"] = round(sharded, 2)
    benchmark.extra_info["sharded_speedup"] = round(sharded / base, 2)
