"""Ablation: MAC vs digital-signature authentication (DESIGN.md section 5).

The paper's section 3 argument for MACs ("three orders of magnitude
faster" than signatures, hence better scaling to large replica groups),
made measurable: the identical two-tier benchmark under both cost models.
"""

import pytest

from benchmarks.conftest import print_series
from repro.experiments.ablations import crypto_ablation

GROUP_SIZES = (1, 4, 7)


@pytest.fixture(scope="module")
def rows():
    return crypto_ablation(group_sizes=GROUP_SIZES, total_calls=40)


def test_ablation_series(rows, benchmark):
    lines = benchmark(
        lambda: [
            f"n={row.n:<3d} MAC {row.mac_rps:8.1f} req/s   "
            f"signatures {row.signature_rps:8.1f} req/s   "
            f"slowdown {row.slowdown:5.2f}x"
            for row in rows
        ]
    )
    print_series("Ablation: MAC vs digital-signature authentication", lines)
    assert all(row.signature_rps < row.mac_rps for row in rows)


def test_signatures_slower_everywhere(rows):
    for row in rows:
        assert row.signature_rps < row.mac_rps


def test_signature_penalty_grows_with_group_size(rows):
    """The scalability argument: the signature slowdown worsens as the
    replica group (and thus per-request message count) grows."""
    slowdowns = [row.slowdown for row in rows]
    assert slowdowns == sorted(slowdowns)
    assert slowdowns[-1] > slowdowns[0] * 1.5


def test_benchmark_signature_cell(benchmark):
    from repro.crypto.cost import SIGNATURE_COST_MODEL
    from repro.experiments.microbench import run_two_tier

    result = benchmark.pedantic(
        lambda: run_two_tier(4, 4, total_calls=20,
                             cost_model=SIGNATURE_COST_MODEL),
        rounds=1,
        iterations=1,
    )
    assert result.completed == 20
