"""Ablation: MAC vs digital-signature authentication (DESIGN.md section 5).

The paper's section 3 argument for MACs ("three orders of magnitude
faster" than signatures, hence better scaling to large replica groups),
made measurable: the identical two-tier benchmark under both cost models.
"""

import pytest

from benchmarks.conftest import print_series
from repro.crypto.cost import MAC_COST_MODEL, SIGNATURE_COST_MODEL
from repro.experiments.ablations import crypto_ablation
from repro.transport.channel import ChannelAdapter

GROUP_SIZES = (1, 4, 7)


@pytest.fixture(scope="module")
def rows():
    return crypto_ablation(group_sizes=GROUP_SIZES, total_calls=40)


def test_ablation_series(rows, benchmark):
    lines = benchmark(
        lambda: [
            f"n={row.n:<3d} MAC {row.mac_rps:8.1f} req/s   "
            f"signatures {row.signature_rps:8.1f} req/s   "
            f"slowdown {row.slowdown:5.2f}x"
            for row in rows
        ]
    )
    print_series("Ablation: MAC vs digital-signature authentication", lines)
    assert all(row.signature_rps < row.mac_rps for row in rows)


def test_signatures_slower_everywhere(rows):
    for row in rows:
        assert row.signature_rps < row.mac_rps


def test_signature_penalty_grows_with_group_size(rows):
    """The scalability argument, with expectations derived from the cost
    model rather than hard-coded series.

    The throughput *ratio* saturates once fixed wire/CPU work dilutes the
    crypto term, so it is not monotone in ``n``. What the cost model does
    guarantee:

    - the absolute per-request time paid to signatures grows with the
      group (every extra replica adds signed envelopes to a request's
      critical path, each ``sign_us`` dearer than its MAC equivalent);
    - every measured penalty is at least one ``sign_us`` (each request
      crosses at least one signed envelope);
    - every slowdown exceeds the floor from swapping one envelope's
      verification from MAC to signature atop the fixed wire cost.
    """
    penalties_ms = [
        1000.0 / row.signature_rps - 1000.0 / row.mac_rps for row in rows
    ]
    assert penalties_ms == sorted(penalties_ms)
    floor_ms = SIGNATURE_COST_MODEL.sign_us / 1000.0
    assert all(p >= floor_ms for p in penalties_ms)
    wire_us = ChannelAdapter.DEFAULT_WIRE_CPU_US
    for row in rows:
        verify_floor = (wire_us + SIGNATURE_COST_MODEL.verification_cost_us()) / (
            wire_us
            + MAC_COST_MODEL.verification_cost_us()
            + MAC_COST_MODEL.per_receiver_us * row.n
        )
        assert row.slowdown > verify_floor


def test_benchmark_signature_cell(benchmark):
    from repro.crypto.cost import SIGNATURE_COST_MODEL
    from repro.experiments.microbench import run_two_tier

    result = benchmark.pedantic(
        lambda: run_two_tier(4, 4, total_calls=20,
                             cost_model=SIGNATURE_COST_MODEL),
        rounds=1,
        iterations=1,
    )
    assert result.completed == 20
