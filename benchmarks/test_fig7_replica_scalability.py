"""FIG7: replica scalability under null requests (paper Figure 7).

Throughput of a two-tier closed synchronous loop over the full
{1,4,7,10} x {1,4,7,10} replication grid. Paper shape: throughput falls
as either group grows, the unreplicated pair is fastest, and the marginal
cost of additional replicas shrinks (scalability argument, section 6.4).
"""

import pytest

from benchmarks.conftest import print_series
from repro.experiments.microbench import run_two_tier

GROUP_SIZES = (1, 4, 7, 10)
CALLS = 80


@pytest.fixture(scope="module")
def grid():
    results = {}
    for n_target in GROUP_SIZES:
        for n_calling in GROUP_SIZES:
            results[(n_calling, n_target)] = run_two_tier(
                n_calling, n_target, total_calls=CALLS
            )
    return results


def test_fig7_series(grid, benchmark):
    def build_rows():
        rows = []
        for n_target in GROUP_SIZES:
            rows.append(f"-- nt = {n_target}")
            for n_calling in GROUP_SIZES:
                rows.append("   " + grid[(n_calling, n_target)].row())
        return rows

    rows = benchmark(build_rows)
    print_series("Figure 7: replica scalability (null requests)", rows)
    for result in grid.values():
        assert result.completed == CALLS
    # Key paper shapes, validated in --benchmark-only runs too.
    assert grid[(1, 1)].throughput_rps == max(
        r.throughput_rps for r in grid.values()
    )
    ratio = grid[(4, 4)].throughput_rps / grid[(1, 1)].throughput_rps
    assert 0.20 <= ratio <= 0.45


def test_fig7_shape_throughput_decreases_with_replication(grid):
    # Along each row and column of the grid, adding replicas to either
    # side never increases throughput beyond noise.
    for n_target in GROUP_SIZES:
        series = [grid[(nc, n_target)].throughput_rps for nc in GROUP_SIZES]
        assert all(a >= b * 0.98 for a, b in zip(series, series[1:]))
    for n_calling in GROUP_SIZES:
        series = [grid[(n_calling, nt)].throughput_rps for nt in GROUP_SIZES]
        assert all(a >= b * 0.98 for a, b in zip(series, series[1:]))


def test_fig7_shape_unreplicated_fastest(grid):
    fastest = max(grid.values(), key=lambda r: r.throughput_rps)
    assert (fastest.n_calling, fastest.n_target) == (1, 1)


def test_fig7_shape_paper_replication_cost_band(grid):
    # Section 6.4: 4x4 null-op throughput is ~31% of the unreplicated pair.
    ratio = grid[(4, 4)].throughput_rps / grid[(1, 1)].throughput_rps
    assert 0.20 <= ratio <= 0.45, f"4x4/1x1 ratio {ratio:.2f}"


def test_fig7_shape_marginal_cost_shrinks(grid):
    # The drop 1->4 is proportionally larger than the drop 7->10: the
    # overhead growth decelerates, the paper's scalability argument.
    t = {n: grid[(n, n)].throughput_rps for n in GROUP_SIZES}
    drop_1_4 = t[1] / t[4]
    drop_7_10 = t[7] / t[10]
    assert drop_1_4 > drop_7_10


def test_fig7_benchmark_representative_cell(benchmark, fault_activity):
    # Steady-state measurement (one warmup round, median of five):
    # benchmarks/compare.py gates this cell's median at 10%.
    result = benchmark.pedantic(
        lambda: run_two_tier(4, 4, total_calls=30, batching="tick"),
        rounds=5,
        warmup_rounds=1,
        iterations=1,
    )
    assert result.completed == 30
