"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` to build PEP 660 editable wheels; on
offline machines without it, ``python setup.py develop`` installs the same
editable package through setuptools directly.
"""

from setuptools import setup

setup()
