#!/bin/sh
# Pre-merge gate: static analysis clean, docs in sync, then tier-1 passes.
# Run from the repo root:  sh tools/check.sh
# Fast mode (analysis + docs + unit tests only, skips integration):
#   sh tools/check.sh --fast
set -e

cd "$(dirname "$0")/.."
export PYTHONPATH=src

FAST=0
case "${1:-}" in
    --fast) FAST=1 ;;
    "") ;;
    *) echo "usage: sh tools/check.sh [--fast]" >&2; exit 2 ;;
esac

echo "== repro.analysis (invariant linter) =="
python -m repro.analysis src

echo "== docs (CLI examples + rule tables in sync) =="
python tools/check_docs.py

if [ "$FAST" = 1 ]; then
    echo "== unit + property tests (fast mode) =="
    python -m pytest -x -q tests/unit tests/property
else
    echo "== tier-1 tests (soak + net excluded) =="
    python -m pytest -x -q
fi

echo "== all gates passed =="
