#!/bin/sh
# Pre-merge gate: static analysis clean, docs in sync, then tier-1 passes.
# Run from the repo root:  sh tools/check.sh
set -e

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== repro.analysis (invariant linter) =="
python -m repro.analysis src

echo "== docs (CLI examples + rule tables in sync) =="
python tools/check_docs.py

echo "== tier-1 tests (soak excluded) =="
python -m pytest -x -q

echo "== all gates passed =="
