#!/bin/sh
# Pre-merge gate: static analysis must be clean, then tier-1 must pass.
# Run from the repo root:  sh tools/check.sh
set -e

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== repro.analysis (invariant linter) =="
python -m repro.analysis src

echo "== tier-1 tests (soak excluded) =="
python -m pytest -x -q

echo "== all gates passed =="
