#!/usr/bin/env python
"""Docs gate: every CLI example in docs/ must name real modules/flags.

Two checks over ``docs/*.md``:

1. every ``console``/``bash`` code fence line invoking ``python -m
   repro...`` names an importable module (and subcommand) whose
   ``--help`` output mentions every ``--flag`` the example uses — docs
   cannot drift to renamed flags or deleted modules;
2. the rule table in ``docs/analysis.md`` (rows ``| `ID` | title |``)
   matches the live ``python -m repro.analysis --rules`` catalog, both
   directions: no undocumented rules, no documented ghosts, no stale
   titles.

Exit status is the number of failures (0 = docs in sync).
"""

from __future__ import annotations

import re
import shlex
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))

_FENCE = re.compile(r"^```(\w*)\s*$")
_RULE_ROW = re.compile(r"^\|\s*`([A-Z]+\d+)`\s*\|\s*(.+?)\s*\|")
_RULE_LINE = re.compile(r"^([A-Z]+\d+)\s+(\S.*)$")

_HELP_CACHE: dict[tuple[str, ...], str] = {}


def fence_lines(path: Path, kinds=("console", "bash", "sh")):
    """Yield (lineno, line) for lines inside fences of the given kinds."""
    kind = None
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        match = _FENCE.match(line.strip())
        if match:
            kind = None if kind is not None else match.group(1)
            continue
        if kind in kinds:
            yield lineno, line


def parse_invocation(line: str):
    """Extract (module, subcommand, flags) from a ``python -m repro...``
    example line, or None if the line is not one."""
    text = line.strip()
    if text.startswith("$"):
        text = text[1:].strip()
    # Drop shell redirections/pipes: only the invocation itself is checked.
    text = re.split(r"\s(?:\||>|>>|<)\s?", text)[0]
    try:
        tokens = shlex.split(text)
    except ValueError:
        tokens = text.split()
    for i, token in enumerate(tokens):
        if token == "-m" and i + 1 < len(tokens):
            module = tokens[i + 1]
            if not module.startswith("repro"):
                return None
            rest = tokens[i + 2:]
            sub = None
            if rest and re.fullmatch(r"[a-z][a-z0-9-]*", rest[0]):
                sub = rest[0]
            flags = [t.split("=")[0] for t in rest if t.startswith("--")]
            return module, sub, flags
    return None


def help_text(module: str, sub: str | None) -> str | None:
    """``python -m module [sub] --help`` output, or None on failure."""
    key = (module, sub or "")
    if key not in _HELP_CACHE:
        cmd = [sys.executable, "-m", module] + ([sub] if sub else []) + ["--help"]
        proc = subprocess.run(
            cmd, cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        _HELP_CACHE[key] = proc.stdout + proc.stderr if proc.returncode == 0 else None
    return _HELP_CACHE[key]


def check_cli_examples() -> list[str]:
    failures = []
    for path in DOCS:
        for lineno, line in fence_lines(path):
            parsed = parse_invocation(line)
            if parsed is None:
                continue
            module, sub, flags = parsed
            where = f"{path.relative_to(REPO_ROOT)}:{lineno}"
            text = help_text(module, sub)
            if text is None and sub is not None:
                # Maybe the token was a positional, not a subcommand.
                sub, text = None, help_text(module, None)
            if text is None:
                failures.append(
                    f"{where}: `python -m {module}"
                    f"{' ' + sub if sub else ''} --help` failed"
                )
                continue
            for flag in flags:
                if flag not in text:
                    failures.append(
                        f"{where}: flag {flag} not in "
                        f"`python -m {module}{' ' + sub if sub else ''} --help`"
                    )
    return failures


def check_rule_table() -> list[str]:
    page = REPO_ROOT / "docs" / "analysis.md"
    documented = {}
    for line in page.read_text().splitlines():
        match = _RULE_ROW.match(line.strip())
        if match and match.group(2) != "title":  # skip the header row
            documented[match.group(1)] = match.group(2)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--rules"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    if proc.returncode != 0:
        return [f"python -m repro.analysis --rules failed: {proc.stderr.strip()}"]
    live = {}
    for line in proc.stdout.splitlines():
        match = _RULE_LINE.match(line)
        if match:
            live[match.group(1)] = match.group(2).strip()
    failures = []
    for rule_id in sorted(set(live) - set(documented)):
        failures.append(f"docs/analysis.md: rule {rule_id} missing from the table")
    for rule_id in sorted(set(documented) - set(live)):
        failures.append(f"docs/analysis.md: rule {rule_id} no longer exists")
    for rule_id in sorted(set(documented) & set(live)):
        if documented[rule_id] != live[rule_id]:
            failures.append(
                f"docs/analysis.md: {rule_id} title drifted — docs say "
                f"{documented[rule_id]!r}, --rules says {live[rule_id]!r}"
            )
    return failures


def main() -> int:
    failures = check_cli_examples() + check_rule_table()
    for failure in failures:
        print(f"DOCS: {failure}", file=sys.stderr)
    if not failures:
        print(f"docs in sync: {len(DOCS)} pages, CLI examples and rule table OK")
    return min(len(failures), 100)


if __name__ == "__main__":
    raise SystemExit(main())
