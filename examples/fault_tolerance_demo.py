#!/usr/bin/env python3
"""Fault-tolerance tour: crash faults, a dead primary, and deterministic aborts.

Three scenarios on the same two-tier deployment (4-replica caller,
4-replica target):

1. one crashed target replica — invisible to the caller;
2. a crashed target *primary* — the target's CLBFT view change restores
   liveness and the caller never notices beyond latency;
3. a fully compromised target (all replicas dead, beyond any fault
   bound) — callers with a timeout abort *deterministically*: every
   caller replica raises the same SOAP fault at the same logical point,
   so the calling service stays consistent and live (the paper's fault
   isolation guarantee).

Run:  python examples/fault_tolerance_demo.py
"""

from repro.sim.network import LanModel, PartitionModel
from repro.ws.api import MessageContext, MessageHandler, Options
from repro.ws.deployment import Deployment


def counter_service():
    counter = 0
    while True:
        request = yield MessageHandler.receive_request()
        counter += 1
        yield MessageHandler.send_reply(
            MessageContext(body={"counter": counter}), request
        )


def make_caller(outcomes, calls, timeout_ms=None):
    def app():
        for i in range(calls):
            reply = yield MessageHandler.send_receive(
                MessageContext(
                    to="target",
                    body={"i": i},
                    options=Options(timeout_ms=timeout_ms),
                )
            )
            outcomes.append("fault" if reply.is_fault else reply.body["counter"])

    return app


def build(timeout_ms=None, calls=3):
    network = PartitionModel(LanModel())
    deployment = Deployment(name="fault-demo", network=network)
    deployment.declare("caller", 4)
    deployment.declare("target", 4)
    deployment.add_service(
        "target",
        counter_service,
        clbft_overrides={"view_change_timeout_us": 150_000},
    )
    outcomes: list = []
    caller = deployment.add_service(
        "caller", make_caller(outcomes, calls, timeout_ms)
    )
    return deployment, network, outcomes, caller


def main() -> None:
    print("-- scenario 1: one crashed target backup (within f=1)")
    deployment, network, outcomes, caller = build()
    network.kill("target/v3")
    network.kill("target/d3")
    deployment.run(seconds=120)
    print(f"   outcomes: {sorted(set(outcomes))}, "
          f"completed={caller.group.drivers[0].completed_calls}")
    assert caller.group.drivers[0].completed_calls == 3

    print("-- scenario 2: crashed target PRIMARY (view change inside target)")
    deployment, network, outcomes, caller = build()
    network.kill("target/v0")
    network.kill("target/d0")
    deployment.run(seconds=300)
    views = {v.replica.view for v in
             deployment.services["target"].group.voters[1:]}
    print(f"   completed={caller.group.drivers[0].completed_calls}, "
          f"target views now {views}")
    assert caller.group.drivers[0].completed_calls == 3
    assert min(views) >= 1

    print("-- scenario 3: compromised target, callers abort deterministically")
    deployment, network, outcomes, caller = build(timeout_ms=400, calls=2)
    for i in range(4):
        network.kill(f"target/v{i}")
        network.kill(f"target/d{i}")
    deployment.run(seconds=120)
    print(f"   outcomes across all 4 caller replicas: {outcomes}")
    assert outcomes == ["fault"] * 8
    assert caller.group.drivers[0].aborted_calls == 2
    print("OK: liveness and replica consistency held in all three scenarios.")


if __name__ == "__main__":
    main()
