#!/usr/bin/env python3
"""The paper's n-tier scenario: store -> payment gateway -> bank.

Reproduces the Figure 5 chain (minus the RBE farm): an unreplicated
storefront calls a replicated Payment Gateway Emulator, which calls a
replicated issuing bank — different replication degrees interoperating,
with the PGE fully asynchronous (it keeps serving new authorisations
while bank calls are in flight).

The second half crashes a PGE replica mid-run to show the pipeline
absorbing a fault within its tolerance.

Run:  python examples/payment_pipeline.py
"""

from repro.apps.payment import bank_app, pge_app
from repro.sim.network import LanModel, PartitionModel
from repro.ws.api import MessageContext, MessageHandler
from repro.ws.deployment import Deployment


def make_store(outcomes, payments):
    def app():
        for i, (card, cents) in enumerate(payments):
            reply = yield MessageHandler.send_receive(
                MessageContext(
                    to="pge", body={"card": card, "amount_cents": cents}
                )
            )
            if reply.is_fault:
                outcomes.append((i, "fault"))
            else:
                outcomes.append(
                    (i, "approved" if reply.body["approved"] else "declined")
                )

    return app


def run(crash_pge_replica: bool) -> list:
    network = PartitionModel(LanModel())
    deployment = Deployment(name="payment-pipeline", network=network)
    deployment.declare("store", 1)
    deployment.declare("pge", 4)   # tolerates 1 Byzantine fault
    deployment.declare("bank", 7)  # tolerates 2

    deployment.add_service("bank", lambda: bank_app(card_limit_cents=100_000))
    deployment.add_service("pge", pge_app(bank_endpoint="bank"))

    payments = [
        ("4111-aaaa", 25_000),
        ("4111-bbbb", 60_000),
        ("4111-aaaa", 90_000),   # pushes card aaaa past its limit
        ("4111-cccc", 10_000),
    ]
    outcomes: list = []
    deployment.add_service("store", make_store(outcomes, payments))

    if crash_pge_replica:
        network.kill("pge/v2")
        network.kill("pge/d2")

    deployment.run(seconds=120)
    return outcomes


def main() -> None:
    print("-- healthy run")
    healthy = run(crash_pge_replica=False)
    for i, outcome in healthy:
        print(f"   payment {i}: {outcome}")
    assert [o for _, o in healthy] == [
        "approved", "approved", "declined", "approved",
    ]

    print("-- with one crashed PGE replica (within f=1)")
    degraded = run(crash_pge_replica=True)
    for i, outcome in degraded:
        print(f"   payment {i}: {outcome}")
    assert degraded == healthy, "fault within tolerance must be invisible"
    print("OK: identical business outcomes despite the crashed replica.")


if __name__ == "__main__":
    main()
