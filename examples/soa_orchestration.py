#!/usr/bin/env python3
"""SOA orchestration: a replicated saga with a long-running active thread.

The application model the paper argues existing BFT middleware cannot
express (section 3): the orchestrator *actively* drives a multi-step
order-fulfilment process — reserving inventory, authorising payment,
confirming shipment, compensating on failure — while consulting the
replica-agreed clock. Every one of its 4 replicas executes the saga
identically.

Run:  python examples/soa_orchestration.py
"""

from collections import Counter

from repro.apps.orchestrator import (
    inventory_app,
    orchestrator_app,
    shipping_app,
)
from repro.apps.payment import bank_app
from repro.ws.deployment import Deployment

ORDERS = [
    {"order_id": 101, "item": "laptop", "qty": 1, "card": "4-alice",
     "amount_cents": 120_000},
    {"order_id": 102, "item": "laptop", "qty": 5, "card": "4-bob",
     "amount_cents": 600_000},   # not enough stock
    {"order_id": 103, "item": "phone", "qty": 1, "card": "4-carol",
     "amount_cents": 80_000_00},  # card limit exceeded -> compensation
    {"order_id": 104, "item": "phone", "qty": 1, "card": "4-dave",
     "amount_cents": 70_000},
]


def main() -> None:
    deployment = Deployment(name="soa-orchestration")
    deployment.declare("orchestrator", 4)
    deployment.declare("inventory", 4)
    deployment.declare("payment", 4)
    deployment.declare("shipping", 1)

    deployment.add_service("inventory",
                           inventory_app({"laptop": 2, "phone": 1}))
    deployment.add_service("payment",
                           lambda: bank_app(card_limit_cents=500_000))
    deployment.add_service("shipping", shipping_app())

    log: list = []
    deployment.add_service(
        "orchestrator",
        orchestrator_app(
            ORDERS,
            inventory_endpoint="inventory",
            payment_endpoint="payment",
            shipping_endpoint="shipping",
            log=log,
        ),
    )

    deployment.run(seconds=180)

    # Each saga entry appears once per orchestrator replica.
    counts = Counter(log)
    print("saga outcomes (agreed start time in ms since epoch):")
    for (order_id, outcome, started_at), copies in sorted(counts.items()):
        print(f"   order {order_id}: {outcome:<17s} started={started_at} "
              f"(identical on {copies} replicas)")
    assert all(copies == 4 for copies in counts.values())
    outcomes = {oid: outcome for oid, outcome, _ in log}
    assert outcomes == {
        101: "shipped",
        102: "no-stock",
        103: "payment-declined",
        104: "shipped",
    }
    print("OK: all four orchestrator replicas drove the saga identically.")


if __name__ == "__main__":
    main()
