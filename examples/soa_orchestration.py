#!/usr/bin/env python3
"""SOA orchestration: a replicated saga with a long-running active thread.

The application model the paper argues existing BFT middleware cannot
express (section 3): the orchestrator *actively* drives a multi-step
order-fulfilment process — reserving inventory, authorising payment,
confirming shipment, compensating on failure — while consulting the
replica-agreed clock. Every one of its 4 replicas executes the saga
identically.

The whole system is one declarative scenario
(:func:`repro.scenario.presets.orchestration_scenario`), so the same
deployment runs on any substrate:

    python examples/soa_orchestration.py                    # simulator
    python examples/soa_orchestration.py --runtime process  # real processes
"""

import argparse
from collections import Counter

from repro.scenario.presets import DEMO_ORDERS, orchestration_scenario
from repro.scenario.runtime import run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runtime", default="sim",
                        choices=("sim", "threaded", "process"))
    args = parser.parse_args()

    spec = orchestration_scenario(orders=DEMO_ORDERS)
    metrics = run_scenario(spec, runtime=args.runtime)

    # The probe reports one [order_id, outcome, started_at_ms] entry per
    # completed saga, repeated once per orchestrator replica.
    log = [tuple(entry) for entry in
           metrics.services["orchestrator"].app["sagas"]]
    counts = Counter(log)
    print(f"saga outcomes on runtime {args.runtime!r} "
          "(agreed start time in ms since epoch):")
    for (order_id, outcome, started_at), copies in sorted(counts.items()):
        print(f"   order {order_id}: {outcome:<17s} started={started_at} "
              f"(identical on {copies} replicas)")
    replicas = metrics.services["orchestrator"].n
    if args.runtime == "sim":
        assert all(copies == replicas for copies in counts.values())
    outcomes = {oid: outcome for oid, outcome, _ in log}
    assert outcomes == {
        101: "shipped",
        102: "no-stock",
        103: "payment-declined",
        104: "shipped",
    }
    print(f"OK: all {replicas} orchestrator replicas drove the saga "
          "identically.")


if __name__ == "__main__":
    main()
