#!/usr/bin/env python3
"""Quickstart: a Byzantine fault-tolerant web service in ~40 lines.

Deploys a 4-replica counter service (tolerating 1 Byzantine fault) and a
4-replica caller, exchanges a few requests, and shows that every replica
observed the identical state — all on the deterministic simulator, no
network or containers required.

Run:  python examples/quickstart.py
"""

from repro.ws.api import MessageContext, MessageHandler
from repro.ws.deployment import Deployment


def counter_service():
    """The target: the paper's `increment` micro-benchmark operation."""
    counter = 0
    while True:
        request = yield MessageHandler.receive_request()
        old = counter
        counter += 1
        reply = MessageContext(body={"old": old, "new": counter})
        yield MessageHandler.send_reply(reply, request)


def make_caller(observed):
    """The caller: five synchronous increments."""

    def app():
        for i in range(5):
            reply = yield MessageHandler.send_receive(
                MessageContext(to="counter", body={"call": i})
            )
            observed.append(reply.body["new"])

    return app


def main() -> None:
    deployment = Deployment(name="quickstart")
    deployment.declare("counter", 4)  # 3f+1 with f=1
    deployment.declare("caller", 4)

    deployment.add_service("counter", counter_service)
    observed: list[int] = []
    caller = deployment.add_service("caller", make_caller(observed))

    deployment.run(seconds=30)

    print("completed calls (replica 0):", caller.group.drivers[0].completed_calls)
    print("counter values seen, across all 4 caller replicas:", sorted(observed))
    per_value = {v: observed.count(v) for v in set(observed)}
    print("each value observed once per replica:", per_value)
    assert per_value == {1: 4, 2: 4, 3: 4, 4: 4, 5: 4}
    print("OK: all replicas agreed on every reply.")


if __name__ == "__main__":
    main()
