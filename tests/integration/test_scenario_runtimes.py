"""Integration: runtime-specific behaviour of the scenario substrates.

Cross-substrate workload parity lives in the conformance matrix
(``test_conformance.py``); this file keeps what is *specific* to one
runtime — sim determinism, real OS-process parallelism, crash-fault
observer fallback, fail-fast deploy validation, and runtime selection.
"""

import os

import pytest

from repro.scenario.presets import echo_parity_scenario
from repro.scenario.process import ProcessRuntime
from repro.scenario.runtime import get_runtime, run_scenario
from repro.scenario.spec import FaultSpec


def test_sim_runtime_is_deterministic():
    spec = echo_parity_scenario(n=4, total_calls=5)
    a = run_scenario(spec, runtime="sim")
    b = run_scenario(spec, runtime="sim")
    assert a.events_processed == b.events_processed
    assert a.now_us == b.now_us
    assert a.services["caller"].last_completion_us == \
        b.services["caller"].last_completion_us


def test_process_runtime_smoke_uses_real_processes():
    # A 2-service scenario must occupy >= 2 OS processes, none of them
    # the test process itself.
    spec = echo_parity_scenario(n=1, total_calls=3, name="echo-proc-smoke")
    runtime = ProcessRuntime()
    runtime.deploy(spec)
    try:
        pids = runtime.worker_pids()
        assert len(set(pids)) >= 2
        assert os.getpid() not in pids
        runtime.run(until_s=60)
        metrics = runtime.metrics()
        assert metrics.processes >= 2
        assert metrics.services["caller"].completed_calls == 3
        assert metrics.services["caller"].aborted_calls == 0
        assert metrics.services["target"].requests_served == 3
        assert runtime.worker_errors() == {}
    finally:
        runtime.shutdown()


def test_process_runtime_tolerates_crashed_replica():
    # f=1 crash fault: the crashed pair's worker is never spawned and the
    # protocol still completes on the surviving 2f+1... replicas.
    spec = echo_parity_scenario(n=4, total_calls=3, name="echo-proc-crash")
    spec = spec.with_(faults=(FaultSpec(kind="crash", service="target", index=1),))
    runtime = ProcessRuntime()
    runtime.deploy(spec)
    try:
        assert len(runtime.worker_pids()) == 7  # 8 pairs minus the crash
        runtime.run(until_s=90)
        metrics = runtime.metrics()
        assert metrics.services["caller"].completed_calls == 3
        assert metrics.services["caller"].aborted_calls == 0
    finally:
        runtime.shutdown()


def test_crashed_replica_zero_still_observed_on_sim_and_threaded():
    # Metrics fall back to the lowest live replica when replica 0 is
    # crash-faulted, identically on every substrate.
    spec = echo_parity_scenario(n=4, total_calls=4, name="echo-crash-r0")
    spec = spec.with_(faults=(FaultSpec(kind="crash", service="caller", index=0),))

    sim_metrics = run_scenario(spec, runtime="sim")
    assert sim_metrics.services["caller"].completed_calls == 4

    threaded = get_runtime("threaded")
    threaded.deploy(spec)
    try:
        threaded.run(until_s=60)
        assert threaded.metrics().services["caller"].completed_calls == 4
    finally:
        threaded.shutdown()


def test_process_runtime_fails_fast_on_unknown_app_kind():
    from repro.common.errors import ConfigurationError
    from repro.scenario.spec import ScenarioBuilder

    spec = ScenarioBuilder("bad-app").service("svc", n=1, app="ecno").build()
    runtime = ProcessRuntime()
    try:
        with pytest.raises(ConfigurationError, match="ecno"):
            runtime.deploy(spec)
    finally:
        runtime.shutdown()


def test_process_runtime_rejects_registry_only_cost_models():
    # A model living only in this process's registry cannot be rebuilt by
    # a worker; the spec must carry crypto_params instead.
    from repro.common.errors import ConfigurationError
    from repro.crypto.cost import CryptoCostModel
    from repro.scenario.apps import register_cost_model
    from repro.scenario.spec import ScenarioBuilder

    register_cost_model(
        CryptoCostModel(name="registry-only", sign_us=1,
                        verify_us=1, per_receiver_us=0)
    )
    spec = (
        ScenarioBuilder("registry-only-crypto")
        .crypto("registry-only")
        .service("svc", n=1, app="echo")
        .build()
    )
    runtime = ProcessRuntime()
    try:
        with pytest.raises(ConfigurationError, match="crypto_params"):
            runtime.deploy(spec)
    finally:
        runtime.shutdown()
    # The self-describing form deploys fine (validation only; no run).
    ok = spec.with_(
        crypto_params={"sign_us": 1, "verify_us": 1, "per_receiver_us": 0}
    )
    runtime = ProcessRuntime()
    try:
        runtime.deploy(ok)
        assert len(runtime.worker_pids()) == 1
    finally:
        runtime.shutdown()


def test_process_runtime_shutdown_stops_parent_threads_without_workers():
    import threading

    spec = echo_parity_scenario(n=1, total_calls=1, name="echo-all-crashed")
    spec = spec.with_(
        faults=(
            FaultSpec(kind="crash", service="target", index=0),
            FaultSpec(kind="crash", service="caller", index=0),
        )
    )
    before = threading.active_count()
    runtime = ProcessRuntime()
    runtime.deploy(spec)
    runtime.shutdown()
    assert threading.active_count() == before


def test_scheme_qualified_endpoints_resolve_on_every_substrate():
    # perpetual:// references resolve through the same static registry
    # logic on all substrates, not just the simulator.
    from repro.scenario.spec import ScenarioBuilder

    spec = (
        ScenarioBuilder("scheme-endpoints")
        .duration(30)
        .service("target", n=1, app="echo")
        .service("caller", n=1, app="sync_caller",
                 target="perpetual://target", total_calls=2)
        .build()
    )
    assert run_scenario(spec, runtime="sim").services[
        "caller"].completed_calls == 2
    threaded = get_runtime("threaded")
    threaded.deploy(spec)
    try:
        threaded.run(until_s=30)
        assert threaded.metrics().services["caller"].completed_calls == 2
    finally:
        threaded.shutdown()


def test_unknown_runtime_rejected():
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        get_runtime("quantum")
