"""Integration: fully asynchronous communication (Figure 2 row 4).

The caller issues parallel requests without blocking; the target starts
serving new requests while earlier ones are still awaiting its own
out-calls. Both sides stay consistent across replicas.
"""

from repro.ws.api import MessageContext, MessageHandler
from repro.ws.deployment import Deployment
from tests.integration.helpers import counter_service


def test_parallel_requests_complete_out_of_lockstep():
    deployment = Deployment(name="async-win")
    deployment.declare("caller", 4)
    deployment.declare("target", 4)
    deployment.add_service("target", counter_service())
    received = []

    def window_caller():
        mids = []
        for i in range(6):
            mid = yield MessageHandler.send(
                MessageContext(to="target", body={"i": i})
            )
            mids.append(mid)
        for _ in mids:
            reply = yield MessageHandler.receive_reply()
            received.append(reply.body["counter"])

    caller = deployment.add_service("caller", window_caller)
    deployment.run(seconds=60)
    assert caller.group.drivers[0].completed_calls == 6
    # All 6 arrived on every replica: each counter value appears 4 times.
    from collections import Counter

    assert Counter(received) == {k: 4 for k in range(1, 7)}


def test_specific_reply_receives_out_of_order():
    deployment = Deployment(name="async-specific")
    deployment.declare("caller", 4)
    deployment.declare("target", 4)
    deployment.add_service("target", counter_service())
    order = []

    def caller_app():
        first = MessageContext(to="target", body={"tag": "first"})
        second = MessageContext(to="target", body={"tag": "second"})
        yield MessageHandler.send(first)
        yield MessageHandler.send(second)
        # Consume in reverse issue order.
        reply2 = yield MessageHandler.receive_reply(second)
        order.append(("second", reply2.body["counter"]))
        reply1 = yield MessageHandler.receive_reply(first)
        order.append(("first", reply1.body["counter"]))

    deployment.add_service("caller", caller_app)
    deployment.run(seconds=60)
    assert len(order) == 8  # 2 per replica
    assert order[0][0] == "second"


def test_target_serves_while_its_out_call_is_in_flight():
    """Three-tier async: the middle tier keeps serving new front requests
    while its back-tier call is outstanding (the paper's long-running /
    async model; impossible in a blocking middleware)."""
    deployment = Deployment(name="async-middle")
    deployment.declare("front", 1)
    deployment.declare("middle", 4)
    deployment.declare("back", 4)
    deployment.add_service("back", counter_service())
    middle_log = []

    def middle_app():
        pending = {}
        while True:
            event = yield MessageHandler.receive_any()
            if event.kind == "reply":
                original = pending.pop(event.relates_to)
                middle_log.append("reply")
                yield MessageHandler.send_reply(
                    MessageContext(body={"via": "back",
                                         "c": event.body["counter"]}),
                    original,
                )
            else:
                body = event.body or {}
                if body.get("fast"):
                    middle_log.append("fast")
                    yield MessageHandler.send_reply(
                        MessageContext(body={"via": "middle"}), event
                    )
                else:
                    middle_log.append("slow-start")
                    mid = yield MessageHandler.send(
                        MessageContext(to="back", body={})
                    )
                    pending[mid] = event

    deployment.add_service("middle", middle_app)
    outcomes = []

    def front_app():
        slow = MessageContext(to="middle", body={"fast": False})
        fast = MessageContext(to="middle", body={"fast": True})
        yield MessageHandler.send(slow)
        yield MessageHandler.send(fast)
        fast_reply = yield MessageHandler.receive_reply(fast)
        outcomes.append(fast_reply.body)
        slow_reply = yield MessageHandler.receive_reply(slow)
        outcomes.append(slow_reply.body)

    deployment.add_service("front", front_app)
    deployment.run(seconds=60)
    assert outcomes == [{"via": "middle"}, {"via": "back", "c": 1}]
    # Replica 0's middle log shows the fast request served between the
    # slow request's start and its completion.
    replica0 = middle_log[: len(middle_log) // 4] if middle_log else []
    assert "slow-start" in middle_log and "fast" in middle_log
    first_slow = middle_log.index("slow-start")
    first_fast = middle_log.index("fast")
    first_reply = middle_log.index("reply")
    assert first_slow < first_fast < first_reply
