"""Integration: sharded-scenario behaviour beyond the conformance matrix.

The group-closed 2-group echo parity run (per-group labels,
``requests_routed``/``cross_group_calls`` counters, identical outcomes
on every substrate) is a conformance case now — see
``test_conformance.py``. This file keeps the sharding behaviour that is
not simple parity:

- the sim's deterministic cross-group merge replays bit-identically;
- a consistent-hash top-level client crosses a group boundary through
  the router on the live substrates (the counters prove the path), while
  the simulator — whose groups run in closed sub-kernels — rejects the
  same spec loudly instead of mis-executing it;
- the process substrate places one OS process per voter/driver pair
  across all groups, and its shutdown joins the router/egress threads
  even when a worker fails to spawn mid-deploy (no orphaned threads or
  children).
"""

import multiprocessing
import threading
import time

import pytest

from repro.common.errors import ConfigurationError
from repro.scenario.presets import sharded_echo_scenario
from repro.scenario.process import ProcessRuntime
from repro.scenario.runtime import get_runtime, run_scenario
from repro.scenario.spec import ScenarioBuilder
from repro.sharding import HashRing
from tests.integration.conformance import assert_sharded_echo_shape, run_on

TOTAL_CALLS = 4


def two_group_echo(name):
    return sharded_echo_scenario(
        group_count=2, n=4, total_calls=TOTAL_CALLS, name=name
    )


class TestTwoGroupEcho:
    def test_sim_is_deterministic(self):
        from dataclasses import asdict

        spec = two_group_echo("sharded-echo-det")
        a = run_scenario(spec, runtime="sim")
        b = run_scenario(spec, runtime="sim")
        assert asdict(a) == asdict(b)

    def test_process_places_one_worker_per_pair_across_groups(self):
        metrics = run_on(
            ProcessRuntime(poll_interval_s=0.05),
            two_group_echo("sharded-echo-proc"),
            until_s=60,
        )
        assert_sharded_echo_shape(metrics, TOTAL_CALLS)
        # One OS process per voter/driver pair across both groups.
        assert metrics.processes == 16


def cross_group_spec():
    """A top-level client whose ring home is NOT its target's group.

    The ring is deterministic, so probe it for a client name that lands
    on g1 while calling into g0 — every issue then crosses a boundary.
    """
    ring = HashRing(("g0", "g1"))
    client = next(
        name
        for i in range(50)
        for name in [f"client{i}"]
        if ring.assign(name) == "g1"
    )
    return (
        ScenarioBuilder("sharded-cross")
        .routing("consistent_hash")
        .service("g0-target", n=4, app="echo", group="g0")
        .service("g1-other", n=4, app="echo", group="g1")
        .service(client, n=4, app="sync_caller",
                 target="g0-target", total_calls=3)
        .build()
    ), client


class TestCrossGroupCalls:
    def test_threaded_routes_across_groups(self):
        spec, client = cross_group_spec()
        runtime = get_runtime("threaded")
        runtime.deploy(spec)
        try:
            runtime.run(until_s=60)
            metrics = runtime.metrics()
            assert runtime.errors() == []
        finally:
            runtime.shutdown()
        assert metrics.services[client].completed_calls == 3
        assert metrics.services[client].group == "g1"
        # 4 caller replicas x 3 calls, every one across the boundary.
        assert metrics.counters["requests_routed"] == 12
        assert metrics.counters["cross_group_calls"] == 12

    def test_process_routes_across_groups(self):
        spec, client = cross_group_spec()
        runtime = ProcessRuntime(poll_interval_s=0.05)
        runtime.deploy(spec)
        try:
            runtime.run(until_s=60)
            metrics = runtime.metrics()
            assert runtime.worker_errors() == {}
        finally:
            runtime.shutdown()
        assert metrics.services[client].completed_calls == 3
        assert metrics.counters["cross_group_calls"] == 12

    def test_sim_rejects_cross_group_calls(self):
        # The simulator runs each group in a closed sub-kernel, so a
        # cross-group call has no path — the deploy-time topology misses
        # the target and the run fails loudly (documented limitation).
        spec, _ = cross_group_spec()
        with pytest.raises(ConfigurationError):
            run_scenario(spec, runtime="sim")


class TestPartialStartupTeardown:
    def test_failed_spawn_leaves_no_orphan_threads_or_children(
        self, monkeypatch
    ):
        spec = two_group_echo("sharded-partial-start")
        baseline_threads = threading.active_count()
        original = ProcessRuntime._start_worker
        spawned = {"n": 0}

        def failing(self, ctx, spec_json, service, index):
            spawned["n"] += 1
            if spawned["n"] == 5:
                raise RuntimeError("synthetic spawn failure")
            return original(self, ctx, spec_json, service, index)

        monkeypatch.setattr(ProcessRuntime, "_start_worker", failing)
        runtime = ProcessRuntime(poll_interval_s=0.05)
        with pytest.raises(RuntimeError, match="synthetic spawn failure"):
            runtime.deploy(spec)
        # Deploy's failure path runs shutdown(): router + egress threads
        # joined, the four already-spawned workers reaped.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            children = [
                p for p in multiprocessing.active_children()
                if p.name.startswith("repro-")
            ]
            if threading.active_count() <= baseline_threads and not children:
                break
            time.sleep(0.05)
        assert threading.active_count() <= baseline_threads
        assert [
            p.name for p in multiprocessing.active_children()
            if p.name.startswith("repro-")
        ] == []
