"""Integration: the SOA orchestrator (long-running active thread).

The Figure 2 "long-running active threads of computation" probe: a
replicated orchestrator drives a saga across three services of different
replication degrees, consults the agreed clock, and compensates failures
deterministically.
"""

from repro.apps.orchestrator import inventory_app, orchestrator_app, shipping_app
from repro.apps.payment import bank_app
from repro.ws.deployment import Deployment

ORDERS = [
    {"order_id": 1, "item": "widget", "qty": 2, "card": "4111",
     "amount_cents": 1_000},
    {"order_id": 2, "item": "widget", "qty": 100, "card": "4222",
     "amount_cents": 2_000},                       # exceeds stock
    {"order_id": 3, "item": "gadget", "qty": 1, "card": "4333",
     "amount_cents": 600_000_00},                   # exceeds card limit
    {"order_id": 4, "item": "gadget", "qty": 1, "card": "4444",
     "amount_cents": 3_000},
]


def build(n_orchestrator=4):
    deployment = Deployment(name="saga")
    deployment.declare("orchestrator", n_orchestrator)
    deployment.declare("inventory", 4)
    deployment.declare("payment", 1)
    deployment.declare("shipping", 1)
    stock = {"widget": 10, "gadget": 1}
    deployment.add_service("inventory", inventory_app(stock))
    deployment.add_service("payment", lambda: bank_app(card_limit_cents=5_000_00))
    deployment.add_service("shipping", shipping_app())
    log = []
    deployment.add_service(
        "orchestrator",
        orchestrator_app(
            ORDERS,
            inventory_endpoint="inventory",
            payment_endpoint="payment",
            shipping_endpoint="shipping",
            log=log,
        ),
    )
    return deployment, log


def test_saga_outcomes():
    deployment, log = build()
    deployment.run(seconds=120)
    # 4 replicas each log 4 sagas (entries interleave across replicas).
    assert len(log) == 16
    outcomes = {oid: out for oid, out, _ in log}
    assert outcomes == {
        1: "shipped",
        2: "no-stock",
        3: "payment-declined",
        4: "shipped",
    }


def test_saga_deterministic_across_replicas():
    deployment, log = build()
    deployment.run(seconds=120)
    # Every (order, outcome, started_at) entry appears exactly once per
    # replica -- i.e. exactly 4 identical copies of 4 distinct entries.
    from collections import Counter

    counts = Counter(log)
    assert len(counts) == 4
    assert all(count == 4 for count in counts.values())


def test_compensation_releases_inventory():
    # Order 3's payment declines; its gadget reservation must be released
    # so order 4 (the only other gadget) can still ship.
    deployment, log = build()
    deployment.run(seconds=120)
    outcomes = {oid: out for oid, out, _ in log}
    assert outcomes[3] == "payment-declined"
    assert outcomes[4] == "shipped"


def test_started_timestamps_agreed():
    deployment, log = build()
    deployment.run(seconds=120)
    starts = {}
    for oid, _, started_at in log:
        starts.setdefault(oid, set()).add(started_at)
    # Each order's agreed start time is identical on every replica.
    assert all(len(values) == 1 for values in starts.values())
