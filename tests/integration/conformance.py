"""Substrate conformance suite: one scenario matrix, every runtime.

Any runtime registered in :data:`repro.scenario.runtime.RUNTIME_NAMES`
must complete the same four workloads with the same observable outcome.
Before this suite existed, the parity assertions were copy-pasted per
substrate across ``test_scenario_runtimes.py`` / ``test_fault_parity.py``
/ ``test_sharded_runtimes.py`` — every new substrate meant editing all
of them. Now a substrate joins the matrix by joining ``RUNTIME_NAMES``
(asyncio joined on day one), and ``test_conformance.py`` parametrizes
the whole matrix with one ``@pytest.mark.parametrize("runtime", ...)``.

The four cases, each the acceptance bar of the PR that introduced its
capability:

- **echo** — plain 4-replica echo parity (identical completed/aborted/
  served counts);
- **chaos-slow-drip** — a byzantine-mute primary forces >= 1 CLBFT view
  change and the workload still completes (fault hooks + liveness);
- **batching-window-4** — tick batching on the window-4 async two-tier
  workload genuinely aggregates (flush hooks: fewer envelopes, each
  batch amortising one MAC vector over several messages);
- **sharded-echo** — a group-closed 2-group scenario with per-group
  metric labels and routed-request counters (router injection).

``run_on`` is the shared runner: deploy, run, observe, tear down on any
named runtime, asserting the substrate's own error channel is clean
(threaded/asyncio handler errors, process worker errors).
"""

from repro.scenario.presets import (
    chaos_slow_drip,
    echo_parity_scenario,
    sharded_echo_scenario,
    two_tier_scenario,
)
from repro.scenario.runtime import RUNTIME_NAMES, Runtime, get_runtime

#: The full substrate matrix. New runtimes join automatically.
RUNTIMES = tuple(RUNTIME_NAMES)

ECHO_CALLS = 6
DRIP_CALLS = 4
WINDOW_CALLS = 8
SHARDED_CALLS = 4


def run_on(runtime, spec, until_s: float = 90):
    """Run ``spec`` on a runtime (name or instance); return its metrics.

    Asserts the substrate-specific error channels are empty — a scenario
    that "completes" by swallowing handler exceptions is not conformant.
    """
    rt = get_runtime(runtime) if not isinstance(runtime, Runtime) else runtime
    rt.deploy(spec)
    try:
        rt.run(until_s=until_s)
        metrics = rt.metrics()
        if hasattr(rt, "errors"):
            assert rt.errors() == []
        if hasattr(rt, "worker_errors"):
            assert rt.worker_errors() == {}
        return metrics
    finally:
        rt.shutdown()


# -- the four cases ---------------------------------------------------------


def check_echo(runtime) -> None:
    spec = echo_parity_scenario(
        n=4, total_calls=ECHO_CALLS, name=f"conf-echo-{runtime}"
    )
    metrics = run_on(runtime, spec)
    assert metrics.scenario == spec.name
    assert metrics.services["caller"].completed_calls == ECHO_CALLS
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.services["target"].requests_served == ECHO_CALLS


def check_chaos_slow_drip(runtime) -> None:
    spec = chaos_slow_drip(
        total_calls=DRIP_CALLS, name=f"conf-drip-{runtime}"
    )
    metrics = run_on(runtime, spec, until_s=120)
    assert metrics.services["caller"].completed_calls == DRIP_CALLS
    assert metrics.services["caller"].aborted_calls == 0
    # The muted primary stalled view 0; progress proves the view change.
    assert metrics.services["target"].view_changes >= 1
    assert metrics.counters["view_changes"] >= 1
    assert metrics.counters["faults_injected"] >= 1


def check_batching_window_4(runtime) -> None:
    spec = two_tier_scenario(
        n_calling=2,
        n_target=4,
        total_calls=WINDOW_CALLS,
        window=4,
        name=f"conf-batch-{runtime}",
    ).with_(batching="tick")
    metrics = run_on(runtime, spec)
    assert metrics.services["caller"].completed_calls == WINDOW_CALLS
    assert metrics.services["caller"].aborted_calls == 0
    # Genuine aggregation through the substrate's flush hook: batches on
    # the wire, each amortising its single MAC vector over >1 message.
    assert metrics.counters["batches_sent"] > 0
    assert metrics.counters["batch_messages"] > metrics.counters["batches_sent"]


def assert_sharded_echo_shape(metrics, total_calls: int = SHARDED_CALLS):
    """The sharding tentpole's observable shape, substrate-independent."""
    for group in ("g0", "g1"):
        caller = metrics.services[f"{group}-caller"]
        assert caller.completed_calls == total_calls
        assert caller.aborted_calls == 0
        assert caller.group == group
        assert metrics.services[f"{group}-target"].group == group
    per_group = metrics.by_group()
    assert set(per_group) == {"g0", "g1"}
    for summary in per_group.values():
        assert summary["completed_calls"] == total_calls
    # Every driver replica routes each issue; the preset is group-closed.
    assert metrics.counters["requests_routed"] == 2 * 4 * total_calls
    assert metrics.counters["cross_group_calls"] == 0


def check_sharded_echo(runtime) -> None:
    spec = sharded_echo_scenario(
        group_count=2,
        n=4,
        total_calls=SHARDED_CALLS,
        name=f"conf-shard-{runtime}",
    )
    assert_sharded_echo_shape(run_on(runtime, spec))


#: Case name -> checker, the matrix's second axis.
CASES = {
    "echo": check_echo,
    "chaos-slow-drip": check_chaos_slow_drip,
    "batching-window-4": check_batching_window_4,
    "sharded-echo": check_sharded_echo,
}
