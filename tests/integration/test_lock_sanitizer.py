"""Integration: a chaos preset on the sanitized threaded substrate.

``ThreadedRuntime(debug_locks=True)`` wraps the cluster's shared
structures in assert-owner proxies; driving a Byzantine preset through
it checks every ``guarded-by`` claim from the static lock pass under
genuinely racy interleavings — node workers, the timer wheel, and the
deploying thread all running at once. Any discipline violation raises
``LockDisciplineError`` into the worker's error list and fails the run.
"""

from repro.scenario.presets import chaos_slow_drip
from repro.scenario.threaded import ThreadedRuntime


def test_chaos_preset_completes_under_debug_locks():
    spec = chaos_slow_drip(
        total_calls=4, duration_s=45.0, name="drip-debug-locks"
    )
    rt = ThreadedRuntime(debug_locks=True)
    try:
        rt.deploy(spec)
        # The proxies are actually installed, not silently skipped.
        assert hasattr(rt.cluster._workers, "_guard")
        assert hasattr(rt.cluster.dropped, "_guard")
        assert hasattr(rt.cluster.timers._entries, "_guard")
        rt.run()
        metrics = rt.metrics()
        errors = rt.errors()
    finally:
        rt.shutdown()

    assert errors == []
    caller = metrics.services["caller"]
    assert caller.completed_calls == 4
    assert caller.aborted_calls == 0
    # The mute primary forces the liveness path (view change) through
    # the sanitized timer wheel.
    assert metrics.services["target"].view_changes >= 1
