"""Integration: the n-tier chain of Figure 5 (store -> PGE -> bank).

Replicated-to-replicated-to-replicated: every tier at n=4 with both sync
and async PGE variants, checking end-to-end business outcomes and replica
consistency at every tier.
"""

import pytest

from repro.apps.payment import bank_app, pge_app
from repro.ws.api import MessageContext, MessageHandler
from repro.ws.deployment import Deployment


def build_chain(n_store=1, n_pge=4, n_bank=4, synchronous=False, payments=4):
    deployment = Deployment(name=f"chain-{synchronous}")
    deployment.declare("store", n_store)
    deployment.declare("pge", n_pge)
    deployment.declare("bank", n_bank)
    deployment.add_service("bank", bank_app)
    deployment.add_service(
        "pge", pge_app(bank_endpoint="bank", synchronous=synchronous)
    )
    outcomes = []

    def store_app():
        for i in range(payments):
            reply = yield MessageHandler.send_receive(
                MessageContext(
                    to="pge",
                    body={"card": f"4{i:03d}", "amount_cents": 100 * (i + 1)},
                )
            )
            outcomes.append(
                "FAULT" if reply.is_fault else reply.body["approved"]
            )

    store = deployment.add_service("store", store_app)
    return deployment, outcomes, store


@pytest.mark.parametrize("synchronous", [False, True])
def test_payments_flow_through_both_tiers(synchronous):
    deployment, outcomes, store = build_chain(synchronous=synchronous)
    deployment.run(seconds=120)
    assert store.group.drivers[0].completed_calls == 4
    assert outcomes == [True, True, True, True]


def test_replicated_store_chain():
    deployment, outcomes, store = build_chain(n_store=4, payments=3)
    deployment.run(seconds=120)
    assert store.group.drivers[0].completed_calls == 3
    assert len(outcomes) == 12
    assert all(o is True for o in outcomes)


def test_gateway_volume_consistent_across_pge_replicas():
    deployment, outcomes, store = build_chain(payments=5)
    pge = deployment.services["pge"]
    deployment.run(seconds=120)
    served = {adapter.requests_served for adapter in pge.adapters}
    assert served == {5}


def test_mixed_degrees_along_chain():
    deployment = Deployment(name="mixed-chain")
    deployment.declare("store", 1)
    deployment.declare("pge", 7)
    deployment.declare("bank", 4)
    deployment.add_service("bank", bank_app)
    deployment.add_service("pge", pge_app())
    results = []

    def store_app():
        reply = yield MessageHandler.send_receive(
            MessageContext(to="pge", body={"card": "4", "amount_cents": 5})
        )
        results.append(reply.body["approved"])

    deployment.add_service("store", store_app)
    deployment.run(seconds=120)
    assert results == [True]
