"""Integration: the fault-isolation guarantees of paper section 3.

Three scenarios:

1. fewer than fc+1 faulty calling replicas cannot inject a request into a
   correct target (stage 2's matching-request quorum);
2. a crashed target primary does not stop the target service (CLBFT view
   change restores liveness end to end);
3. a *compromised* target (all replicas silent — beyond its fault bound)
   cannot block a calling service that set a timeout: the callers abort
   deterministically and keep their replica state consistent.
"""

from repro.clbft.messages import message_to_wire
from repro.common.ids import RequestId, ServiceId
from repro.crypto.auth import AuthenticatorFactory
from repro.perpetual.messages import OutRequest
from repro.perpetual.voter import voter_name
from repro.sim.network import LanModel, PartitionModel
from repro.transport.wire import WireEnvelope
from repro.common.encoding import canonical_encode
from repro.ws.deployment import Deployment
from tests.integration.helpers import (
    build_two_tier,
    counter_service,
    scripted_caller,
)


class TestRequestInjection:
    def test_single_faulty_caller_cannot_inject(self):
        """One faulty calling driver (fc=1 tolerated) forges a request; the
        target (n=4) must never execute it: stage 2 demands fc+1=2 matching
        authenticated copies."""
        deployment, results, caller, target = build_two_tier(4, 4, calls=2)
        deployment.run(seconds=30)
        baseline = target.group.voters[0].delivered_requests

        # Forge a request from caller driver 3 (a single faulty replica).
        forged = OutRequest(
            request_id=RequestId(ServiceId("caller"), 999),
            caller=ServiceId("caller"),
            target=ServiceId("target"),
            payload=b"<forged/>",
            responder_index=0,
            attempt=0,
        )
        payload = canonical_encode(message_to_wire(forged))
        faulty_driver = "caller/d3"
        voters = [voter_name("target", i) for i in range(4)]
        auth = AuthenticatorFactory(deployment.keys, faulty_driver).sign(
            payload, voters
        )
        envelope = WireEnvelope(payload=payload, auth=auth)
        env = deployment.sim.env(faulty_driver)
        for voter in voters:
            deployment.sim.post_message(faulty_driver, voter, envelope, 512)
        deployment.run(seconds=30)
        # The forged request never reached any target executor.
        for voter in target.group.voters:
            assert voter.delivered_requests == baseline

    def test_two_matching_faulty_callers_meet_quorum_but_need_macs(self):
        """Even fc+1 copies are useless without valid pairwise MACs: an
        outsider who does not hold the deployment keys cannot fabricate
        them."""
        deployment, results, caller, target = build_two_tier(4, 4, calls=1)
        deployment.run(seconds=30)
        baseline = target.group.voters[0].delivered_requests

        from repro.crypto.keys import KeyStore

        outsider_keys = KeyStore.for_deployment("attacker")
        forged = OutRequest(
            request_id=RequestId(ServiceId("caller"), 777),
            caller=ServiceId("caller"),
            target=ServiceId("target"),
            payload=b"<forged/>",
            responder_index=0,
            attempt=0,
        )
        payload = canonical_encode(message_to_wire(forged))
        voters = [voter_name("target", i) for i in range(4)]
        for driver_index in (2, 3):
            sender = f"caller/d{driver_index}"
            auth = AuthenticatorFactory(outsider_keys, sender).sign(
                payload, voters
            )
            envelope = WireEnvelope(payload=payload, auth=auth)
            for voter in voters:
                deployment.sim.post_message(sender, voter, envelope, 512)
        deployment.run(seconds=30)
        for voter in target.group.voters:
            assert voter.delivered_requests == baseline


class TestCrashFaults:
    def test_crashed_target_replica_tolerated(self):
        """One crashed target replica (within f=1) is invisible to callers."""
        network = PartitionModel(LanModel())
        deployment = Deployment(name="crash-one", network=network)
        deployment.declare("caller", 4)
        deployment.declare("target", 4)
        target = deployment.add_service("target", counter_service())
        results = []
        caller = deployment.add_service(
            "caller", scripted_caller("target", 5, results)
        )
        network.kill("target/v3")
        network.kill("target/d3")
        deployment.run(seconds=120)
        assert caller.group.drivers[0].completed_calls == 5

    def test_crashed_target_primary_recovered_by_view_change(self):
        """Killing the target primary (voter 0) forces a CLBFT view change
        inside the target group; callers eventually complete."""
        network = PartitionModel(LanModel())
        deployment = Deployment(name="crash-primary", network=network)
        deployment.declare("caller", 4)
        deployment.declare("target", 4)
        target = deployment.add_service(
            "target", counter_service(),
            clbft_overrides={"view_change_timeout_us": 100_000},
        )
        results = []
        caller = deployment.add_service(
            "caller", scripted_caller("target", 3, results)
        )
        network.kill("target/v0")
        network.kill("target/d0")
        deployment.run(seconds=300)
        assert caller.group.drivers[0].completed_calls == 3
        views = {v.replica.view for v in target.group.voters[1:]}
        assert views and min(views) >= 1  # a view change really happened


class TestCompromisedTarget:
    def test_deterministic_abort_preserves_caller_liveness(self):
        """All target replicas silent (compromised beyond f): callers with a
        timeout abort deterministically — same outcome on every replica."""
        network = PartitionModel(LanModel())
        deployment = Deployment(name="compromised", network=network)
        deployment.declare("caller", 4)
        deployment.declare("target", 4)
        target = deployment.add_service("target", counter_service())
        results = []
        caller = deployment.add_service(
            "caller",
            scripted_caller("target", 2, results, timeout_ms=300),
        )
        for i in range(4):
            network.kill(f"target/v{i}")
            network.kill(f"target/d{i}")
        deployment.run(seconds=120)
        driver = caller.group.drivers[0]
        assert driver.aborted_calls == 2
        assert driver.completed_calls == 0
        # All four replicas saw the same fault sequence (consistent state).
        assert results == ["FAULT"] * 8

    def test_no_timeout_means_no_abort(self):
        """Paper: 'The default behavior in Perpetual-WS is not to abort any
        outstanding requests.'"""
        network = PartitionModel(LanModel())
        deployment = Deployment(name="no-abort", network=network)
        deployment.declare("caller", 4)
        deployment.declare("target", 4)
        deployment.add_service("target", counter_service())
        results = []
        caller = deployment.add_service(
            "caller", scripted_caller("target", 1, results, timeout_ms=None)
        )
        for i in range(4):
            network.kill(f"target/v{i}")
            network.kill(f"target/d{i}")
        deployment.run(seconds=20)
        driver = caller.group.drivers[0]
        assert driver.aborted_calls == 0
        assert driver.completed_calls == 0
        assert results == []  # still blocked, never resolved


class TestLateRepliesAfterAbort:
    def test_reply_arriving_after_abort_is_ignored_consistently(self):
        """A very slow (but correct) target whose reply lands after the
        abort decision: every caller replica must stick with the abort."""
        from repro.sim.network import FaultyLink

        base = FaultyLink(LanModel())
        # Delay everything leaving the target service by 800ms.
        for i in range(4):
            base.add_rule(f"target/v{i}", "*", extra_delay_us=800_000)
        deployment = Deployment(name="late-reply", network=base)
        deployment.declare("caller", 4)
        deployment.declare("target", 4)
        deployment.add_service("target", counter_service())
        results = []
        caller = deployment.add_service(
            "caller", scripted_caller("target", 1, results, timeout_ms=200)
        )
        deployment.run(seconds=120)
        driver = caller.group.drivers[0]
        assert driver.aborted_calls == 1
        assert results == ["FAULT"] * 4
