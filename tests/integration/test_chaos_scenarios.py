"""Integration: scripted Byzantine adversaries on the simulator.

Each chaos shape gets a small deterministic scenario: the protocol must
complete every correct request *despite* the adversary, record the
liveness machinery working (view changes, retransmissions, checkpoint
GC), and reproduce bit-identically across same-seed runs. The full-size
chaos presets ride in the ``soak`` marker, excluded from tier-1 runs.
"""

import pytest

from repro.scenario.presets import (
    chaos_equivocating_primary,
    chaos_partition_heal,
    chaos_slow_drip,
    chaos_soak,
)
from repro.scenario.runtime import run_scenario
from repro.scenario.spec import ScenarioBuilder


def echo_chaos(name, total_calls=6, n=4, duration_s=60.0):
    return (
        ScenarioBuilder(name)
        .duration(duration_s)
        .service("target", n=n, app="echo")
        .service("caller", n=1, app="sync_caller",
                 target="target", total_calls=total_calls)
    )


def test_equivocating_primary_completes_via_view_change():
    spec = (
        echo_chaos("equivocate-sim")
        .byzantine("target", 0, mode="equivocate")
        .build()
    )
    metrics = run_scenario(spec, runtime="sim")
    assert metrics.services["caller"].completed_calls == 6
    assert metrics.services["caller"].aborted_calls == 0
    # The conflicting pre-prepares stalled ordering until a view change
    # moved the primary off the equivocator.
    assert metrics.services["target"].view_changes >= 1
    assert metrics.counters["faults_injected"] >= 1
    assert metrics.counters["view_changes"] >= 1


def test_equivocating_primary_run_is_deterministic():
    spec = (
        echo_chaos("equivocate-determinism", total_calls=4)
        .byzantine("target", 0, mode="equivocate")
        .build()
    )
    a = run_scenario(spec, runtime="sim")
    b = run_scenario(spec, runtime="sim")
    assert a.now_us == b.now_us
    assert a.events_processed == b.events_processed
    assert a.counters == b.counters
    assert a.services["caller"].last_completion_us == \
        b.services["caller"].last_completion_us


def test_mute_primary_completes_via_view_change():
    spec = (
        echo_chaos("mute-sim")
        .byzantine("target", 0, mode="mute")
        .build()
    )
    metrics = run_scenario(spec, runtime="sim")
    assert metrics.services["caller"].completed_calls == 6
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.services["target"].view_changes >= 1


def test_corrupt_replica_outvoted_by_matching_copies():
    spec = (
        echo_chaos("corrupt-sim")
        .byzantine("target", 1, mode="corrupt")
        .build()
    )
    metrics = run_scenario(spec, runtime="sim")
    assert metrics.services["caller"].completed_calls == 6
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.counters["faults_injected"] >= 1


def test_delayed_replica_slows_nothing_down_fatally():
    spec = (
        echo_chaos("delay-sim")
        .delay("target", 0, delay_us=2_000, jitter_us=500)
        .build()
    )
    metrics = run_scenario(spec, runtime="sim")
    assert metrics.services["caller"].completed_calls == 6
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.counters["faults_injected"] >= 1


def test_restart_replica_rejoins_and_catches_up():
    spec = (
        echo_chaos("restart-sim", total_calls=8)
        .restart("target", 1, up_after_us=1_500_000, down_after_us=200_000)
        .build()
    )
    metrics = run_scenario(spec, runtime="sim")
    assert metrics.services["caller"].completed_calls == 8
    assert metrics.services["caller"].aborted_calls == 0


def test_partition_heal_preset_completes_after_heal():
    spec = chaos_partition_heal(total_calls=8, heal_after_us=1_500_000,
                                duration_s=90.0)
    metrics = run_scenario(spec, runtime="sim")
    assert metrics.services["caller"].completed_calls == 8
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.counters["faults_injected"] >= 1


def test_checkpoint_gc_bounds_reply_cache():
    # 80 requests against a checkpoint interval of 8: without the
    # checkpoint-driven GC the voter reply cache would hold all 80.
    spec = chaos_soak(total_calls=80, checkpoint_interval=8,
                      duration_s=300.0)
    metrics = run_scenario(spec, runtime="sim")
    assert metrics.services["caller"].completed_calls == 80
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.services["target"].reply_cache_size <= 16
    assert metrics.counters["cache_evictions"] > 0


@pytest.mark.soak
def test_soak_preset_cache_stays_bounded_over_400_calls():
    spec = chaos_soak()
    metrics = run_scenario(spec, runtime="sim")
    caller = metrics.services["caller"]
    assert caller.completed_calls == 400
    assert caller.aborted_calls == 0
    # Bounded by the checkpoint interval, not the request count.
    assert metrics.services["target"].reply_cache_size * 10 < 400
    assert metrics.counters["cache_evictions"] > 0


@pytest.mark.soak
def test_soak_slow_drip_preset():
    spec = chaos_slow_drip()
    metrics = run_scenario(spec, runtime="sim")
    assert metrics.services["caller"].completed_calls == 8
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.services["target"].view_changes >= 1


@pytest.mark.soak
def test_soak_equivocating_primary_under_tpcw_load():
    # The acceptance scenario: a full TPC-W mix with an equivocating PGE
    # primary. Every correct request completes, at least one view change
    # runs to completion, and the run is deterministic.
    spec = chaos_equivocating_primary()
    a = run_scenario(spec, runtime="sim")
    b = run_scenario(spec, runtime="sim")
    total_completed = sum(
        svc.completed_calls for name, svc in a.services.items()
        if name.startswith("rbe")
    )
    total_aborted = sum(
        svc.aborted_calls for name, svc in a.services.items()
        if name.startswith("rbe")
    )
    assert total_completed > 0
    assert total_aborted == 0
    assert a.services["pge"].view_changes >= 1
    assert a.now_us == b.now_us
    assert a.events_processed == b.events_processed
    assert a.counters == b.counters
