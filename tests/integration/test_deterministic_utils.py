"""Integration: deterministic host-specific information (section 4.2).

Replicas on hosts with different clocks must observe identical values
from currentTimeMillis / timestamp / random — the voter group agrees on
the primary's proposal.
"""

import datetime

from repro.perpetual.voter import EPOCH_MS
from repro.ws.api import MessageContext, MessageHandler, Utils
from repro.ws.deployment import Deployment


def test_current_time_consistent_across_replicas():
    deployment = Deployment(name="utils-time")
    deployment.declare("svc", 4)
    observed = []

    def app():
        for call_index in range(3):
            now = yield Utils.current_time_millis()
            observed.append((call_index, now))

    deployment.add_service("svc", app)
    deployment.run(seconds=60)
    assert len(observed) == 12  # 3 values x 4 replicas
    by_call: dict[int, set] = {}
    for call_index, value in observed:
        by_call.setdefault(call_index, set()).add(value)
    # Every replica saw the identical value for each call.
    assert all(len(values) == 1 for values in by_call.values())
    values = [next(iter(by_call[i])) for i in range(3)]
    # Monotone non-decreasing and wall-clock-like (epoch offset applied).
    assert values == sorted(values)
    assert all(v >= EPOCH_MS for v in values)


def test_timestamp_returns_agreed_datetime():
    deployment = Deployment(name="utils-ts")
    deployment.declare("svc", 4)
    stamps = []

    def app():
        ts = yield Utils.timestamp()
        stamps.append(ts)

    deployment.add_service("svc", app)
    deployment.run(seconds=60)
    assert len(stamps) == 4
    assert len(set(stamps)) == 1
    assert isinstance(stamps[0], datetime.datetime)


def test_random_seeded_identically():
    deployment = Deployment(name="utils-rand")
    deployment.declare("svc", 4)
    draws = []

    def app():
        rng = yield Utils.random()
        draws.append(tuple(rng.randint(0, 10**9) for _ in range(5)))

    deployment.add_service("svc", app)
    deployment.run(seconds=60)
    assert len(draws) == 4
    assert len(set(draws)) == 1  # identical streams on every replica


def test_utilities_interleave_with_messaging():
    deployment = Deployment(name="utils-mixed")
    deployment.declare("svc", 4)
    deployment.declare("sink", 4)

    def sink_app():
        while True:
            request = yield MessageHandler.receive_request()
            yield MessageHandler.send_reply(
                MessageContext(body={"ok": True}), request
            )

    deployment.add_service("sink", sink_app)
    log = []

    def app():
        t1 = yield Utils.current_time_millis()
        reply = yield MessageHandler.send_receive(
            MessageContext(to="sink", body={})
        )
        t2 = yield Utils.current_time_millis()
        log.append((t1, reply.body["ok"], t2))

    deployment.add_service("svc", app)
    deployment.run(seconds=60)
    assert len(log) == 4
    assert len(set(log)) == 1
    t1, ok, t2 = log[0]
    assert ok is True
    assert t2 >= t1
