"""Integration: the process substrate's transports and worker bootstrap.

Two concerns meet here:

- the tcp transport (``ProcessRuntime(transport="tcp")``) completes
  the same scenarios over localhost sockets that the pipe transport
  runs — same frames, same router/egress code, length-prefixed by
  :mod:`repro.transport.socket_frame`. These carry the ``net`` marker
  (excluded from tier-1 via pytest.ini; run with ``-m net``);
- the latent parity gap the tcp path exposed: every worker start path
  must run :func:`repro.common.encoding.clear_wire_caches` before
  decoding its first frame. That contract used to be checkable only by
  monkeypatching bootstrap internals; now the hook bumps the
  ``wire_cache_clears`` METRICS counter, workers zero METRICS *before*
  the clear, and the summed worker stats prove exactly one clear per
  worker on every transport.
"""

import pytest

from repro.scenario.presets import echo_parity_scenario
from repro.scenario.process import ProcessRuntime
from tests.integration.conformance import run_on

TRANSPORTS = ("pipe", pytest.param("tcp", marks=pytest.mark.net))


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_wire_caches_cleared_once_per_worker_start(transport):
    # 2 services x 4 replicas = 8 workers; each start path (process
    # spawn, tcp dial-back rendezvous) must clear the identity-keyed
    # caches exactly once, observed through summed worker counters —
    # no monkeypatching of bootstrap internals.
    spec = echo_parity_scenario(
        n=4, total_calls=3, name=f"wire-cache-{transport}"
    )
    metrics = run_on(
        ProcessRuntime(poll_interval_s=0.05, transport=transport),
        spec,
        until_s=60,
    )
    assert metrics.processes == 8
    assert metrics.counters["wire_cache_clears"] == 8
    assert metrics.services["caller"].completed_calls == 3


@pytest.mark.net
def test_tcp_transport_completes_echo_over_localhost_sockets():
    spec = echo_parity_scenario(n=4, total_calls=6, name="tcp-echo")
    metrics = run_on(
        ProcessRuntime(poll_interval_s=0.05, transport="tcp"),
        spec,
        until_s=60,
    )
    assert metrics.services["caller"].completed_calls == 6
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.services["target"].requests_served == 6
    assert metrics.processes == 8


@pytest.mark.net
def test_tcp_transport_runs_sharded_groups():
    from repro.scenario.presets import sharded_echo_scenario
    from tests.integration.conformance import assert_sharded_echo_shape

    spec = sharded_echo_scenario(
        group_count=2, n=4, total_calls=4, name="tcp-sharded"
    )
    metrics = run_on(
        ProcessRuntime(poll_interval_s=0.05, transport="tcp"),
        spec,
        until_s=60,
    )
    assert_sharded_echo_shape(metrics, 4)
    assert metrics.processes == 16


def test_unknown_transport_rejected():
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="transport"):
        ProcessRuntime(transport="carrier-pigeon")
