"""Integration: replicated-to-replicated interaction (Figure 1 end to end).

The probe behind the Figure 2 "interaction between replicated Web
Services" row: calling and target services at every paper replication
degree combination complete requests with consistent replica state.
"""

import pytest

from tests.integration.helpers import build_two_tier


@pytest.mark.parametrize(
    "nc,nt", [(1, 1), (1, 4), (4, 1), (4, 4), (4, 7), (7, 4)]
)
def test_degree_combinations(nc, nt):
    deployment, results, caller, target = build_two_tier(nc, nt, calls=5)
    deployment.run(seconds=60)
    # Replica 0's driver completed every logical call exactly once.
    assert caller.group.drivers[0].completed_calls == 5
    # Every correct caller replica saw the identical reply set: nc
    # replicas each append 5 results (entries interleave across replicas),
    # so each counter value appears exactly nc times.
    assert len(results) == nc * 5
    from collections import Counter

    counts = Counter(r["counter"] for r in results)
    assert counts == {k: nc for k in range(1, 6)}


def test_target_state_consistent_across_replicas():
    deployment, results, caller, target = build_two_tier(4, 4, calls=8)
    deployment.run(seconds=60)
    # Each target voter delivered all 8 requests to its driver.
    for voter in target.group.voters:
        assert voter.delivered_requests == 8
    # And agreement executed identically everywhere.
    executed = [v.replica.executed_requests for v in target.group.voters]
    assert len(set(executed)) == 1


def test_exactly_once_despite_retransmissions():
    # Retransmit timers fire aggressively; execution must stay exactly-once.
    from repro.ws.deployment import Deployment
    from tests.integration.helpers import counter_service, scripted_caller

    deployment = Deployment(name="rtx")
    deployment.declare("caller", 4)
    deployment.declare("target", 4)
    deployment.add_service("target", counter_service())
    results = []
    caller = deployment.add_service(
        "caller", scripted_caller("target", 5, results)
    )
    # Shrink the drivers' retransmit timeout below the request RTT so
    # every request is retransmitted at least once.
    for driver in caller.group.drivers:
        driver._retransmit_timeout_us = 2_000
    deployment.run(seconds=60)
    final = [r["counter"] for r in results if r != "FAULT"]
    assert max(final) == 5  # not 6+: no double execution


def test_throughput_counters_exposed():
    deployment, results, caller, target = build_two_tier(4, 4, calls=3)
    deployment.run(seconds=60)
    driver = caller.group.drivers[0]
    assert driver.completed_calls == 3
    assert driver.first_issue_us is not None
    assert driver.last_completion_us > driver.first_issue_us
