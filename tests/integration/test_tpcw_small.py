"""Integration: a small TPC-W run end to end (RBEs -> store -> PGE -> bank)."""

from repro.tpcw.harness import run_tpcw
from repro.tpcw.interactions import PAPER_MIX


def test_small_run_produces_interactions_and_payments():
    result = run_tpcw(rbe_count=8, n_pge=4, duration_s=40, seed=5)
    assert result.interactions > 20
    assert result.wips > 0
    assert result.pge_calls > 0
    # Every settled payment is either approved or declined.
    assert result.approved + result.declined <= result.pge_calls
    assert result.approved > 0


def test_replication_degree_does_not_change_workload_shape():
    r1 = run_tpcw(rbe_count=8, n_pge=1, duration_s=40, seed=5)
    r4 = run_tpcw(rbe_count=8, n_pge=4, duration_s=40, seed=5)
    # Same RBEs, same seed: interaction counts stay within a tight band
    # (the paper's Figure 6 point -- replication barely moves WIPS).
    assert abs(r1.interactions - r4.interactions) <= max(
        3, int(0.1 * r1.interactions)
    )


def test_sync_variant_runs():
    result = run_tpcw(
        rbe_count=6, n_pge=4, duration_s=30, synchronous_pge=True, seed=5
    )
    assert result.interactions > 10
    assert result.synchronous_pge


def test_determinism_same_seed_same_result():
    a = run_tpcw(rbe_count=5, n_pge=4, duration_s=20, seed=9)
    b = run_tpcw(rbe_count=5, n_pge=4, duration_s=20, seed=9)
    assert a.interactions == b.interactions
    assert a.pge_calls == b.pge_calls
    assert a.approved == b.approved
