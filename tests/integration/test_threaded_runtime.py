"""Integration: the same protocol nodes on real threads.

Substrate independence: voters and drivers built for the simulator run
unchanged on OS threads with racy interleavings, and the protocol still
converges — including under a crashed replica.
"""

import time

import pytest

from repro.crypto.keys import KeyStore
from repro.perpetual.group import Topology
from repro.runtime.cluster import ThreadedCluster
from repro.runtime.deploy import deploy_threaded_service
from repro.ws.adapter import WsAdapter
from repro.ws.api import MessageContext, MessageHandler


def make_ws_factory(service, app):
    def factory():
        return WsAdapter(service=service, app_factory=app).executor_app()()

    return factory


def counter_app():
    counter = 0
    while True:
        request = yield MessageHandler.receive_request()
        counter += 1
        yield MessageHandler.send_reply(
            MessageContext(body={"counter": counter}), request
        )


def wait_for(predicate, timeout_s=30.0):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


@pytest.fixture
def cluster():
    c = ThreadedCluster()
    yield c
    c.shutdown()


def test_two_tier_on_threads(cluster):
    topology = Topology()
    topology.add("caller", 4)
    topology.add("target", 4)
    keys = KeyStore.for_deployment("threads-1")

    def caller_app():
        for i in range(5):
            yield MessageHandler.send_receive(
                MessageContext(to="target", body={"i": i})
            )

    deploy_threaded_service(
        cluster, topology, keys, "target", make_ws_factory("target", counter_app)
    )
    callers = deploy_threaded_service(
        cluster, topology, keys, "caller", make_ws_factory("caller", caller_app)
    )
    cluster.start()
    assert wait_for(
        lambda: all(d.completed_calls >= 5 for d in callers.drivers)
    )
    assert cluster.errors() == []


def test_crashed_backup_tolerated_on_threads(cluster):
    topology = Topology()
    topology.add("caller", 1)
    topology.add("target", 4)
    keys = KeyStore.for_deployment("threads-2")

    def caller_app():
        for i in range(3):
            yield MessageHandler.send_receive(
                MessageContext(to="target", body={"i": i})
            )

    deploy_threaded_service(
        cluster, topology, keys, "target", make_ws_factory("target", counter_app)
    )
    callers = deploy_threaded_service(
        cluster, topology, keys, "caller", make_ws_factory("caller", caller_app)
    )
    # Crash one target replica (within f=1) before any traffic.
    cluster.drop_node("target/v2")
    cluster.drop_node("target/d2")
    cluster.start()
    assert wait_for(
        lambda: callers.drivers[0].completed_calls >= 3, timeout_s=45.0
    )
    assert cluster.errors() == []
