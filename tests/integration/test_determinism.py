"""Integration: whole-system determinism.

The simulator plus the deterministic application model make entire
multi-tier runs reproducible: identical configuration -> identical event
counts, timings, and application outcomes. This is what makes the
benchmark figures stable and the fault tests meaningful.
"""

from repro.ws.api import MessageContext, MessageHandler, Utils
from repro.ws.deployment import Deployment


def build_and_run(name: str):
    deployment = Deployment(name=name)
    deployment.declare("caller", 4)
    deployment.declare("target", 4)

    def target_app():
        total = 0
        while True:
            request = yield MessageHandler.receive_request()
            total += request.body.get("x", 0)
            yield MessageHandler.send_reply(
                MessageContext(body={"total": total}), request
            )

    deployment.add_service("target", target_app)
    trace = []

    def caller_app():
        rng = yield Utils.random()
        for i in range(5):
            x = rng.randint(0, 100)
            reply = yield MessageHandler.send_receive(
                MessageContext(to="target", body={"x": x})
            )
            trace.append((x, reply.body["total"]))

    deployment.add_service("caller", caller_app)
    deployment.run(seconds=120)
    return deployment, trace


def test_identical_runs_identical_traces():
    d1, t1 = build_and_run("det")
    d2, t2 = build_and_run("det")
    assert t1 == t2
    assert d1.sim.events_processed == d2.sim.events_processed
    assert d1.sim.now_us == d2.sim.now_us


def test_different_deployment_names_differ_only_in_keys():
    # Key material differs but behaviour must not (crypto is opaque).
    __, t1 = build_and_run("det-a")
    __, t2 = build_and_run("det-b")
    assert t1 == t2


def test_agreed_randomness_drives_consistent_totals():
    __, trace = build_and_run("det-rand")
    # 4 replicas x 5 calls; each (x, total) pair appears exactly 4 times.
    from collections import Counter

    counts = Counter(trace)
    assert len(counts) == 5
    assert all(v == 4 for v in counts.values())
    # Totals really accumulate the agreed random xs.
    ordered = sorted(counts, key=lambda pair: pair[1])
    running = 0
    for x, total in ordered:
        running += x
        assert total == running
