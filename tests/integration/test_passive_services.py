"""Integration: unmodified passive deterministic services (Figure 2 row 8).

A passive service written as a plain request handler runs under
Perpetual-WS via :func:`run_passive` with no Perpetual-specific code —
the paper's "replicate existing passive deterministic Web Services ...
without modification" claim.
"""

from repro.perpetual.executor import run_passive
from repro.soap.envelope import SoapEnvelope
from repro.soap.addressing import WsAddressing
from repro.ws.deployment import Deployment
from tests.integration.helpers import scripted_caller


def passive_adder():
    """A 'legacy' handler: pure function of the request, no middleware API."""
    state = {"total": 0}

    def handle(event):
        envelope = SoapEnvelope.from_xml(event.payload)
        state["total"] += envelope.body.get("seq", 0)
        reply = SoapEnvelope(body={"total": state["total"]})
        WsAddressing.set_relates_to(
            reply, WsAddressing.message_id(envelope)
        )
        return reply.to_xml()

    return handle


def test_passive_handler_replicated():
    deployment = Deployment(name="passive")
    deployment.declare("legacy", 4)
    deployment.declare("caller", 1)
    deployment.add_raw_service("legacy", lambda: run_passive(passive_adder())())
    results = []
    caller = deployment.add_service(
        "caller", scripted_caller("legacy", calls=4, results=results)
    )
    deployment.run(seconds=60)
    assert caller.group.drivers[0].completed_calls == 4
    assert [r["total"] for r in results] == [0, 1, 3, 6]


def test_passive_handler_state_consistent():
    deployment = Deployment(name="passive2")
    deployment.declare("legacy", 4)
    deployment.declare("caller", 4)
    deployment.add_raw_service("legacy", lambda: run_passive(passive_adder())())
    results = []
    caller = deployment.add_service(
        "caller", scripted_caller("legacy", calls=3, results=results)
    )
    deployment.run(seconds=60)
    # Replicated caller: every replica sees the same totals.
    from collections import Counter

    totals = Counter(r["total"] for r in results)
    assert totals == {0: 4, 1: 4, 3: 4}
