"""Integration: channel-layer batching across scenarios and substrates.

Four pins from the batching tentpole:

- ``batching="off"`` is bit-identical to the pre-batching goldens
  captured from PR 7 (``tests/data/golden_pr7_sim.json``) — every
  pre-existing counter, every service metric, and the finishing clock;
- ``batching="tick"`` on the windowed async workload genuinely
  aggregates (batches on the wire, fewer MAC verifications) while
  completing the identical workload;
- the same ``batching="tick"`` spec completes on every substrate — that
  parity run lives in the conformance matrix (``test_conformance.py``);
- ``delay`` and ``byzantine`` faults keep their per-message semantics
  when the channel batches (every message inside a batch is delayed;
  equivocation rewrites individual agreement messages above the batch).
"""

import json
from dataclasses import asdict
from pathlib import Path

from repro.scenario.presets import two_tier_scenario
from repro.scenario.runtime import run_scenario
from repro.scenario.spec import ScenarioBuilder

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "data" / "golden_pr7_sim.json").read_text()
)


def assert_matches_golden(metrics, golden):
    data = asdict(metrics)
    # Counter comparison is restricted to keys the golden already has:
    # this PR added the batch counters, which must read zero when off but
    # are not part of the PR 7 snapshot.
    for key, expected in golden["counters"].items():
        assert data["counters"].get(key) == expected, key
    assert data["counters"]["batches_sent"] == 0
    assert data["counters"]["batch_messages"] == 0
    # Service comparison is likewise restricted to the golden's fields:
    # the sharding PR added ServiceMetrics.group, which must stay None on
    # unsharded runs but is not part of the PR 7 snapshot.
    assert set(data["services"]) == set(golden["services"])
    for name, golden_svc in golden["services"].items():
        for key, expected in golden_svc.items():
            assert data["services"][name].get(key) == expected, (name, key)
        assert data["services"][name]["group"] is None, name
    assert data["now_us"] == golden["now_us"]
    assert data["scenario"] == golden["scenario"]


class TestOffModeBitIdentical:
    def test_fig7_cell(self):
        metrics = run_scenario(
            two_tier_scenario(n_calling=4, n_target=4, total_calls=10),
            runtime="sim",
        )
        assert_matches_golden(metrics, GOLDEN["fig7_small"])

    def test_fig8_cell(self):
        metrics = run_scenario(
            two_tier_scenario(n_calling=4, n_target=4, total_calls=6, cpu_ms=6),
            runtime="sim",
        )
        assert_matches_golden(metrics, GOLDEN["fig8_small"])

    def test_fig9_async_cell(self):
        metrics = run_scenario(
            two_tier_scenario(n_calling=2, n_target=4, total_calls=8, window=4),
            runtime="sim",
        )
        assert_matches_golden(metrics, GOLDEN["fig9_async"])


class TestTickModeAggregates:
    def test_async_window_batches_and_saves_macs(self):
        base = two_tier_scenario(n_calling=2, n_target=4, total_calls=8, window=4)
        off = run_scenario(base, runtime="sim")
        tick = run_scenario(base.with_(batching="tick"), runtime="sim")

        # Identical workload outcome.
        assert tick.services["caller"].completed_calls == 8
        assert (
            tick.services["caller"].completed_calls
            == off.services["caller"].completed_calls
        )
        assert (
            tick.services["target"].requests_served
            == off.services["target"].requests_served
        )
        # Genuine aggregation: batches on the wire, each amortising its
        # single MAC vector over several messages...
        assert tick.counters["batches_sent"] > 0
        assert tick.counters["batch_messages"] > tick.counters["batches_sent"]
        # ...which is visible as strictly fewer MAC verifications.
        assert tick.counters["mac_verifications"] < off.counters["mac_verifications"]
        assert off.counters["batches_sent"] == 0

    def test_tick_mode_is_deterministic(self):
        spec = two_tier_scenario(
            n_calling=2, n_target=4, total_calls=8, window=4
        ).with_(batching="tick")
        a = run_scenario(spec, runtime="sim")
        b = run_scenario(spec, runtime="sim")
        assert asdict(a) == asdict(b)


# Cross-substrate tick-batching parity moved to the conformance matrix
# (tests/integration/test_conformance.py, case "batching-window-4").


class TestFaultsApplyPerMessageInsideBatches:
    def test_delay_fault_defers_every_batched_message(self):
        def build(batching):
            return (
                ScenarioBuilder("batch-delay")
                .batching(batching)
                .service("target", n=4, app="counter")
                .service("caller", n=2, app="async_caller",
                         target="target", total_calls=8, window=4)
                .delay("target", 1, delay_us=2_000)
                .build()
            )

        off = run_scenario(build("off"), runtime="sim")
        tick = run_scenario(build("tick"), runtime="sim")
        # The delayed replica's sends — batched or not — all arrive late;
        # agreement still completes the full workload either way.
        assert off.counters["faults_injected"] > 0
        assert tick.counters["faults_injected"] > 0
        assert tick.services["caller"].completed_calls == 8
        assert off.services["caller"].completed_calls == 8
        assert tick.counters["batches_sent"] > 0

    def test_byzantine_equivocation_survives_batching(self):
        def build(batching):
            return (
                ScenarioBuilder("batch-byz")
                .batching(batching)
                .service("target", n=4, app="counter")
                .service("caller", n=1, app="sync_caller",
                         target="target", total_calls=4)
                .byzantine("target", 0, mode="equivocate")
                .duration(120)
                .build()
            )

        off = run_scenario(build("off"), runtime="sim")
        tick = run_scenario(build("tick"), runtime="sim")
        # Equivocation rewrites individual agreement multicasts above the
        # channel, so the per-message Byzantine behaviour (and the view
        # change recovering from it) is identical under batching.
        for metrics in (off, tick):
            assert metrics.counters["faults_injected"] > 0
            assert metrics.services["caller"].completed_calls == 4
        assert (
            tick.services["target"].view_changes
            == off.services["target"].view_changes
        )
