"""Shared helpers for integration tests: small deployable apps."""

from __future__ import annotations

from repro.ws.api import MessageContext, MessageHandler, Options
from repro.ws.deployment import Deployment


def counter_service():
    """Stateful increment service (the paper's null-op target)."""

    def app():
        counter = 0
        while True:
            request = yield MessageHandler.receive_request()
            counter += 1
            yield MessageHandler.send_reply(
                MessageContext(body={"counter": counter}), request
            )

    return app


def scripted_caller(target: str, calls: int, results: list,
                    timeout_ms: int | None = None):
    """Synchronous caller appending every reply body (or fault marker)."""

    def app():
        for i in range(calls):
            reply = yield MessageHandler.send_receive(
                MessageContext(
                    to=target,
                    body={"seq": i},
                    options=Options(timeout_ms=timeout_ms),
                )
            )
            results.append("FAULT" if reply.is_fault else reply.body)

    return app


def build_two_tier(nc: int, nt: int, calls: int = 5, name: str = "it",
                   timeout_ms: int | None = None):
    """Standard two-tier deployment; returns (deployment, results, caller)."""
    deployment = Deployment(name=name)
    deployment.declare("caller", nc)
    deployment.declare("target", nt)
    target = deployment.add_service("target", counter_service())
    results: list = []
    caller = deployment.add_service(
        "caller", scripted_caller("target", calls, results, timeout_ms)
    )
    return deployment, results, caller, target


def drivers_done(service, calls: int) -> bool:
    return all(
        d.completed_calls + d.aborted_calls >= calls
        for d in service.group.drivers
    )
