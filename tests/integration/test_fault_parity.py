"""Integration: fault injection behaves the same on every substrate.

Crash, byzantine, and delay faults are enforced uniformly: the simulator
scripts them in-process, the threaded and asyncio runtimes wire the same
FaultPlan into their live nodes, and the process runtime rebuilds the
plan inside each worker from the spec JSON in its spawn payload. The
cross-substrate runs all go through the conformance runner
(:func:`tests.integration.conformance.run_on` — one parametrized matrix
instead of per-substrate copies); sim-only ``link`` faults are rejected
up front by every live substrate. The mute-primary liveness case
(chaos-slow-drip) lives in the conformance matrix itself.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.scenario.runtime import RUNTIME_NAMES, get_runtime
from repro.scenario.spec import ScenarioBuilder
from tests.integration.conformance import run_on

LIVE_RUNTIMES = tuple(n for n in RUNTIME_NAMES if n != "sim")


def chaos_spec(name, total_calls=4):
    return (
        ScenarioBuilder(name)
        .duration(60)
        .service("target", n=4, app="echo")
        .service("caller", n=1, app="sync_caller",
                 target="target", total_calls=total_calls)
    )


@pytest.mark.parametrize("runtime", RUNTIME_NAMES)
def test_crash_faulted_echo_parity_across_substrates(runtime):
    # One spec shape, one crashed replica, every substrate: the
    # surviving quorum completes the identical workload everywhere.
    spec = chaos_spec(f"crash-parity-{runtime}").crash("target", 2).build()
    metrics = run_on(runtime, spec, until_s=120)
    assert metrics.services["caller"].completed_calls == 4
    assert metrics.services["caller"].aborted_calls == 0


def test_corrupt_replica_enforced_on_threaded_runtime():
    spec = (
        chaos_spec("corrupt-threaded")
        .byzantine("target", 1, mode="corrupt")
        .build()
    )
    metrics = run_on("threaded", spec)
    assert metrics.services["caller"].completed_calls == 4
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.counters["faults_injected"] >= 1


def test_corrupt_and_delay_enforced_on_process_runtime():
    # The workers rebuild the fault plan from spec JSON: the injected
    # fault counters flow back through the worker stats channel.
    spec = (
        chaos_spec("corrupt-delay-process")
        .byzantine("target", 1, mode="corrupt")
        .delay("target", 3, delay_us=1_000)
        .build()
    )
    metrics = run_on("process", spec, until_s=120)
    assert metrics.services["caller"].completed_calls == 4
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.counters["faults_injected"] >= 1


@pytest.mark.parametrize("runtime", LIVE_RUNTIMES)
def test_link_faults_rejected_by_live_substrates(runtime):
    spec = (
        chaos_spec(f"link-rejected-{runtime}")
        .link_fault("caller/d0", "*", drop=0.25)
        .build()
    )
    rt = get_runtime(runtime)
    try:
        with pytest.raises(ConfigurationError, match="link"):
            rt.deploy(spec)
    finally:
        rt.shutdown()
