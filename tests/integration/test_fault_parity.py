"""Integration: fault injection behaves the same on every substrate.

Crash, byzantine, and delay faults are enforced uniformly: the simulator
scripts them in-process, the threaded runtime wires the same FaultPlan
into its live nodes, and the process runtime rebuilds the plan inside
each worker from the spec JSON in its spawn payload. Sim-only ``link``
faults are rejected up front by the live substrates.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.scenario.process import ProcessRuntime
from repro.scenario.runtime import get_runtime, run_scenario
from repro.scenario.spec import ScenarioBuilder


def chaos_spec(name, total_calls=4):
    return (
        ScenarioBuilder(name)
        .duration(60)
        .service("target", n=4, app="echo")
        .service("caller", n=1, app="sync_caller",
                 target="target", total_calls=total_calls)
    )


def run_threaded(spec, until_s=90):
    runtime = get_runtime("threaded")
    runtime.deploy(spec)
    try:
        runtime.run(until_s=until_s)
        metrics = runtime.metrics()
        assert runtime.errors() == []
        return metrics
    finally:
        runtime.shutdown()


def run_process(spec, until_s=120):
    runtime = ProcessRuntime()
    runtime.deploy(spec)
    try:
        runtime.run(until_s=until_s)
        metrics = runtime.metrics()
        assert runtime.worker_errors() == {}
        return metrics
    finally:
        runtime.shutdown()


def test_crash_faulted_echo_parity_across_substrates():
    # One spec object, one crashed replica, three substrates: the
    # surviving quorum completes the identical workload everywhere.
    spec = chaos_spec("crash-parity").crash("target", 2).build()

    results = {
        "sim": run_scenario(spec, runtime="sim"),
        "threaded": run_threaded(spec),
        "process": run_process(spec),
    }
    for metrics in results.values():
        assert metrics.services["caller"].completed_calls == 4
        assert metrics.services["caller"].aborted_calls == 0


def test_corrupt_replica_enforced_on_threaded_runtime():
    spec = (
        chaos_spec("corrupt-threaded")
        .byzantine("target", 1, mode="corrupt")
        .build()
    )
    metrics = run_threaded(spec)
    assert metrics.services["caller"].completed_calls == 4
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.counters["faults_injected"] >= 1


def test_corrupt_and_delay_enforced_on_process_runtime():
    # The workers rebuild the fault plan from spec JSON: the injected
    # fault counters flow back through the worker stats channel.
    spec = (
        chaos_spec("corrupt-delay-process")
        .byzantine("target", 1, mode="corrupt")
        .delay("target", 3, delay_us=1_000)
        .build()
    )
    metrics = run_process(spec)
    assert metrics.services["caller"].completed_calls == 4
    assert metrics.services["caller"].aborted_calls == 0
    assert metrics.counters["faults_injected"] >= 1


def test_link_faults_rejected_by_live_substrates():
    spec = (
        chaos_spec("link-rejected")
        .link_fault("caller/d0", "*", drop=0.25)
        .build()
    )
    threaded = get_runtime("threaded")
    try:
        with pytest.raises(ConfigurationError, match="link"):
            threaded.deploy(spec)
    finally:
        threaded.shutdown()
    process = ProcessRuntime()
    try:
        with pytest.raises(ConfigurationError, match="link"):
            process.deploy(spec)
    finally:
        process.shutdown()
