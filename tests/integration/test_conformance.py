"""The substrate conformance matrix: every case x every runtime.

See :mod:`tests.integration.conformance` for the cases. A runtime that
registers in ``RUNTIME_NAMES`` is pulled into this matrix automatically
— there is no per-substrate test to write.
"""

import pytest

from tests.integration.conformance import CASES, RUNTIMES


@pytest.mark.parametrize("runtime", RUNTIMES)
@pytest.mark.parametrize("case", CASES, ids=str)
def test_conformance(case, runtime):
    CASES[case](runtime)
