"""Integration: faulty responder handling (Figure 1 stages 5-6).

The responder is a single target voter, so a faulty one can swallow reply
bundles. The caller's retransmission path rotates the designated
responder deterministically, so any correct target voter eventually
serves the bundle — liveness without weakening the ft+1 voucher check.
"""

from repro.sim.network import FaultyLink, LanModel
from repro.ws.deployment import Deployment
from tests.integration.helpers import counter_service, scripted_caller


def test_mute_responder_routed_around():
    network = FaultyLink(LanModel())
    # Target voter 1 never talks to any calling driver: every bundle it
    # should send as responder is lost.
    for d in range(4):
        network.add_rule("target/v1", f"caller/d{d}", drop=1.0)
    deployment = Deployment(name="mute-responder", network=network)
    deployment.declare("caller", 4)
    deployment.declare("target", 4)
    deployment.add_service("target", counter_service())
    results = []
    caller = deployment.add_service(
        "caller", scripted_caller("target", 4, results)
    )
    deployment.run(seconds=240)
    # Requests whose responder rotation starts at voter 1 recover via
    # retries; all calls complete, exactly once.
    assert caller.group.drivers[0].completed_calls == 4
    from collections import Counter

    counts = Counter(r["counter"] for r in results)
    assert counts == {k: 4 for k in range(1, 5)}


def test_responder_cannot_forge_results():
    """A responder can only bundle replies carrying valid voter MACs: a
    bundle with vouchers below ft+1 (or with tampered results) never
    reaches the application."""
    from repro.common.ids import RequestId, ServiceId
    from repro.clbft.messages import message_to_wire
    from repro.perpetual.messages import ReplyBundle
    from repro.transport.channel import ChannelAdapter
    from repro.transport.connection import SimConnection

    deployment = Deployment(name="forge-bundle")
    deployment.declare("caller", 4)
    deployment.declare("target", 4)
    deployment.add_service("target", counter_service())
    results = []
    caller = deployment.add_service(
        "caller", scripted_caller("target", 1, results)
    )
    deployment.run(seconds=30)
    completed = caller.group.drivers[0].completed_calls
    assert completed == 1

    # A faulty target voter fabricates a bundle for a request id the
    # caller has outstanding=none; and even for outstanding ids the
    # voucher check requires ft+1 valid MACs, which it cannot mint alone.
    forged = ReplyBundle(
        request_id=RequestId(ServiceId("caller"), 2),
        result=b"<forged/>",
        vouchers=((1, ["target/v1", [["caller/d0", b"f" * 16]]]),),
    )
    env = deployment.sim.env("target/v1")
    channel = ChannelAdapter(
        me="target/v1",
        keys=deployment.keys,
        connection=SimConnection(env),
    )
    channel.send("caller/d0", message_to_wire(forged))
    deployment.run(seconds=30)
    assert caller.group.drivers[0].completed_calls == 1  # nothing new
    assert caller.group.drivers[0].aborted_calls == 0
