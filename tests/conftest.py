"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyStore
from repro.sim.kernel import Simulator
from repro.sim.network import LanModel
from repro.ws.deployment import Deployment


@pytest.fixture
def keys() -> KeyStore:
    return KeyStore.for_deployment("test")


@pytest.fixture
def sim() -> Simulator:
    simulator = Simulator()
    simulator.set_network(LanModel())
    return simulator


@pytest.fixture
def deployment() -> Deployment:
    return Deployment(name="test-deployment")


def run_until(deployment: Deployment, predicate, seconds: float = 60.0,
              step_events: int = 2000) -> bool:
    """Drive a deployment until ``predicate()`` or the time budget ends."""
    deadline_us = deployment.sim.now_us + int(seconds * 1_000_000)
    while deployment.sim.now_us <= deadline_us:
        if predicate():
            return True
        processed = deployment.sim.run(
            until_us=deadline_us, max_events=step_events
        )
        if processed == 0:
            break
    return predicate()
