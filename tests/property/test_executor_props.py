"""Property-based tests: executor replay determinism.

The foundation of replica consistency: feeding the same agreed event
sequence to two instances of the same application produces bit-identical
effect streams, for randomly generated applications and event orders.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.common.ids import RequestId, ServiceId
from repro.perpetual.executor import (
    Compute,
    ExecutorRuntime,
    ReceiveAny,
    ReceiveReply,
    ReceiveRequest,
    ReplyEvent,
    RequestEvent,
    Send,
    SendReply,
)


def generic_app(script):
    """An application parameterised by a hypothesis-generated script.

    Script items: ("serve",) — receive a request and reply to it;
    ("call", payload) — send and await the reply; ("any",) — consume the
    next event of either kind; ("compute", us) — burn CPU.
    """

    def app():
        for step in script:
            if step[0] == "serve":
                event = yield ReceiveRequest()
                yield SendReply(event, {"served": event.payload})
            elif step[0] == "call":
                rid = yield Send("peer", step[1])
                yield ReceiveReply(rid)
            elif step[0] == "any":
                event = yield ReceiveAny()
                if isinstance(event, RequestEvent):
                    yield SendReply(event, "ack")
            elif step[0] == "compute":
                yield Compute(step[1])

    return app


steps = st.one_of(
    st.just(("serve",)),
    st.tuples(st.just("call"), st.integers(min_value=0, max_value=99)),
    st.just(("any",)),
    st.tuples(st.just("compute"), st.integers(min_value=0, max_value=500)),
)


def run_with_events(script, fuel: int = 200):
    """Run one instance, synthesising inputs on demand; return the trace."""
    counter = itertools.count(1)
    runtime = ExecutorRuntime(
        app_factory=generic_app(script),
        allocate_request_id=lambda: RequestId(ServiceId("me"), next(counter)),
    )
    trace = []
    incoming = itertools.count(1)
    sent_awaiting: list[RequestId] = []
    for _ in range(fuel):
        runtime.step()
        outbox = runtime.take_outbox()
        for rid, send in outbox.sends:
            trace.append(("send", rid.seqno, send.payload))
            sent_awaiting.append(rid)
        for reply in outbox.replies:
            trace.append(("reply", reply.payload))
        if outbox.compute_us:
            trace.append(("compute", outbox.compute_us))
        if runtime.finished:
            break
        waiting = runtime.blocked_on
        if isinstance(waiting, ReceiveRequest):
            seq = next(incoming)
            runtime.deliver_request(
                RequestEvent(RequestId(ServiceId("c"), seq), "c", {"n": seq})
            )
        elif isinstance(waiting, ReceiveReply) and sent_awaiting:
            rid = sent_awaiting.pop(0)
            runtime.deliver_reply(ReplyEvent(rid, {"echo": rid.seqno}))
        elif isinstance(waiting, ReceiveAny):
            seq = next(incoming)
            runtime.deliver_request(
                RequestEvent(RequestId(ServiceId("c"), seq), "c", {"n": seq})
            )
        else:
            break
    return trace


@given(st.lists(steps, max_size=12))
@settings(max_examples=100, deadline=None)
def test_identical_scripts_identical_traces(script):
    assert run_with_events(script) == run_with_events(script)


@given(st.lists(steps, max_size=10))
@settings(max_examples=50, deadline=None)
def test_trace_is_pure_function_of_script_not_instance(script):
    traces = {tuple(map(str, run_with_events(script))) for _ in range(3)}
    assert len(traces) == 1
