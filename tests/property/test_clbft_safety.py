"""Property-based tests: CLBFT safety under adversarial schedules.

The central invariant — no two correct replicas execute different
operations at the same position in the total order — must hold for every
message schedule: arbitrary interleavings, delays, and drops of up to f
replicas' traffic.
"""

from hypothesis import given, settings, strategies as st

from repro.clbft.messages import ClientRequest
from tests.unit.clbft.harness import Group


def consistent_prefixes(group: Group) -> bool:
    """Every pair of replicas' executed sequences agree on the common
    prefix (one may lag the other)."""
    sequences = [group.executed[i] for i in range(group.config.n)]
    for a in sequences:
        for b in sequences:
            for (seq_a, op_a), (seq_b, op_b) in zip(a, b):
                if seq_a == seq_b and op_a != op_b:
                    return False
    return True


@given(
    schedule=st.lists(st.integers(min_value=0, max_value=10**6), max_size=400),
    request_count=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_no_divergent_execution_under_random_scheduling(
    schedule, request_count, data
):
    """Messages delivered in a hypothesis-chosen order: safety holds."""
    group = Group(4)
    for k in range(request_count):
        group.submit({"k": k}, timestamp=k + 1)
    # Shuffle-deliver: pick queue positions pseudo-randomly from the
    # schedule; leftovers delivered in order afterwards.
    for choice in schedule:
        if not group.bus.queue:
            break
        index = choice % len(group.bus.queue)
        src, dst, msg = group.bus.queue.pop(index)
        group.replicas[dst].on_message(src, msg)
    group.deliver_all()
    assert consistent_prefixes(group)
    # And with full delivery, everyone executed everything, identically.
    reference = group.executed_ops(0)
    assert len(reference) == request_count
    for i in range(1, 4):
        assert group.executed_ops(i) == reference


@given(
    silent=st.integers(min_value=0, max_value=3),
    request_count=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_one_silent_replica_never_blocks_or_diverges(silent, request_count):
    """Any single silent replica (f=1): progress and safety both hold —
    if the primary is the silent one, after the view change."""
    group = Group(4)
    group.bus.drop = lambda src, dst, msg: src == silent or dst == silent
    live = [i for i in range(4) if i != silent]
    for k in range(request_count):
        group.submit({"k": k}, timestamp=k + 1, to=live)
    group.deliver_all()
    if silent == 0:
        for i in live:
            group.fire_timer(i)
        group.deliver_all()
        # A second round in case the first view change raced.
        for i in live:
            group.fire_timer(i)
        group.deliver_all()
    assert consistent_prefixes(group)
    for i in live:
        assert len(group.executed_ops(i)) == request_count, f"replica {i}"


@given(
    duplicated=st.integers(min_value=0, max_value=3),
    request_count=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_duplicated_traffic_is_harmless(duplicated, request_count):
    """Replaying one replica's entire outbound traffic changes nothing."""
    group = Group(4)
    original_post = group.bus.post

    def duplicating_post(src, dst, msg):
        original_post(src, dst, msg)
        if src == duplicated:
            original_post(src, dst, msg)

    group.bus.post = duplicating_post
    # Rebind the replicas' effect callables to the wrapped bus.
    for k in range(request_count):
        group.submit({"k": k}, timestamp=k + 1)
    group.deliver_all()
    for i in range(4):
        assert len(group.executed_ops(i)) == request_count
    assert consistent_prefixes(group)
