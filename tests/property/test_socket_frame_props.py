"""Property-based tests: the length-prefixed socket framer.

Invariants: a frame stream reassembles identically no matter how the
TCP layer chunks it (byte-by-byte, random splits, coalesced writes);
frame boundaries never leak bytes between payloads; oversized length
prefixes and truncated streams fail loudly instead of yielding short
or corrupt frames.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.transport.socket_frame import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
)

payloads = st.lists(
    st.binary(min_size=0, max_size=512), min_size=0, max_size=12
)


def chunked(data: bytes, cuts: list[int]):
    """Split ``data`` at the (normalised) cut offsets."""
    offsets = sorted({min(c, len(data)) for c in cuts})
    pieces, last = [], 0
    for offset in offsets:
        pieces.append(data[last:offset])
        last = offset
    pieces.append(data[last:])
    return pieces


@given(frames=payloads, data=st.data())
@settings(max_examples=200)
def test_roundtrip_over_random_chunk_sizes(frames, data):
    stream = b"".join(encode_frame(p) for p in frames)
    cuts = data.draw(
        st.lists(st.integers(min_value=0, max_value=max(len(stream), 1)),
                 max_size=20)
    )
    decoder = FrameDecoder()
    out = []
    for piece in chunked(stream, cuts):
        out.extend(decoder.feed(piece))
    assert out == frames
    assert decoder.pending == 0
    decoder.finish()  # clean boundary: not truncated


@given(frames=payloads)
@settings(max_examples=50)
def test_roundtrip_byte_by_byte(frames):
    stream = b"".join(encode_frame(p) for p in frames)
    decoder = FrameDecoder()
    out = []
    for i in range(len(stream)):
        out.extend(decoder.feed(stream[i:i + 1]))
    assert out == frames
    assert decoder.pending == 0


@given(frames=payloads.filter(bool))
@settings(max_examples=50)
def test_coalesced_single_feed(frames):
    stream = b"".join(encode_frame(p) for p in frames)
    assert FrameDecoder().feed(stream) == frames


def test_oversized_length_prefix_rejected_without_buffering():
    prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
    decoder = FrameDecoder()
    with pytest.raises(FrameError, match="over the"):
        decoder.feed(prefix)


def test_oversized_payload_refused_at_encode_time():
    class _HugeLen(bytes):
        def __len__(self):
            return MAX_FRAME_BYTES + 1

    with pytest.raises(FrameError, match="exceeds"):
        encode_frame(_HugeLen())


@given(payload=st.binary(min_size=1, max_size=64),
       keep=st.integers(min_value=1))
@settings(max_examples=50)
def test_truncated_stream_is_an_error_not_a_short_frame(payload, keep):
    stream = encode_frame(payload)
    # Keep 1..len-1 bytes: always mid-frame, never a clean boundary.
    cut = 1 + keep % (len(stream) - 1)
    decoder = FrameDecoder()
    assert decoder.feed(stream[:cut]) == []
    assert decoder.pending == cut
    with pytest.raises(FrameError, match="truncated"):
        decoder.finish()


def test_truncated_length_prefix_is_an_error_at_eof():
    decoder = FrameDecoder()
    assert decoder.feed(b"\x00\x00") == []  # half a length prefix
    with pytest.raises(FrameError, match="truncated"):
        decoder.finish()
