"""Property tests: the fused wire codec matches the two-pass reference.

``encode_message`` / ``decode_message`` exist purely for speed; their
contract is byte-for-byte equivalence with
``canonical_encode(message_to_wire(x))`` and value equivalence with
``message_from_wire(decode_payload(data))``. Replica agreement depends on
every replica producing identical bytes, so this equivalence is the
load-bearing property of the wire fast path.
"""

from hypothesis import given, settings, strategies as st

from repro.clbft.messages import (
    ClientRequest,
    Commit,
    PrePrepare,
    Prepare,
    decode_message,
    encode_message,
    message_from_wire,
    message_to_wire,
)
from repro.common.encoding import canonical_encode, decode_payload
from repro.common.ids import RequestId, ServiceId
from repro.perpetual.messages import OutRequest, ReplyBundle, ResultSubmission

service_names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=8,
)
request_ids = st.builds(
    RequestId, st.builds(ServiceId, service_names),
    st.integers(min_value=0, max_value=2**32),
)

payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=24,
        ),
        # Non-ASCII and control characters exercise the escape path, which
        # must match json.dumps(ensure_ascii=True) byte for byte.
        st.text(max_size=12),
        st.binary(max_size=24),
        request_ids,
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.lists(children, max_size=3).map(tuple),
        st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1, max_size=6,
            ),
            children,
            max_size=3,
        ),
    ),
    max_leaves=8,
)

out_requests = st.builds(
    OutRequest,
    request_id=request_ids,
    caller=st.builds(ServiceId, service_names),
    target=st.builds(ServiceId, service_names),
    payload=payloads,
    responder_index=st.integers(min_value=0, max_value=9),
    attempt=st.integers(min_value=0, max_value=3),
)

client_requests = st.builds(
    ClientRequest,
    client=service_names,
    timestamp=st.integers(min_value=0, max_value=2**32),
    op=payloads,
)

messages = st.one_of(
    payloads,
    out_requests,
    client_requests,
    st.builds(
        Prepare,
        view=st.integers(min_value=0, max_value=9),
        seqno=st.integers(min_value=0, max_value=999),
        digest=st.binary(min_size=32, max_size=32),
        replica=st.integers(min_value=0, max_value=9),
    ),
    st.builds(
        Commit,
        view=st.integers(min_value=0, max_value=9),
        seqno=st.integers(min_value=0, max_value=999),
        digest=st.binary(min_size=32, max_size=32),
        replica=st.integers(min_value=0, max_value=9),
    ),
    st.builds(
        PrePrepare,
        view=st.integers(min_value=0, max_value=9),
        seqno=st.integers(min_value=0, max_value=999),
        digest=st.binary(min_size=32, max_size=32),
        requests=st.lists(client_requests, max_size=3).map(tuple),
    ),
    st.builds(
        ResultSubmission,
        request_id=request_ids,
        result=payloads,
        aborted=st.booleans(),
    ),
    st.builds(
        ReplyBundle,
        request_id=request_ids,
        result=payloads,
        vouchers=st.lists(
            st.tuples(st.integers(min_value=0, max_value=9), payloads),
            max_size=3,
        ).map(tuple),
    ),
)


@given(messages)
@settings(max_examples=300)
def test_fused_encode_matches_two_pass_reference(msg):
    assert encode_message(msg) == canonical_encode(message_to_wire(msg))


@given(messages)
@settings(max_examples=300)
def test_fused_decode_matches_two_pass_reference(msg):
    data = encode_message(msg)
    assert decode_message(data) == message_from_wire(decode_payload(data))


@given(messages)
@settings(max_examples=200)
def test_fused_roundtrip_identity(msg):
    assert decode_message(encode_message(msg)) == msg
