"""Property: ScenarioSpec -> to_json -> from_json is the identity.

The scenario document is the deployment contract shared by every
substrate — the CLI ships it to disk, the multi-process runtime ships it
to worker processes — so the JSON round trip must preserve every field,
including fault-injection and network-model structure and arbitrary
JSON-safe application parameters.
"""

from hypothesis import given, settings, strategies as st

from repro.scenario.spec import (
    AppSpec,
    FaultSpec,
    GroupSpec,
    NetworkSpec,
    RoutingSpec,
    ScenarioBuilder,
    ScenarioSpec,
    ServiceDecl,
)

# JSON-safe values (dict keys must be strings; no NaN/inf, which JSON
# cannot express losslessly).
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=8), children, max_size=3),
    ),
    max_leaves=8,
)
json_params = st.dictionaries(st.text(min_size=1, max_size=10), json_values, max_size=4)

service_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=10
)


@st.composite
def service_decls(draw, name: str) -> ServiceDecl:
    n = draw(st.integers(min_value=1, max_value=7))
    hosts = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.text(min_size=1, max_size=8), min_size=n, max_size=n
            ).map(tuple),
        )
    )
    return ServiceDecl(
        name=name,
        n=n,
        app=AppSpec(kind=draw(st.text(min_size=1, max_size=10)),
                    params=draw(json_params)),
        crypto=draw(st.one_of(st.none(), st.sampled_from(["mac", "rsa-signature"]))),
        hosts=hosts,
        clbft=draw(st.one_of(st.none(), json_params)),
    )


networks = st.one_of(
    st.builds(
        NetworkSpec,
        kind=st.just("lan"),
        params=st.fixed_dictionaries(
            {},
            optional={
                "propagation_us": st.integers(0, 10_000),
                "ns_per_byte": st.integers(0, 100),
                "jitter_us": st.integers(0, 1000),
            },
        ),
    ),
    st.builds(
        NetworkSpec,
        kind=st.just("uniform"),
        params=st.fixed_dictionaries(
            {}, optional={"latency_us": st.integers(0, 100_000)}
        ),
    ),
)


@st.composite
def scenario_specs(draw) -> ScenarioSpec:
    names = draw(
        st.lists(service_names, min_size=1, max_size=4, unique=True)
    )
    services = tuple(draw(service_decls(name)) for name in names)
    crash_faults = st.builds(
        FaultSpec,
        kind=st.just("crash"),
        service=st.sampled_from(names),
        index=st.integers(0, 6),
        params=st.just({}),
    )
    link_faults = st.builds(
        FaultSpec,
        kind=st.just("link"),
        service=st.just(""),
        index=st.just(0),
        params=st.fixed_dictionaries(
            {
                "src": st.one_of(st.just("*"), service_names),
                "dst": st.one_of(st.just("*"), service_names),
            },
            optional={
                "drop": st.floats(0.0, 1.0, allow_nan=False),
                "extra_delay_us": st.integers(0, 50_000),
            },
        ),
    )
    byzantine_faults = st.builds(
        FaultSpec,
        kind=st.just("byzantine"),
        service=st.sampled_from(names),
        index=st.integers(0, 6),
        params=st.fixed_dictionaries(
            {"mode": st.sampled_from(["equivocate", "corrupt", "mute"])}
        ),
    )
    delay_faults = st.builds(
        FaultSpec,
        kind=st.just("delay"),
        service=st.sampled_from(names),
        index=st.integers(0, 6),
        params=st.fixed_dictionaries(
            {"delay_us": st.integers(1, 1_000_000)},
            optional={"jitter_us": st.integers(0, 100_000)},
        ),
    )
    partition_faults = st.builds(
        FaultSpec,
        kind=st.just("partition"),
        service=st.sampled_from(names),
        index=st.just(0),
        params=st.fixed_dictionaries(
            {
                "side": st.lists(st.integers(0, 6), min_size=1, max_size=3),
                "heal_after_us": st.integers(1, 10_000_000),
            },
            optional={"start_after_us": st.integers(0, 1_000_000)},
        ),
    )
    restart_faults = st.builds(
        FaultSpec,
        kind=st.just("restart"),
        service=st.sampled_from(names),
        index=st.integers(0, 6),
        params=st.fixed_dictionaries(
            {"up_after_us": st.integers(1, 10_000_000)},
            optional={"down_after_us": st.integers(0, 1_000_000)},
        ),
    )
    fault_specs = st.one_of(
        crash_faults, link_faults, byzantine_faults,
        delay_faults, partition_faults, restart_faults,
    )
    # Optionally shard: move a suffix of the services into named groups
    # (round-robin), each with its own faults, plus a routing policy —
    # the whole sharded structure must survive the round trip too.
    groups: tuple[GroupSpec, ...] = ()
    routing = None
    if len(services) >= 2 and draw(st.booleans()):
        split = draw(st.integers(min_value=1, max_value=len(services) - 1))
        grouped, services = services[split:], services[:split]
        group_names = draw(
            st.lists(
                st.text(alphabet="ghjk0123456789", min_size=1, max_size=6),
                min_size=1,
                max_size=min(2, len(grouped)),
                unique=True,
            )
        )
        buckets: list[list[ServiceDecl]] = [[] for _ in group_names]
        for i, grouped_decl in enumerate(grouped):
            buckets[i % len(group_names)].append(grouped_decl)
        groups = tuple(
            GroupSpec(
                name=group_name,
                services=tuple(bucket),
                faults=tuple(draw(st.lists(fault_specs, max_size=2))),
            )
            for group_name, bucket in zip(group_names, buckets)
        )
        routing = RoutingSpec(
            policy=draw(st.sampled_from(["service_name", "consistent_hash"])),
            params=draw(
                st.one_of(
                    st.just({}),
                    st.fixed_dictionaries({"vnodes": st.integers(1, 128)}),
                )
            ),
        )
    return ScenarioSpec(
        name=draw(st.text(min_size=1, max_size=16)),
        services=services,
        network=draw(networks),
        crypto=draw(st.sampled_from(["mac", "rsa-signature"])),
        crypto_params=draw(
            st.one_of(
                st.none(),
                st.fixed_dictionaries(
                    {
                        "sign_us": st.integers(0, 10_000),
                        "verify_us": st.integers(0, 10_000),
                        "per_receiver_us": st.integers(0, 100),
                    }
                ),
            )
        ),
        faults=tuple(draw(st.lists(fault_specs, max_size=3))),
        duration_s=draw(
            st.floats(min_value=0.0, max_value=1e6,
                      allow_nan=False, allow_infinity=False)
        ),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        max_events=draw(st.one_of(st.none(), st.integers(0, 2**31))),
        groups=groups,
        routing=routing,
    )


@settings(max_examples=150, deadline=None)
@given(scenario_specs())
def test_scenario_spec_json_round_trip(spec):
    assert ScenarioSpec.from_json(spec.to_json()) == spec


@settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_scenario_spec_dict_round_trip(spec):
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_builder_output_round_trips_with_faults_and_network():
    spec = (
        ScenarioBuilder("round-trip")
        .network("lan", propagation_us=170, jitter_us=25)
        .crypto("bespoke", sign_us=500, verify_us=50, per_receiver_us=2)
        .service("target", n=4, app="echo")
        .service("caller", n=4, app="sync_caller",
                 target="target", total_calls=9,
                 body={"cpu_us": 2000}, timeout_ms=750)
        .crash("target", 3)
        .link_fault("caller/d0", "*", drop=0.25, extra_delay_us=500)
        .duration(33.5)
        .seed(7)
        .max_events(1_000_000)
        .build()
    )
    restored = ScenarioSpec.from_json(spec.to_json())
    assert restored == spec
    assert restored.faults[0].kind == "crash"
    assert restored.faults[1].params["drop"] == 0.25
    assert restored.network.params["jitter_us"] == 25
    assert restored.crypto_params == {
        "sign_us": 500, "verify_us": 50, "per_receiver_us": 2,
    }
    assert restored.service("caller").app.params["timeout_ms"] == 750
