"""Property-based tests: MAC authenticator soundness."""

from hypothesis import given, settings, strategies as st

from repro.crypto.auth import AuthenticatorFactory
from repro.crypto.keys import KeyStore
from repro.crypto.mac import compute_mac, verify_mac

keys = KeyStore.for_deployment("prop")
names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


@given(st.binary(max_size=128), names, st.lists(names, min_size=1, max_size=6,
                                                unique=True))
@settings(max_examples=150)
def test_every_addressee_verifies(data, sender, receivers):
    auth = AuthenticatorFactory(keys, sender).sign(data, list(receivers))
    for receiver in receivers:
        assert AuthenticatorFactory(keys, receiver).verify(data, auth)


@given(st.binary(max_size=64), st.binary(max_size=64), names, names)
@settings(max_examples=150)
def test_tampering_detected(data, other, sender, receiver):
    if data == other:
        return
    auth = AuthenticatorFactory(keys, sender).sign(data, [receiver])
    assert not AuthenticatorFactory(keys, receiver).verify(other, auth)


@given(st.binary(max_size=64), names, names, names)
@settings(max_examples=150)
def test_non_addressee_never_verifies(data, sender, receiver, outsider):
    if outsider == receiver:
        return
    auth = AuthenticatorFactory(keys, sender).sign(data, [receiver])
    assert not AuthenticatorFactory(keys, outsider).verify(data, auth)


@given(st.binary(min_size=1, max_size=64), st.binary(max_size=64))
@settings(max_examples=150)
def test_mac_verifies_iff_same_key_and_data(key, data):
    tag = compute_mac(key, data)
    assert verify_mac(key, data, tag)
    assert not verify_mac(key + b"x", data, tag)
