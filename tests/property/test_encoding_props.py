"""Property-based tests: the canonical codec.

Invariants: encode/decode is the identity on the supported value domain;
encoding is deterministic; distinct values get distinct encodings (within
generated samples).
"""

from hypothesis import given, settings, strategies as st

from repro.common.encoding import (
    WireBlob,
    canonical_encode,
    decode_payload,
    wire_blob,
)
from repro.common.ids import MessageId, NodeId, ReplicaId, RequestId, ServiceId

service_names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=8,
)

replica_ids = st.builds(
    ReplicaId, st.builds(ServiceId, service_names),
    st.integers(min_value=0, max_value=64),
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=40,
    ),
    st.binary(max_size=40),
    st.builds(ServiceId, service_names),
    st.builds(
        RequestId, st.builds(ServiceId, service_names),
        st.integers(min_value=0, max_value=2**32),
    ),
    replica_ids,
    st.builds(NodeId, replica_ids, st.sampled_from(["voter", "driver"])),
    st.builds(
        MessageId,
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=24,
        ),
    ),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1, max_size=6,
            ),
            children,
            max_size=4,
        ),
    ),
    max_leaves=12,
)


@given(values)
@settings(max_examples=200)
def test_roundtrip_identity(value):
    assert decode_payload(canonical_encode(value)) == value


@given(values)
@settings(max_examples=100)
def test_encoding_deterministic(value):
    assert canonical_encode(value) == canonical_encode(value)


@given(values, values)
@settings(max_examples=100)
def test_injective_on_samples(a, b):
    if canonical_encode(a) == canonical_encode(b):
        assert decode_payload(canonical_encode(a)) == decode_payload(
            canonical_encode(b)
        )


@given(st.dictionaries(
    st.text(alphabet="abcdef", min_size=1, max_size=4),
    st.integers(min_value=0, max_value=9),
    max_size=6,
))
@settings(max_examples=100)
def test_key_order_irrelevant(d):
    reordered = dict(reversed(list(d.items())))
    assert canonical_encode(d) == canonical_encode(reordered)


@given(values)
@settings(max_examples=100)
def test_wire_blob_matches_direct_encode(value):
    blob = WireBlob(value)
    assert blob.data == canonical_encode(value)
    assert decode_payload(blob.data) == value


@given(values)
@settings(max_examples=100)
def test_wire_blob_cache_roundtrips(value):
    container = [value]  # ensure a cacheable (non-interned) identity
    blob = wire_blob(container)
    assert wire_blob(container) is blob
    assert decode_payload(blob.data) == [value]
