"""Property-based tests: SOAP envelope marshal/demarshal identity."""

import xml.etree.ElementTree as ET

from hypothesis import given, settings, strategies as st

from repro.soap.envelope import SoapEnvelope, body_from_xml, body_to_xml

header_names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=10,
)
header_values = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                           exclude_characters="<>&"),
    min_size=1, max_size=30,
)

bodies = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**12), max_value=10**12),
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=30,
        ),
        st.binary(max_size=30),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(header_names, children, max_size=3),
    ),
    max_leaves=10,
)


@given(st.dictionaries(header_names, header_values, max_size=4), bodies)
@settings(max_examples=150)
def test_envelope_roundtrip(headers, body):
    envelope = SoapEnvelope(headers=headers, body=body)
    restored = SoapEnvelope.from_xml(envelope.to_xml())
    assert restored.headers == headers
    assert restored.body == body


@given(bodies)
@settings(max_examples=80)
def test_marshal_deterministic(body):
    assert SoapEnvelope(body=body).to_xml() == SoapEnvelope(body=body).to_xml()


@given(bodies)
@settings(max_examples=150)
def test_fast_marshal_matches_elementtree_reference(body):
    """The string-building marshaller and the retained ElementTree codec
    must stay interchangeable: XML from either parses to the same value."""
    fast = SoapEnvelope(body=body).to_xml()
    fast_payload = ET.fromstring(fast).find(
        "{http://www.w3.org/2003/05/soap-envelope}Body/payload"
    )
    assert fast_payload is not None
    assert body_from_xml(fast_payload) == body

    reference_parent = ET.Element("parent")
    reference = body_to_xml(reference_parent, "payload", body)
    assert body_from_xml(reference) == body
