"""Property-based tests: quorum arithmetic invariants.

The safety-critical inequalities behind CLBFT and Perpetual, checked over
the whole practical parameter range rather than the paper's four points.
"""

from hypothesis import given, strategies as st

from repro.common.quorum import (
    agreement_quorum,
    fault_bound,
    group_size,
    matching_request_quorum,
    reply_bundle_quorum,
    weak_certificate,
)

group_sizes = st.integers(min_value=1, max_value=400)
fault_bounds = st.integers(min_value=0, max_value=130)


@given(group_sizes)
def test_quorum_intersection_contains_correct_replica(n):
    """Any two agreement quorums overlap in at least f+1 replicas."""
    f = fault_bound(n)
    q = agreement_quorum(n)
    assert 2 * q - n >= f + 1


@given(group_sizes)
def test_quorum_always_available(n):
    """With f faulty replicas silent, a quorum can still form."""
    assert agreement_quorum(n) <= n - fault_bound(n) or fault_bound(n) == 0


@given(group_sizes)
def test_weak_certificate_hits_correct_replica(n):
    assert weak_certificate(n) >= fault_bound(n) + 1


@given(fault_bounds)
def test_group_size_fault_bound_galois(f):
    assert fault_bound(group_size(f)) == f


@given(group_sizes)
def test_fault_bound_monotone(n):
    assert fault_bound(n + 1) >= fault_bound(n)


@given(group_sizes)
def test_request_quorum_unforgeable(n):
    """fc+1 matching copies cannot come exclusively from faulty callers."""
    assert matching_request_quorum(n) > fault_bound(n)


@given(group_sizes)
def test_reply_bundle_unforgeable(n):
    """ft+1 vouchers cannot come exclusively from faulty target voters."""
    assert reply_bundle_quorum(n) > fault_bound(n)


@given(group_sizes)
def test_reply_bundle_always_collectable(n):
    """With f faulty voters silent, the responder can still bundle."""
    assert reply_bundle_quorum(n) <= n - fault_bound(n)
