"""Unit tests for the Figure 2 feature matrix and restricted modes."""

import pytest

from repro.baselines.features import (
    ASYNC_COMM,
    BFT_WS,
    DYNAMIC_DISCOVERY,
    FAULT_ISOLATION,
    FEATURE_MATRIX,
    HOST_INFO,
    LONG_RUNNING,
    LOW_CRYPTO,
    PERPETUAL_WS,
    PROPERTIES,
    REPLICATED_INTEROP,
    SWS,
    SYSTEMS,
    THEMA,
    TRANSPORT_INDEP,
    UNMODIFIED_PASSIVE,
    render_matrix,
    supports,
)
from repro.baselines.restricted import (
    ALL_MODES,
    bft_ws_mode,
    perpetual_ws_mode,
    sws_mode,
    thema_mode,
)
from repro.common.errors import ConfigurationError


class TestMatrixShape:
    def test_complete(self):
        assert len(FEATURE_MATRIX) == len(SYSTEMS) * len(PROPERTIES)

    def test_nine_properties_four_systems(self):
        assert len(PROPERTIES) == 9
        assert len(SYSTEMS) == 4


class TestPaperClaims:
    """Each test transcribes one row of section 3 / Figure 2."""

    def test_replicated_interop(self):
        assert supports(PERPETUAL_WS, REPLICATED_INTEROP)
        assert supports(SWS, REPLICATED_INTEROP)
        assert not supports(THEMA, REPLICATED_INTEROP)
        assert not supports(BFT_WS, REPLICATED_INTEROP)

    def test_fault_isolation_unique_to_perpetual(self):
        assert supports(PERPETUAL_WS, FAULT_ISOLATION)
        for other in (THEMA, BFT_WS, SWS):
            assert not supports(other, FAULT_ISOLATION)

    def test_long_running_unique_to_perpetual(self):
        assert supports(PERPETUAL_WS, LONG_RUNNING)
        for other in (THEMA, BFT_WS, SWS):
            assert not supports(other, LONG_RUNNING)

    def test_async_unique_to_perpetual(self):
        assert supports(PERPETUAL_WS, ASYNC_COMM)
        for other in (THEMA, BFT_WS, SWS):
            assert not supports(other, ASYNC_COMM)

    def test_host_info_unique_to_perpetual(self):
        assert supports(PERPETUAL_WS, HOST_INFO)

    def test_low_crypto_mac_systems(self):
        assert supports(PERPETUAL_WS, LOW_CRYPTO)
        assert supports(THEMA, LOW_CRYPTO)
        assert not supports(BFT_WS, LOW_CRYPTO)
        assert not supports(SWS, LOW_CRYPTO)

    def test_transport_independence(self):
        assert supports(PERPETUAL_WS, TRANSPORT_INDEP)
        assert supports(BFT_WS, TRANSPORT_INDEP)
        assert not supports(THEMA, TRANSPORT_INDEP)

    def test_everyone_supports_unmodified_passive(self):
        for system in SYSTEMS:
            assert supports(system, UNMODIFIED_PASSIVE)

    def test_dynamic_discovery_only_sws(self):
        assert supports(SWS, DYNAMIC_DISCOVERY)
        assert not supports(PERPETUAL_WS, DYNAMIC_DISCOVERY)

    def test_implemented_claims_carry_probes(self):
        for prop in PROPERTIES:
            claim = FEATURE_MATRIX[(PERPETUAL_WS, prop)]
            if claim.supported:
                assert claim.probe, f"{prop} has no executable probe"

    def test_render_matrix_contains_everything(self):
        table = render_matrix()
        for system in SYSTEMS:
            assert system in table
        for prop in PROPERTIES:
            assert prop in table


class TestRestrictedModes:
    def test_perpetual_allows_everything(self):
        mode = perpetual_ws_mode()
        mode.check_caller_replication(10)
        mode.check_window(25)

    def test_thema_rejects_replicated_callers(self):
        with pytest.raises(ConfigurationError):
            thema_mode().check_caller_replication(4)

    def test_thema_rejects_async(self):
        with pytest.raises(ConfigurationError):
            thema_mode().check_window(5)

    def test_bft_ws_uses_signatures(self):
        assert bft_ws_mode().cost_model.name == "rsa-signature"

    def test_sws_allows_replicated_callers_but_not_async(self):
        mode = sws_mode()
        mode.check_caller_replication(7)
        with pytest.raises(ConfigurationError):
            mode.check_window(2)

    def test_all_modes_enumerated(self):
        assert {m.name for m in ALL_MODES} == set(SYSTEMS)
