"""Unit tests for the bookstore service logic and the RBE generator."""

from repro.tpcw.bookstore import BookstoreStats, bookstore_app
from repro.tpcw.interactions import (
    BEST_SELLERS,
    BUY_CONFIRM,
    BUY_REQUEST,
    HOME,
    ORDER_DISPLAY,
    PRODUCT_DETAIL,
    SEARCH_RESULTS,
    SHOPPING_CART,
)
from repro.tpcw.model import BookstoreDatabase
from repro.ws.api import (
    MessageContext,
    WsCompute,
    WsReceiveAny,
    WsSend,
    WsSendReceive,
    WsSendReply,
)


class StoreJig:
    """Drives the bookstore generator with scripted page requests."""

    def __init__(self, synchronous=False):
        self.db = BookstoreDatabase(item_count=50, customer_count=10)
        self.stats = BookstoreStats()
        self.gen = bookstore_app(
            self.db, self.stats, synchronous_pge=synchronous
        )()
        self.pending = self.gen.send(None)
        self.replies = []
        self.pge_sends = []
        self._mid = 0

    def _drain(self, value):
        op = self.gen.send(value)
        while True:
            if isinstance(op, WsSendReply):
                self.replies.append(op.reply.body)
                op = self.gen.send(None)
            elif isinstance(op, WsCompute):
                op = self.gen.send(None)
            elif isinstance(op, WsSend):
                self._mid += 1
                mid = f"urn:store:pge:{self._mid}"
                self.pge_sends.append((mid, op.context.body))
                op = self.gen.send(mid)
            else:
                break
        self.pending = op

    def page(self, page, **fields):
        context = MessageContext(body=dict(fields, page=page))
        context.kind = "request"
        context.message_id = f"urn:rbe:{len(self.replies)}"
        self._drain(context)
        return self.replies[-1] if self.replies else None

    def pge_reply(self, relates_to, body):
        context = MessageContext(body=body)
        context.kind = "reply"
        context.relates_to = relates_to
        if isinstance(self.pending, WsSendReceive):
            self._mid += 1
            self.pge_sends.append((None, self.pending.context.body))
            self._drain(context)
        else:
            assert isinstance(self.pending, WsReceiveAny)
            self._drain(context)
        return self.replies[-1]


class TestPages:
    def test_home(self):
        jig = StoreJig()
        reply = jig.page(HOME)
        assert reply["page"] == HOME
        assert jig.stats.interactions == 1

    def test_best_sellers_counts(self):
        jig = StoreJig()
        subject = jig.db.items[1].subject
        reply = jig.page(BEST_SELLERS, subject=subject)
        assert reply["count"] > 0

    def test_product_detail_found(self):
        jig = StoreJig()
        reply = jig.page(PRODUCT_DETAIL, item_id=1)
        assert reply["found"] is True
        assert reply["price_cents"] == jig.db.items[1].price_cents

    def test_search_results(self):
        jig = StoreJig()
        author = jig.db.items[1].author
        reply = jig.page(SEARCH_RESULTS, author=author)
        assert reply["count"] >= 1

    def test_cart_flow(self):
        jig = StoreJig()
        reply = jig.page(SHOPPING_CART, session=7, item_id=3)
        assert reply["cart_size"] == 1
        reply = jig.page(SHOPPING_CART, session=7, item_id=4)
        assert reply["cart_size"] == 2
        assert reply["total_cents"] == (
            jig.db.items[3].price_cents + jig.db.items[4].price_cents
        )

    def test_buy_request_creates_order(self):
        jig = StoreJig()
        jig.page(SHOPPING_CART, session=1, item_id=2)
        reply = jig.page(BUY_REQUEST, session=1, customer_id=3)
        assert reply["order_id"] == 1
        assert reply["total_cents"] == jig.db.items[2].price_cents

    def test_order_display(self):
        jig = StoreJig()
        jig.page(SHOPPING_CART, session=1, item_id=2)
        jig.page(BUY_REQUEST, session=1, customer_id=3)
        reply = jig.page(ORDER_DISPLAY, customer_id=3)
        assert reply["order_id"] == 1
        assert reply["status"] == "pending"


class TestBuyConfirm:
    def test_async_store_keeps_serving_during_payment(self):
        jig = StoreJig()
        jig.page(SHOPPING_CART, session=1, item_id=2)
        jig.page(BUY_REQUEST, session=1, customer_id=3)
        jig.page(BUY_CONFIRM, session=1, customer_id=3)
        mid, body = jig.pge_sends[-1]
        assert body["amount_cents"] == jig.db.items[2].price_cents
        # Another page is served while the PGE call is outstanding.
        reply = jig.page(HOME)
        assert reply["page"] == HOME
        # Then the authorisation lands and the order confirms.
        reply = jig.pge_reply(mid, {"approved": True, "auth_code": "A1"})
        assert reply["approved"] is True
        assert jig.db.orders[1].status == "confirmed"
        assert jig.stats.approved == 1

    def test_declined_payment_declines_order(self):
        jig = StoreJig()
        jig.page(SHOPPING_CART, session=1, item_id=2)
        jig.page(BUY_REQUEST, session=1, customer_id=3)
        jig.page(BUY_CONFIRM, session=1, customer_id=3)
        mid, _ = jig.pge_sends[-1]
        reply = jig.pge_reply(mid, {"approved": False})
        assert reply["approved"] is False
        assert jig.db.orders[1].status == "declined"
        assert jig.stats.declined == 1

    def test_confirmed_order_reduces_stock(self):
        jig = StoreJig()
        stock_before = jig.db.items[2].stock
        jig.page(SHOPPING_CART, session=1, item_id=2)
        jig.page(BUY_REQUEST, session=1, customer_id=3)
        jig.page(BUY_CONFIRM, session=1, customer_id=3)
        mid, _ = jig.pge_sends[-1]
        jig.pge_reply(mid, {"approved": True, "auth_code": "A"})
        assert jig.db.items[2].stock == stock_before - 1


class TestRbe:
    def test_rbe_emits_pages_and_thinks(self):
        from repro.perpetual.executor import Sleep
        from repro.tpcw.rbe import rbe_app
        from repro.ws.api import WsSendReceive

        app = rbe_app(rbe_index=0, seed=3, think_time_mean_us=1000)()
        op = app.send(None)
        pages = []
        sleeps = 0
        for _ in range(60):
            if isinstance(op, WsSendReceive):
                pages.append(op.context.body["page"])
                reply = MessageContext(body={"ok": True})
                reply.kind = "reply"
                op = app.send(reply)
            elif isinstance(op, Sleep):
                sleeps += 1
                op = app.send(None)
            else:
                raise AssertionError(f"unexpected op {op!r}")
        assert sleeps > 5
        assert len(set(pages)) > 3  # a real mix of pages

    def test_rbe_deterministic_given_seed(self):
        from repro.perpetual.executor import Sleep
        from repro.tpcw.rbe import rbe_app
        from repro.ws.api import WsSendReceive

        def trace(seed):
            app = rbe_app(rbe_index=1, seed=seed, think_time_mean_us=1000)()
            op = app.send(None)
            out = []
            for _ in range(40):
                if isinstance(op, WsSendReceive):
                    out.append(("page", op.context.body["page"]))
                    reply = MessageContext(body={})
                    reply.kind = "reply"
                    op = app.send(reply)
                else:
                    out.append(("sleep", op.duration_us))
                    op = app.send(None)
            return out

        assert trace(5) == trace(5)
        assert trace(5) != trace(6)
