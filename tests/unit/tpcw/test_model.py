"""Unit tests for the TPC-W bookstore database model."""

from repro.tpcw.model import BookstoreDatabase


class TestGeneration:
    def test_deterministic_content(self):
        a = BookstoreDatabase(item_count=50, seed=3)
        b = BookstoreDatabase(item_count=50, seed=3)
        assert [i.price_cents for i in a.items.values()] == [
            i.price_cents for i in b.items.values()
        ]

    def test_seed_changes_content(self):
        a = BookstoreDatabase(item_count=50, seed=3)
        b = BookstoreDatabase(item_count=50, seed=4)
        assert [i.price_cents for i in a.items.values()] != [
            i.price_cents for i in b.items.values()
        ]

    def test_counts(self):
        db = BookstoreDatabase(item_count=100, customer_count=20)
        assert len(db.items) == 100
        assert len(db.customers) == 20


class TestQueries:
    def test_best_sellers_sorted_by_stock(self):
        db = BookstoreDatabase(item_count=200)
        subject = db.items[1].subject
        sellers = db.best_sellers(subject)
        stocks = [i.stock for i in sellers]
        assert stocks == sorted(stocks, reverse=True)
        assert all(i.subject == subject for i in sellers)

    def test_new_products_reverse_id(self):
        db = BookstoreDatabase(item_count=200)
        subject = db.items[1].subject
        items = db.new_products(subject)
        ids = [i.item_id for i in items]
        assert ids == sorted(ids, reverse=True)

    def test_search_by_author(self):
        db = BookstoreDatabase(item_count=100)
        author = db.items[1].author
        results = db.search_by_author(author)
        assert results
        assert all(i.author == author for i in results)

    def test_search_by_title(self):
        db = BookstoreDatabase(item_count=100)
        assert db.search_by_title("Book 00001")


class TestCartAndOrders:
    def test_cart_accumulates(self):
        db = BookstoreDatabase(item_count=10)
        db.add_to_cart(1, 2)
        db.add_to_cart(1, 3)
        cart = db.cart(1)
        assert cart.item_ids == [2, 3]
        assert cart.total_cents(db) == (
            db.items[2].price_cents + db.items[3].price_cents
        )

    def test_unknown_item_not_added(self):
        db = BookstoreDatabase(item_count=10)
        db.add_to_cart(1, 9999)
        assert db.cart(1).item_ids == []

    def test_order_lifecycle(self):
        db = BookstoreDatabase(item_count=10)
        db.add_to_cart(1, 2)
        order = db.create_order(customer_id=1, session_id=1)
        assert order is not None
        assert order.status == "pending"
        assert db.cart(1).item_ids == []  # cart cleared
        stock_before = db.items[2].stock
        db.confirm_order(order.order_id, "AUTH")
        assert db.orders[order.order_id].status == "confirmed"
        assert db.items[2].stock == stock_before - 1

    def test_decline_order(self):
        db = BookstoreDatabase(item_count=10)
        db.add_to_cart(1, 2)
        order = db.create_order(1, 1)
        db.decline_order(order.order_id)
        assert db.orders[order.order_id].status == "declined"

    def test_empty_cart_gives_no_order(self):
        db = BookstoreDatabase(item_count=10)
        assert db.create_order(1, 99) is None

    def test_last_order_of(self):
        db = BookstoreDatabase(item_count=10)
        db.add_to_cart(1, 2)
        first = db.create_order(1, 1)
        db.add_to_cart(1, 3)
        second = db.create_order(1, 1)
        assert db.last_order_of(1).order_id == second.order_id
        assert db.last_order_of(42) is None
