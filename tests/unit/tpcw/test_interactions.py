"""Unit tests for TPC-W interactions, mixes, and the paper's 5-10% band."""

from repro.tpcw.interactions import (
    ALL_INTERACTIONS,
    BUY_CONFIRM,
    CPU_COST_US,
    Mix,
    ORDERING_MIX,
    PAPER_MIX,
    SHOPPING_MIX,
)


class TestInteractionSet:
    def test_twelve_pages(self):
        # "an online bookstore with twelve distinct web pages"
        assert len(ALL_INTERACTIONS) == 12

    def test_every_page_has_a_cost(self):
        for page in ALL_INTERACTIONS:
            assert CPU_COST_US[page] > 0


class TestMixes:
    def test_weights_cover_all_pages(self):
        for mix in (SHOPPING_MIX, PAPER_MIX, ORDERING_MIX):
            assert set(mix.pages()) == set(ALL_INTERACTIONS)

    def test_probabilities_roughly_normalised(self):
        for mix in (SHOPPING_MIX, PAPER_MIX, ORDERING_MIX):
            assert abs(sum(mix.probabilities()) - 100.0) < 1.0

    def test_paper_mix_payment_fraction_in_band(self):
        # "Around 5-10% of the total traffic ... results in requests being
        # issued to an external Payment Gateway Emulator."
        fraction = PAPER_MIX.fraction_of(BUY_CONFIRM)
        assert 0.05 <= fraction <= 0.10

    def test_shopping_mix_canonical_buy_confirm(self):
        assert SHOPPING_MIX.fraction_of(BUY_CONFIRM) < 0.02

    def test_fraction_of_unknown_page(self):
        assert SHOPPING_MIX.fraction_of("nonexistent") == 0.0

    def test_custom_mix(self):
        mix = Mix(name="x", weights=(("home", 1.0), ("buy_confirm", 1.0)))
        assert mix.fraction_of("home") == 0.5
