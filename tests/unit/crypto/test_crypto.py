"""Unit tests for keys, MACs, authenticators, digests, and cost models."""

import pytest

from repro.common.errors import AuthenticationError
from repro.common.ids import voter, driver
from repro.crypto.auth import Authenticator, AuthenticatorFactory
from repro.crypto.cost import (
    CryptoCostModel,
    MAC_COST_MODEL,
    SIGNATURE_COST_MODEL,
)
from repro.crypto.digest import DIGEST_BYTES, digest, digest_hex
from repro.crypto.keys import KeyStore
from repro.crypto.mac import MAC_BYTES, compute_mac, verify_mac


class TestKeyStore:
    def test_pair_key_symmetric(self, keys):
        a, b = voter("s", 0), driver("s", 1)
        assert keys.pair_key(a, b) == keys.pair_key(b, a)

    def test_distinct_pairs_get_distinct_keys(self, keys):
        k1 = keys.pair_key(voter("s", 0), voter("s", 1))
        k2 = keys.pair_key(voter("s", 0), voter("s", 2))
        assert k1 != k2

    def test_deployment_isolation(self):
        k1 = KeyStore.for_deployment("a").pair_key("x", "y")
        k2 = KeyStore.for_deployment("b").pair_key("x", "y")
        assert k1 != k2

    def test_same_deployment_reproducible(self):
        k1 = KeyStore.for_deployment("a").pair_key("x", "y")
        k2 = KeyStore.for_deployment("a").pair_key("x", "y")
        assert k1 == k2

    def test_empty_root_rejected(self):
        with pytest.raises(ValueError):
            KeyStore(b"")

    def test_string_principals_accepted(self, keys):
        assert keys.pair_key("a", "b") == keys.pair_key("b", "a")


class TestMac:
    def test_roundtrip(self):
        key = b"k" * 32
        tag = compute_mac(key, b"payload")
        assert len(tag) == MAC_BYTES
        assert verify_mac(key, b"payload", tag)

    def test_wrong_key_fails(self):
        tag = compute_mac(b"a" * 32, b"payload")
        assert not verify_mac(b"b" * 32, b"payload", tag)

    def test_tampered_data_fails(self):
        key = b"k" * 32
        tag = compute_mac(key, b"payload")
        assert not verify_mac(key, b"payl0ad", tag)

    def test_truncated_tag_fails(self):
        key = b"k" * 32
        tag = compute_mac(key, b"payload")
        assert not verify_mac(key, b"payload", tag[:-1])


class TestAuthenticator:
    def test_sign_and_verify_per_receiver(self, keys):
        sender = AuthenticatorFactory(keys, voter("s", 0))
        receivers = [voter("s", 1), voter("s", 2), voter("s", 3)]
        auth = sender.sign(b"msg", receivers)
        for receiver in receivers:
            factory = AuthenticatorFactory(keys, receiver)
            assert factory.verify(b"msg", auth)

    def test_non_addressee_cannot_verify(self, keys):
        sender = AuthenticatorFactory(keys, voter("s", 0))
        auth = sender.sign(b"msg", [voter("s", 1)])
        outsider = AuthenticatorFactory(keys, voter("s", 2))
        assert not outsider.verify(b"msg", auth)

    def test_tampered_payload_rejected(self, keys):
        sender = AuthenticatorFactory(keys, voter("s", 0))
        auth = sender.sign(b"msg", [voter("s", 1)])
        receiver = AuthenticatorFactory(keys, voter("s", 1))
        assert not receiver.verify(b"other", auth)

    def test_forged_sender_rejected(self, keys):
        # An attacker without the pair key cannot impersonate the sender.
        attacker_keys = KeyStore.for_deployment("attacker")
        forged = AuthenticatorFactory(attacker_keys, voter("s", 0)).sign(
            b"msg", [voter("s", 1)]
        )
        receiver = AuthenticatorFactory(keys, voter("s", 1))
        assert not receiver.verify(b"msg", forged)

    def test_require_raises(self, keys):
        receiver = AuthenticatorFactory(keys, voter("s", 1))
        bad = Authenticator(sender="nobody", entries=(("s[1]/voter", b"x" * 16),))
        with pytest.raises(AuthenticationError):
            receiver.require(b"msg", bad)

    def test_mac_for_missing_receiver_is_none(self, keys):
        auth = AuthenticatorFactory(keys, "a").sign(b"m", ["b"])
        assert auth.mac_for("c") is None


class TestDigest:
    def test_length_and_stability(self):
        assert len(digest({"a": 1})) == DIGEST_BYTES
        assert digest({"a": 1}) == digest({"a": 1})

    def test_distinct_values(self):
        assert digest({"a": 1}) != digest({"a": 2})

    def test_bytes_passthrough(self):
        assert digest(b"raw") == digest(b"raw")

    def test_hex_matches(self):
        assert digest_hex("x") == digest("x").hex()


class TestCostModels:
    def test_mac_model_scales_with_receivers(self):
        c1 = MAC_COST_MODEL.authenticator_cost_us(1)
        c10 = MAC_COST_MODEL.authenticator_cost_us(10)
        assert c10 > c1

    def test_signature_model_flat_but_expensive(self):
        s1 = SIGNATURE_COST_MODEL.authenticator_cost_us(1)
        s10 = SIGNATURE_COST_MODEL.authenticator_cost_us(10)
        assert s1 == s10

    def test_three_orders_of_magnitude_gap(self):
        # The paper's stated reason for choosing MACs (section 3).
        ratio = (
            SIGNATURE_COST_MODEL.authenticator_cost_us(1)
            / MAC_COST_MODEL.authenticator_cost_us(1)
        )
        assert ratio >= 100

    def test_custom_model(self):
        model = CryptoCostModel(name="x", sign_us=5, verify_us=7, per_receiver_us=2)
        assert model.authenticator_cost_us(3) == 5 + 2 * 2
        assert model.verification_cost_us() == 7
