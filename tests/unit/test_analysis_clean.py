"""Tier-1 gate: the merged tree carries zero analysis violations.

This is the linter's third delivery surface (alongside the CLI and the
rule-engine unit tests): any commit that reintroduces a wall-clock read,
a stray codec/digest call, or an unguarded shared-state write fails the
ordinary test run, not just the pre-merge script.
"""

from pathlib import Path

from repro.analysis import check_paths

SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_has_no_analysis_violations():
    findings, files_checked = check_paths([str(SRC)])
    formatted = "\n".join(v.format() for v in findings)
    assert not findings, f"analysis violations in src:\n{formatted}"
    # Sanity: the walk actually covered the package.
    assert files_checked > 50
