"""Unit tests for the fault subsystem: plans, scripts, and injectors.

The FaultPlan is pure data derived from a validated ScenarioSpec (the
process substrate rebuilds it inside each worker from spec JSON), and
the FaultInjector is the per-principal runtime object the voter/driver
hooks consult. These tests pin the plan-building rules and drive the
injector against a stub environment.
"""

import pytest

from repro.clbft.messages import ClientRequest, NewView, PrePrepare
from repro.clbft.replica import batch_digest
from repro.common.errors import ConfigurationError
from repro.faults import (
    FAULT_DEFER_TAG,
    FaultInjector,
    FaultPlan,
    ReplicaFaultScript,
    require_supported_kinds,
)
from repro.perpetual.messages import LocalResult
from repro.scenario.spec import ScenarioBuilder


def base_builder(name="faults-unit", n=4):
    return (
        ScenarioBuilder(name)
        .service("target", n=n, app="echo")
        .service("caller", n=1, app="sync_caller",
                 target="target", total_calls=1)
    )


class StubEnv:
    """Just enough node-environment surface for the injector hooks."""

    def __init__(self):
        self.now = 0
        self.sent = []
        self.timers = []

    def now_us(self):
        return self.now

    def send(self, dst, msg, size_bytes=256):
        self.sent.append((dst, msg, size_bytes))

    def set_timer(self, tag, delay_us):
        self.timers.append((tag, delay_us))


def injector(role="voter", **script_fields):
    script = ReplicaFaultScript(service="target", index=0, **script_fields)
    inj = FaultInjector(script, role)
    env = StubEnv()
    inj.wrap_env(env)
    return inj, env


class TestFaultPlan:
    def test_crash_and_link_contribute_nothing(self):
        spec = (
            base_builder()
            .crash("target", 1)
            .link_fault("caller/d0", "*", drop=0.5)
            .build()
        )
        assert FaultPlan.from_spec(spec).empty

    def test_faults_on_same_replica_merge_into_one_script(self):
        spec = (
            base_builder()
            .byzantine("target", 0, mode="corrupt")
            .delay("target", 0, delay_us=700, jitter_us=30)
            .build()
        )
        plan = FaultPlan.from_spec(spec)
        script = plan.script_for("target", 0)
        assert script.byzantine_mode == "corrupt"
        assert script.delay_us == 700
        assert script.delay_jitter_us == 30
        assert plan.script_for("target", 1) is None

    def test_partition_scripts_only_the_declared_side(self):
        spec = (
            base_builder()
            .partition("target", [3], heal_after_us=2_000_000)
            .build()
        )
        plan = FaultPlan.from_spec(spec)
        script = plan.script_for("target", 3)
        # Blocked peers are the *other* side's voter and driver names.
        assert script.blocked_peers == frozenset(
            f"target/{kind}{i}" for i in (0, 1, 2) for kind in ("v", "d")
        )
        assert script.block_start_us == 0
        assert script.block_heal_us == 2_000_000
        for i in (0, 1, 2):
            assert plan.script_for("target", i) is None

    def test_restart_window_carried_to_script(self):
        spec = (
            base_builder()
            .restart("target", 2, up_after_us=900_000, down_after_us=100_000)
            .build()
        )
        script = FaultPlan.from_spec(spec).script_for("target", 2)
        assert script.down_from_us == 100_000
        assert script.down_until_us == 900_000


class TestInjectorSendPath:
    def test_delay_defers_then_releases_on_timer(self):
        inj, env = injector(delay_us=500)
        consumed = inj.intercept_send("target/v1", "msg", 64)
        assert consumed
        assert env.sent == []
        [(tag, delay)] = env.timers
        assert tag[0] == FAULT_DEFER_TAG
        assert delay == 500
        assert inj.on_timer(tag)
        assert env.sent == [("target/v1", "msg", 64)]

    def test_delay_jitter_is_deterministic_per_label(self):
        delays = []
        for _ in range(2):
            inj, env = injector(delay_us=500, delay_jitter_us=200)
            for _ in range(5):
                inj.intercept_send("target/v1", "m", 64)
            delays.append([d for _, d in env.timers])
        assert delays[0] == delays[1]
        assert all(500 <= d <= 700 for d in delays[0])

    def test_down_window_drops_io_then_heals(self):
        inj, env = injector(down_from_us=100, down_until_us=200)
        env.now = 50
        assert not inj.intercept_send("x", "m", 1)
        assert inj.deliver_ok("x")
        env.now = 150
        assert inj.intercept_send("x", "m", 1)
        assert not inj.deliver_ok("x")
        assert inj.on_timer(("rtx", "anything"))  # suppressed while down
        env.now = 200
        assert not inj.intercept_send("x", "m", 1)
        assert inj.deliver_ok("x")
        assert not inj.on_timer(("rtx", "anything"))

    def test_partition_blocks_only_scripted_peers_until_heal(self):
        inj, env = injector(
            blocked_peers=frozenset({"target/v1", "target/d1"}),
            block_start_us=0,
            block_heal_us=1000,
        )
        assert inj.intercept_send("target/v1", "m", 1)
        assert not inj.intercept_send("target/v2", "m", 1)
        assert not inj.deliver_ok("target/d1")
        assert inj.deliver_ok("target/d2")
        env.now = 1000
        assert not inj.intercept_send("target/v1", "m", 1)
        assert inj.deliver_ok("target/d1")

    def test_deferred_send_arriving_in_down_window_is_swallowed(self):
        inj, env = injector(delay_us=500, down_from_us=400, down_until_us=900)
        inj.intercept_send("x", "m", 1)
        [(tag, _)] = env.timers
        env.now = 500  # release lands inside the down window
        assert inj.on_timer(tag)
        assert env.sent == []


class TestInjectorLocalPath:
    def test_corrupt_garbles_driver_results_only(self):
        result = LocalResult(request_id="urn:req:1", result=["ok"])
        drv, _ = injector(role="driver", byzantine_mode="corrupt")
        garbled = drv.intercept_local(result)
        assert garbled.result == ["#garbled", "urn:req:1"]
        assert garbled.request_id == result.request_id
        vot, _ = injector(role="voter", byzantine_mode="corrupt")
        assert vot.intercept_local(result) is result

    def test_down_window_drops_local_deliveries(self):
        inj, env = injector(role="driver", down_from_us=0, down_until_us=100)
        assert inj.intercept_local(LocalResult("urn:req:1", ["ok"])) is None


class TestClbftMulticastPlan:
    def _preprepare(self):
        requests = (ClientRequest(client="c", timestamp=1, op=["noop"]),)
        return PrePrepare(view=0, seqno=1,
                          digest=batch_digest(requests), requests=requests)

    def _replica(self, f=1, primary=True):
        class Config:
            pass

        class Replica:
            pass

        Config.f = f
        Replica.config = Config()
        Replica.is_primary = primary
        return Replica()

    def test_equivocate_splits_receivers_with_conflicting_digests(self):
        inj, _ = injector(byzantine_mode="equivocate")
        msg = self._preprepare()
        receivers = ["target/v1", "target/v2", "target/v3"]
        plan = inj.clbft_multicast_plan(msg, receivers, self._replica(f=1))
        assert plan is not None
        (true_half, true_msg), (lie_half, lie_msg) = plan
        assert len(true_half) == 1 and len(lie_half) == 2
        assert sorted(true_half + lie_half) == sorted(receivers)
        assert true_msg is msg
        assert lie_msg.digest != msg.digest
        assert (lie_msg.view, lie_msg.seqno) == (msg.view, msg.seqno)

    def test_equivocate_honest_when_not_primary(self):
        inj, _ = injector(byzantine_mode="equivocate")
        plan = inj.clbft_multicast_plan(
            self._preprepare(), ["a", "b", "c"], self._replica(primary=False)
        )
        assert plan is None

    def test_mute_swallows_primary_preprepares_and_new_views(self):
        inj, _ = injector(byzantine_mode="mute")
        replica = self._replica()
        assert inj.clbft_multicast_plan(
            self._preprepare(), ["a", "b", "c"], replica) == []
        new_view = NewView(view=1, view_changes=(), pre_prepares=())
        assert inj.clbft_multicast_plan(new_view, ["a", "b"], replica) == []

    def test_honest_replica_gets_no_plan(self):
        inj, _ = injector(byzantine_mode=None)
        assert inj.clbft_multicast_plan(
            self._preprepare(), ["a", "b", "c"], self._replica()) is None


class TestRequireSupportedKinds:
    def test_rejects_unsupported_kind_with_runtime_name(self):
        spec = base_builder().link_fault("caller/d0", "*", drop=0.1).build()
        with pytest.raises(ConfigurationError, match="threaded.*link.*sim"):
            require_supported_kinds(spec, ("link",), "threaded")

    def test_passes_when_only_supported_kinds_declared(self):
        spec = base_builder().crash("target", 1).byzantine("target", 0).build()
        require_supported_kinds(spec, ("link",), "process")
