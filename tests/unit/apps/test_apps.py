"""Unit tests for the reference applications, driven without a simulator.

A small WS-level test jig runs an application generator against scripted
request/reply contexts, exercising the business logic deterministically.
"""

import pytest

from repro.ws.api import (
    MessageContext,
    WsCompute,
    WsReceiveAny,
    WsReceiveRequest,
    WsSend,
    WsSendReceive,
    WsSendReply,
)
from repro.apps.counter import counter_app
from repro.apps.digest import digest_app
from repro.apps.echo import echo_app
from repro.apps.payment import bank_app, pge_app


class WsJig:
    """Drives a WS application generator with scripted inputs."""

    def __init__(self, app_factory):
        self.gen = app_factory()
        self.pending = self.gen.send(None)
        self.replies: list[tuple[MessageContext, MessageContext]] = []
        self.sent: list[MessageContext] = []
        self._msg_counter = 0

    def _advance(self, value):
        op = self.gen.send(value)
        while True:
            if isinstance(op, WsSendReply):
                self.replies.append((op.reply, op.request))
                op = self.gen.send(None)
            elif isinstance(op, WsCompute):
                op = self.gen.send(None)
            elif isinstance(op, WsSend):
                self.sent.append(op.context)
                self._msg_counter += 1
                mid = f"urn:test:msg:{self._msg_counter}"
                op.context.message_id = mid
                op = self.gen.send(mid)
            else:
                break
        self.pending = op

    def feed_request(self, body, message_id="urn:c:1"):
        assert isinstance(self.pending, (WsReceiveRequest, WsReceiveAny)), self.pending
        context = MessageContext(body=body)
        context.kind = "request"
        context.message_id = message_id
        self._advance(context)
        return context

    def feed_reply(self, body, relates_to, fault=False):
        if fault:
            from repro.soap.faults import CODE_ABORTED, make_fault_envelope

            context = MessageContext(envelope=make_fault_envelope(
                CODE_ABORTED, "aborted"))
        else:
            context = MessageContext(body=body)
        context.kind = "reply"
        context.relates_to = relates_to
        if isinstance(self.pending, WsSendReceive):
            self.sent.append(self.pending.context)
            self._advance(context)
        else:
            assert isinstance(self.pending, WsReceiveAny), self.pending
            self._advance(context)
        return context

    def last_reply_body(self):
        return self.replies[-1][0].body


class TestCounterApp:
    def test_increments_and_returns_old_value(self):
        jig = WsJig(counter_app)
        jig.feed_request({})
        assert jig.last_reply_body() == {"old": 0, "counter": 1}
        jig.feed_request({})
        assert jig.last_reply_body() == {"old": 1, "counter": 2}


class TestEchoApp:
    def test_echoes_body(self):
        jig = WsJig(echo_app)
        jig.feed_request({"anything": [1, 2]})
        assert jig.last_reply_body() == {"anything": [1, 2]}


class TestDigestApp:
    def test_digest_is_deterministic(self):
        jig1, jig2 = WsJig(digest_app), WsJig(digest_app)
        jig1.feed_request({"cpu_us": 100, "seq": 5})
        jig2.feed_request({"cpu_us": 100, "seq": 5})
        assert jig1.last_reply_body() == jig2.last_reply_body()

    def test_distinct_bodies_distinct_digests(self):
        jig = WsJig(digest_app)
        jig.feed_request({"seq": 1})
        first = jig.last_reply_body()["digest"]
        jig.feed_request({"seq": 2})
        assert jig.last_reply_body()["digest"] != first


class TestBankApp:
    def test_approves_within_limit(self):
        jig = WsJig(lambda: bank_app(card_limit_cents=1000))
        jig.feed_request({"card": "4111", "amount_cents": 400})
        assert jig.last_reply_body()["approved"] is True

    def test_declines_over_limit(self):
        jig = WsJig(lambda: bank_app(card_limit_cents=1000))
        jig.feed_request({"card": "4111", "amount_cents": 700})
        jig.feed_request({"card": "4111", "amount_cents": 700})
        assert jig.last_reply_body()["approved"] is False
        assert jig.last_reply_body()["reason"] == "limit-exceeded"

    def test_exposure_tracked_per_card(self):
        jig = WsJig(lambda: bank_app(card_limit_cents=1000))
        jig.feed_request({"card": "a", "amount_cents": 900})
        jig.feed_request({"card": "b", "amount_cents": 900})
        assert jig.last_reply_body()["approved"] is True

    def test_rejects_zero_amount(self):
        jig = WsJig(bank_app)
        jig.feed_request({"card": "a", "amount_cents": 0})
        assert jig.last_reply_body()["approved"] is False

    def test_auth_codes_unique(self):
        jig = WsJig(bank_app)
        jig.feed_request({"card": "a", "amount_cents": 1})
        code1 = jig.last_reply_body()["auth_code"]
        jig.feed_request({"card": "a", "amount_cents": 1})
        assert jig.last_reply_body()["auth_code"] != code1


class TestPgeSync:
    def test_validates_then_authorises(self):
        jig = WsJig(pge_app(synchronous=True))
        jig.feed_request({"card": "4111", "amount_cents": 500})
        # The gateway is now blocked on the bank sendReceive.
        assert isinstance(jig.pending, WsSendReceive)
        assert jig.pending.context.body["card"] == "4111"
        jig.feed_reply({"approved": True, "auth_code": "A1"}, relates_to="")
        body = jig.last_reply_body()
        assert body["approved"] is True
        assert body["gateway_volume_cents"] == 500

    def test_rejects_missing_card_without_bank_call(self):
        jig = WsJig(pge_app(synchronous=True))
        jig.feed_request({"amount_cents": 500})
        assert jig.last_reply_body() == {
            "approved": False, "reason": "missing-card",
        }

    def test_bank_fault_maps_to_unavailable(self):
        jig = WsJig(pge_app(synchronous=True))
        jig.feed_request({"card": "4111", "amount_cents": 500})
        jig.feed_reply(None, relates_to="", fault=True)
        assert jig.last_reply_body()["reason"] == "bank-unavailable"


class TestPgeAsync:
    def test_overlaps_requests_while_bank_call_in_flight(self):
        jig = WsJig(pge_app(synchronous=False))
        jig.feed_request({"card": "a", "amount_cents": 100}, "urn:c:1")
        first_bank_mid = jig.sent[-1].message_id
        # A second request is served before the first bank reply arrives:
        jig.feed_request({"card": "b", "amount_cents": 200}, "urn:c:2")
        second_bank_mid = jig.sent[-1].message_id
        assert first_bank_mid != second_bank_mid
        # Bank replies come back out of order; pairing must hold.
        jig.feed_reply({"approved": True, "auth_code": "A2"}, second_bank_mid)
        reply, original = jig.replies[-1]
        assert original.message_id == "urn:c:2"
        jig.feed_reply({"approved": True, "auth_code": "A1"}, first_bank_mid)
        reply, original = jig.replies[-1]
        assert original.message_id == "urn:c:1"

    def test_volume_accumulates_in_completion_order(self):
        jig = WsJig(pge_app(synchronous=False))
        jig.feed_request({"card": "a", "amount_cents": 100}, "urn:c:1")
        mid1 = jig.sent[-1].message_id
        jig.feed_request({"card": "b", "amount_cents": 200}, "urn:c:2")
        mid2 = jig.sent[-1].message_id
        jig.feed_reply({"approved": True, "auth_code": "x"}, mid2)
        assert jig.last_reply_body()["gateway_volume_cents"] == 200
        jig.feed_reply({"approved": True, "auth_code": "y"}, mid1)
        assert jig.last_reply_body()["gateway_volume_cents"] == 300
