"""Channel-layer batching: one MAC vector per (sender, receiver) batch.

These tests pin the tentpole contract of the batching stage:

- a batch of N messages decodes to exactly the sequence the N unbatched
  envelopes would have produced (property test, random payloads);
- receiving a batch costs ONE MAC verification — not one per message;
- a message alone in every destination's flush leaves as a classic
  shared :class:`WireEnvelope` (batching never pessimises singletons);
- proof-path messages (audience beyond recipients) keep their own
  full-audience authenticator inside the batch;
- a tampered batch is rejected wholesale (every inner message dropped).
"""

import random

import pytest

from repro.common.encoding import canonical_encode, clear_wire_caches, decode_payload
from repro.common.metrics import METRICS
from repro.crypto.keys import KeyStore
from repro.transport.channel import ChannelAdapter
from repro.transport.connection import Connection
from repro.transport.wire import (
    BatchEnvelope,
    WireEnvelope,
    envelope_from_wire,
    envelope_to_wire,
)


class CapturingConnection(Connection):
    def __init__(self):
        self.transmitted = []

    def transmit(self, dst, envelope):
        self.transmitted.append((str(dst), envelope))


@pytest.fixture(autouse=True)
def _fresh():
    clear_wire_caches()
    METRICS.reset()
    yield
    clear_wire_caches()
    METRICS.reset()


@pytest.fixture
def keys():
    return KeyStore.for_deployment("batch-test")


def make_channel(keys, me="alice", batching="off", **kwargs):
    conn = CapturingConnection()
    return ChannelAdapter(me, keys, conn, batching=batching, **kwargs), conn


def random_messages(rng, count):
    return [
        {"op": rng.choice(["ping", "commit", "reply"]),
         "seq": rng.randint(0, 10_000),
         "body": [rng.randint(0, 255) for _ in range(rng.randint(0, 8))]}
        for _ in range(count)
    ]


class TestBatchEqualsUnbatched:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_batch_of_n_decodes_to_same_sequence(self, keys, seed):
        rng = random.Random(seed)
        messages = random_messages(rng, rng.randint(2, 12))

        plain, plain_conn = make_channel(keys, batching="off")
        for msg in messages:
            plain.send("bob", msg)
        receiver = ChannelAdapter("bob", keys, CapturingConnection())
        unbatched = [receiver.accept(env) for _, env in plain_conn.transmitted]

        clear_wire_caches()
        batched, batched_conn = make_channel(keys, batching="tick")
        for msg in messages:
            batched.send("bob", msg)
        assert batched_conn.transmitted == []  # buffered until flush
        assert batched.pending_count == len(messages)
        batched.flush()
        (dst, batch), = batched_conn.transmitted
        assert dst == "bob"
        assert isinstance(batch, BatchEnvelope)
        receiver2 = ChannelAdapter("bob", keys, CapturingConnection())
        decoded = [receiver2.accept(env) for env in receiver2.open_batch(batch)]

        assert decoded == unbatched == messages

    def test_flush_is_idempotent_and_resets_pending(self, keys):
        channel, conn = make_channel(keys, batching="tick")
        channel.send("bob", {"n": 1})
        channel.flush()
        channel.flush()  # nothing pending: no second transmission
        assert len(conn.transmitted) == 1
        assert channel.pending_count == 0


class TestOneMacPerBatch:
    def test_receive_verifies_once_per_batch(self, keys):
        channel, conn = make_channel(keys, batching="tick")
        for i in range(6):
            channel.send("bob", {"seq": i})
        channel.flush()
        (_, batch), = conn.transmitted
        receiver = ChannelAdapter("bob", keys, CapturingConnection())
        METRICS.reset()
        inner = receiver.open_batch(batch)
        for env in inner:
            assert receiver.accept(env) is not None
        # One verification for the whole batch; the six plain items are
        # pre-verified by it and charge no further MAC work.
        assert METRICS.mac_verifications == 1
        assert len(inner) == 6

    def test_send_signs_once_per_batch(self, keys):
        channel, conn = make_channel(keys, batching="tick")
        for i in range(5):
            channel.send("bob", {"seq": i})
        METRICS.reset()
        channel.flush()
        # One single-receiver authenticator for the batch: one digest of
        # the batch frame, one short-input MAC.
        assert METRICS.mac_computations == 1
        assert METRICS.batches_sent == 1
        assert METRICS.batch_messages == 5

    def test_batch_counters_stay_zero_when_off(self, keys):
        channel, _ = make_channel(keys, batching="off")
        for i in range(5):
            channel.send("bob", {"seq": i})
        assert METRICS.batches_sent == 0
        assert METRICS.batch_messages == 0


class TestSingletonAndProofPaths:
    def test_lone_message_flushes_as_classic_envelope(self, keys):
        channel, conn = make_channel(keys, batching="tick")
        channel.send("bob", {"only": 1})
        channel.flush()
        (_, env), = conn.transmitted
        assert isinstance(env, WireEnvelope)
        receiver = ChannelAdapter("bob", keys, CapturingConnection())
        assert receiver.accept(env) == {"only": 1}

    def test_multicast_solo_everywhere_shares_one_envelope(self, keys):
        channel, conn = make_channel(keys, batching="tick")
        channel.multicast(["bob", "carol", "dave"], {"op": "commit"})
        channel.flush()
        assert len(conn.transmitted) == 3
        assert len({id(env) for _, env in conn.transmitted}) == 1
        assert all(isinstance(env, WireEnvelope) for _, env in conn.transmitted)

    def test_proof_path_item_keeps_full_audience_auth(self, keys):
        # Stage-1 shape: signed for three voters, transmitted only to the
        # primary, alongside a second message so the pair batches.
        channel, conn = make_channel(keys, batching="tick")
        channel.multicast_to(["v0", "v1", "v2"], ["v0"], {"op": "out-request"})
        channel.send("v0", {"op": "filler"})
        channel.flush()
        (_, batch), = conn.transmitted
        assert isinstance(batch, BatchEnvelope)
        kinds = [kind for kind, _ in batch.items]
        assert kinds == ["e", "p"]
        embedded = batch.items[0][1]
        # A voter outside the (sender, primary) pair verifies the
        # embedded envelope with its own entry — the proof still works.
        outsider = ChannelAdapter("v2", keys, CapturingConnection())
        assert outsider.accept(embedded) == {"op": "out-request"}

    def test_mixed_batch_preserves_send_order(self, keys):
        channel, conn = make_channel(keys, batching="tick")
        channel.send("v0", {"seq": 0})
        channel.multicast_to(["v0", "v1"], ["v0"], {"seq": 1})
        channel.send("v0", {"seq": 2})
        channel.flush()
        (_, batch), = conn.transmitted
        receiver = ChannelAdapter("v0", keys, CapturingConnection())
        decoded = [receiver.accept(env) for env in receiver.open_batch(batch)]
        assert decoded == [{"seq": 0}, {"seq": 1}, {"seq": 2}]


class TestBatchSecurity:
    def test_tampered_batch_rejected_wholesale(self, keys):
        channel, conn = make_channel(keys, batching="tick")
        for i in range(4):
            channel.send("bob", {"seq": i})
        channel.flush()
        (_, batch), = conn.transmitted
        forged_payload = canonical_encode({"seq": 999})
        forged = BatchEnvelope(
            items=(("p", forged_payload),) + batch.items[1:],
            auth=batch.auth,
        )
        receiver = ChannelAdapter("bob", keys, CapturingConnection())
        assert receiver.open_batch(forged) == []
        assert receiver.rejected_count == len(forged.items)

    def test_wrong_recipient_rejects_batch(self, keys):
        channel, conn = make_channel(keys, batching="tick")
        channel.send("bob", {"seq": 0})
        channel.send("bob", {"seq": 1})
        channel.flush()
        (_, batch), = conn.transmitted
        eve = ChannelAdapter("eve", keys, CapturingConnection())
        assert eve.open_batch(batch) == []

    def test_batch_wire_roundtrip_crosses_process_framing(self, keys):
        channel, conn = make_channel(keys, batching="tick")
        channel.multicast_to(["v0", "v1"], ["v0"], {"op": "proof"})
        channel.send("v0", {"op": "plain"})
        channel.flush()
        (_, batch), = conn.transmitted
        wire_bytes = canonical_encode(envelope_to_wire(batch))
        rebuilt = envelope_from_wire(decode_payload(wire_bytes))
        assert isinstance(rebuilt, BatchEnvelope)
        receiver = ChannelAdapter("v0", keys, CapturingConnection())
        decoded = [receiver.accept(env) for env in receiver.open_batch(rebuilt)]
        assert decoded == [{"op": "proof"}, {"op": "plain"}]


class TestWindowMode:
    def test_on_first_pending_fires_once_per_window(self, keys):
        armed = []
        conn = CapturingConnection()
        channel = ChannelAdapter(
            "alice", KeyStore.for_deployment("batch-test"), conn,
            batching=500, on_first_pending=lambda: armed.append(True),
        )
        channel.send("bob", {"seq": 0})
        channel.send("bob", {"seq": 1})
        assert len(armed) == 1  # first buffered message arms the timer
        channel.flush()
        channel.send("bob", {"seq": 2})
        assert len(armed) == 2  # next window re-arms
