"""Unit tests for Connection modules (the transport-independence seam)."""

from repro.crypto.auth import AuthenticatorFactory
from repro.sim.kernel import ProtocolNode, Simulator
from repro.sim.network import UniformLatency
from repro.transport.connection import DirectConnection, SimConnection
from repro.transport.wire import WireEnvelope


def make_envelope(keys, sender="a", receiver="b"):
    auth = AuthenticatorFactory(keys, sender).sign(b"payload", [receiver])
    return WireEnvelope(payload=b"payload", auth=auth)


class Sink(ProtocolNode):
    def __init__(self):
        self.received = []

    def on_message(self, src, msg):
        self.received.append((str(src), msg))

    def on_timer(self, tag):
        pass


class TestSimConnection:
    def test_delivers_through_kernel(self, keys):
        sim = Simulator()
        sim.set_network(UniformLatency(5))
        sink = Sink()
        sim.add_node("b", sink)
        src = Sink()
        env = sim.add_node("a", src)
        conn = SimConnection(env)
        envelope = make_envelope(keys)
        conn.transmit("b", envelope)
        sim.run()
        assert sink.received == [("a", envelope)]


class TestDirectConnection:
    def test_routes_synchronously(self, keys):
        log = []
        conn = DirectConnection("a", lambda s, d, e: log.append((s, d, e)))
        envelope = make_envelope(keys)
        conn.transmit("b", envelope)
        assert log == [("a", "b", envelope)]

    def test_same_envelope_works_on_both_transports(self, keys):
        # Transport independence: the identical authenticated envelope is
        # valid regardless of the Connection that carried it.
        envelope = make_envelope(keys)
        routed = []
        DirectConnection("a", lambda s, d, e: routed.append(e)).transmit(
            "b", envelope
        )
        verifier = AuthenticatorFactory(keys, "b")
        assert verifier.verify(routed[0].payload, routed[0].auth)
