"""Unit tests for wire framing and embedded-envelope encoding."""

from repro.common.encoding import canonical_encode, decode_payload
from repro.crypto.auth import AuthenticatorFactory
from repro.transport.wire import (
    WireEnvelope,
    auth_from_wire,
    auth_to_wire,
    envelope_from_wire,
    envelope_to_wire,
)


class TestAuthWire:
    def test_roundtrip(self, keys):
        auth = AuthenticatorFactory(keys, "a").sign(b"data", ["b", "c"])
        restored = auth_from_wire(auth_to_wire(auth))
        assert restored == auth

    def test_wire_form_canonically_encodable(self, keys):
        auth = AuthenticatorFactory(keys, "a").sign(b"data", ["b"])
        encoded = canonical_encode(auth_to_wire(auth))
        assert auth_from_wire(decode_payload(encoded)) == auth


class TestEnvelopeWire:
    def test_roundtrip(self, keys):
        auth = AuthenticatorFactory(keys, "a").sign(b"data", ["b"])
        envelope = WireEnvelope(payload=b"data", auth=auth)
        restored = envelope_from_wire(envelope_to_wire(envelope))
        assert restored == envelope

    def test_embedded_envelope_still_verifies(self, keys):
        # The fc+1 proof path: envelopes embedded in agreement payloads
        # must verify after a full encode/decode cycle.
        auth = AuthenticatorFactory(keys, "a").sign(b"data", ["b"])
        envelope = WireEnvelope(payload=b"data", auth=auth)
        wire = decode_payload(canonical_encode(envelope_to_wire(envelope)))
        restored = envelope_from_wire(wire)
        verifier = AuthenticatorFactory(keys, "b")
        assert verifier.verify(restored.payload, restored.auth)

    def test_size_grows_with_receivers(self, keys):
        auth1 = AuthenticatorFactory(keys, "a").sign(b"data", ["b"])
        auth9 = AuthenticatorFactory(keys, "a").sign(
            b"data", [f"r{i}" for i in range(9)]
        )
        assert (
            WireEnvelope(b"data", auth9).size_bytes
            > WireEnvelope(b"data", auth1).size_bytes
        )
