"""Unit tests for the ChannelAdapter."""

from repro.crypto.cost import MAC_COST_MODEL, SIGNATURE_COST_MODEL
from repro.crypto.keys import KeyStore
from repro.transport.channel import ChannelAdapter
from repro.transport.connection import Connection
from repro.transport.wire import WireEnvelope


class CapturingConnection(Connection):
    def __init__(self):
        self.transmitted = []

    def transmit(self, dst, envelope):
        self.transmitted.append((str(dst), envelope))


def make_pair(keys, a="alice", b="bob", **kwargs):
    conn_a, conn_b = CapturingConnection(), CapturingConnection()
    chan_a = ChannelAdapter(a, keys, conn_a, **kwargs)
    chan_b = ChannelAdapter(b, keys, conn_b, **kwargs)
    return (chan_a, conn_a), (chan_b, conn_b)


class TestSendAccept:
    def test_roundtrip(self, keys):
        (a, conn_a), (b, _) = make_pair(keys)
        a.send("bob", {"op": "ping", "n": 1})
        dst, envelope = conn_a.transmitted[0]
        assert dst == "bob"
        assert b.accept(envelope) == {"op": "ping", "n": 1}

    def test_sender_identified(self, keys):
        (a, conn_a), (b, _) = make_pair(keys)
        a.send("bob", "x")
        _, envelope = conn_a.transmitted[0]
        assert b.sender_of(envelope) == "alice"

    def test_wrong_recipient_rejected(self, keys):
        (a, conn_a), _ = make_pair(keys)
        eve = ChannelAdapter("eve", keys, CapturingConnection())
        a.send("bob", "secret")
        _, envelope = conn_a.transmitted[0]
        assert eve.accept(envelope) is None
        assert eve.rejected_count == 1

    def test_tampered_payload_rejected(self, keys):
        (a, conn_a), (b, _) = make_pair(keys)
        a.send("bob", "x")
        _, envelope = conn_a.transmitted[0]
        forged = WireEnvelope(payload=b'"evil"', auth=envelope.auth)
        assert b.accept(forged) is None

    def test_forged_key_rejected(self, keys):
        attacker_keys = KeyStore.for_deployment("other")
        eve = ChannelAdapter("alice", attacker_keys, CapturingConnection())
        conn = CapturingConnection()
        eve2 = ChannelAdapter("alice", attacker_keys, conn)
        eve2.send("bob", "fake")
        _, envelope = conn.transmitted[0]
        bob = ChannelAdapter("bob", keys, CapturingConnection())
        assert bob.accept(envelope) is None


class TestMulticast:
    def test_one_envelope_many_destinations(self, keys):
        conn = CapturingConnection()
        a = ChannelAdapter("alice", keys, conn)
        a.multicast(["r0", "r1", "r2"], {"v": 1})
        assert len(conn.transmitted) == 3
        envelopes = {id(e) for _, e in conn.transmitted}
        assert len(envelopes) == 1  # signed once

    def test_every_destination_verifies(self, keys):
        conn = CapturingConnection()
        a = ChannelAdapter("alice", keys, conn)
        a.multicast(["r0", "r1"], "m")
        for name in ("r0", "r1"):
            receiver = ChannelAdapter(name, keys, CapturingConnection())
            _, envelope = conn.transmitted[0]
            assert receiver.accept(envelope) == "m"

    def test_empty_multicast_noop(self, keys):
        conn = CapturingConnection()
        a = ChannelAdapter("alice", keys, conn)
        a.multicast([], "m")
        assert conn.transmitted == []


class TestCostCharging:
    def test_mac_send_cost_charged(self, keys):
        charged = []
        conn = CapturingConnection()
        a = ChannelAdapter("alice", keys, conn, charge=charged.append)
        a.send("bob", "x")
        assert sum(charged) > 0

    def test_signature_model_costs_more(self, keys):
        mac_charged, sig_charged = [], []
        ChannelAdapter(
            "a", keys, CapturingConnection(), charge=mac_charged.append,
            cost_model=MAC_COST_MODEL,
        ).send("b", "x")
        ChannelAdapter(
            "a", keys, CapturingConnection(), charge=sig_charged.append,
            cost_model=SIGNATURE_COST_MODEL,
        ).send("b", "x")
        assert sum(sig_charged) > sum(mac_charged)

    def test_counters(self, keys):
        (a, conn_a), (b, _) = make_pair(keys)
        a.send("bob", "x")
        assert a.sent_count == 1
        _, envelope = conn_a.transmitted[0]
        b.accept(envelope)
        assert b.received_count == 1
