"""Regression: the encode-once/digest-once multicast contract.

The seed signed a multicast by re-hashing the full payload once per
receiver, and several call sites re-encoded the message per destination.
These tests pin the fast-path behaviour with the metrics counters: a
multicast to ``n`` receivers performs exactly one canonical encode and
one payload digest, with per-receiver work limited to one short MAC each.
"""

import pytest

from repro.clbft.messages import decode_message, encode_message
from repro.common.encoding import clear_blob_cache
from repro.common.metrics import METRICS
from repro.crypto.keys import KeyStore
from repro.transport.channel import ChannelAdapter
from repro.transport.connection import Connection


class CapturingConnection(Connection):
    def __init__(self):
        self.transmitted = []

    def transmit(self, dst, envelope):
        self.transmitted.append((str(dst), envelope))


@pytest.fixture(autouse=True)
def _fresh():
    clear_blob_cache()
    METRICS.reset()
    yield
    clear_blob_cache()
    METRICS.reset()


@pytest.fixture
def keys():
    return KeyStore.for_deployment("metrics-test")


def test_multicast_one_encode_one_digest(keys):
    conn = CapturingConnection()
    channel = ChannelAdapter("sender", keys, conn)
    receivers = [f"r{i}" for i in range(5)]
    METRICS.reset()
    channel.multicast(receivers, {"op": "commit", "seqno": 42})
    assert METRICS.encode_calls == 1
    assert METRICS.digest_calls == 1
    # One short-input MAC per receiver, derived from the single digest.
    assert METRICS.mac_computations == len(receivers)
    assert len(conn.transmitted) == len(receivers)
    # Every receiver gets the same envelope object (signed once).
    assert len({id(e) for _, e in conn.transmitted}) == 1


def test_multicast_with_fused_codec_still_one_encode(keys):
    conn = CapturingConnection()
    channel = ChannelAdapter(
        "sender", keys, conn, encode=encode_message, decode=decode_message
    )
    METRICS.reset()
    channel.multicast(["a", "b", "c"], {"payload": (1, 2, b"x")})
    assert METRICS.encode_calls == 1
    assert METRICS.digest_calls == 1
    assert METRICS.mac_computations == 3


def test_each_receiver_verifies_and_decodes_shared_envelope(keys):
    conn = CapturingConnection()
    sender = ChannelAdapter("sender", keys, conn)
    receivers = ["a", "b", "c"]
    sender.multicast(receivers, {"n": 1})
    _, envelope = conn.transmitted[0]
    for name in receivers:
        receiver = ChannelAdapter(name, keys, CapturingConnection())
        assert receiver.accept(envelope) == {"n": 1}
    # Decode is memoized on the envelope: one decode serves all receivers,
    # but every receiver still verified its own MAC entry.
    assert METRICS.mac_verifications == len(receivers)


def test_multicast_to_signs_for_audience_sends_to_recipients(keys):
    conn = CapturingConnection()
    channel = ChannelAdapter("sender", keys, conn)
    METRICS.reset()
    channel.multicast_to(["a", "b", "c", "d"], ["a"], {"req": 1})
    assert METRICS.encode_calls == 1
    assert METRICS.mac_computations == 4  # authenticated for all four
    assert len(conn.transmitted) == 1  # transmitted to one
    _, envelope = conn.transmitted[0]
    for name in ("a", "b", "c", "d"):
        receiver = ChannelAdapter(name, keys, CapturingConnection())
        assert receiver.accept(envelope) == {"req": 1}
