"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.kernel import ProtocolNode, Simulator
from repro.sim.network import UniformLatency


class Recorder(ProtocolNode):
    """Test node that logs everything it sees."""

    def __init__(self, cpu_us_per_message: int = 0):
        self.messages = []
        self.timers = []
        self.started = False
        self.cpu_us = cpu_us_per_message
        self.env = None

    def on_start(self):
        self.started = True

    def on_message(self, src, msg):
        if self.cpu_us:
            self.env.charge(self.cpu_us)
        self.messages.append((str(src), msg, self.env.now_us()))

    def on_timer(self, tag):
        self.timers.append((tag, self.env.now_us()))


def make_node(sim, name, cpu_us=0, host=None):
    node = Recorder(cpu_us)
    node.env = sim.add_node(name, node, host=host)
    return node


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(10, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_run_until_bounds_clock(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.schedule(5_000, lambda: None)
        sim.run(until_us=1_000)
        assert sim.now_us == 1_000

    def test_run_until_quiescent_sets_clock_to_deadline(self):
        sim = Simulator()
        sim.run(until_us=500)
        assert sim.now_us == 500

    def test_max_events_budget(self):
        sim = Simulator()
        count = []
        for _ in range(10):
            sim.schedule(1, lambda: count.append(1))
        processed = sim.run(max_events=4)
        assert processed == 4
        assert len(count) == 4

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)


class TestMessaging:
    def test_message_delivery_with_latency(self):
        sim = Simulator()
        sim.set_network(UniformLatency(25))
        a = make_node(sim, "a")
        b = make_node(sim, "b")
        a.env.send("b", "hello")
        sim.run()
        assert b.messages == [("a", "hello", 25)]

    def test_local_delivery_is_instant(self):
        sim = Simulator()
        sim.set_network(UniformLatency(1_000))
        a = make_node(sim, "a")
        b = make_node(sim, "b")
        a.env.local_deliver("b", "hi")
        sim.run()
        assert b.messages[0][2] == 0

    def test_message_to_unknown_node_is_dropped(self):
        sim = Simulator()
        sim.set_network(UniformLatency(0))
        a = make_node(sim, "a")
        a.env.send("ghost", "x")
        sim.run()  # must not raise

    def test_duplicate_node_id_rejected(self):
        sim = Simulator()
        make_node(sim, "a")
        with pytest.raises(SimulationError):
            make_node(sim, "a")

    def test_on_start_invoked_once(self):
        sim = Simulator()
        a = make_node(sim, "a")
        sim.run()
        sim.run()
        assert a.started


class TestCpuAccounting:
    def test_charge_serialises_handling_on_one_host(self):
        sim = Simulator()
        sim.set_network(UniformLatency(0))
        make_node(sim, "src")
        busy = make_node(sim, "busy", cpu_us=100)
        src = sim.env("src")
        src.send("busy", 1)
        src.send("busy", 2)
        src.send("busy", 3)
        sim.run()
        start_times = [t for (_, _, t) in busy.messages]
        # Third message can't start until 200us of prior work finished;
        # now_us inside the handler includes its own charge.
        assert start_times == [100, 200, 300]

    def test_co_located_nodes_share_cpu(self):
        sim = Simulator()
        sim.set_network(UniformLatency(0))
        make_node(sim, "src")
        v = make_node(sim, "host/voter", cpu_us=100, host="host")
        d = make_node(sim, "host/driver", cpu_us=100, host="host")
        src = sim.env("src")
        src.send("host/voter", "a")
        src.send("host/driver", "b")
        sim.run()
        all_times = sorted(
            t for node in (v, d) for (_, _, t) in node.messages
        )
        assert all_times == [100, 200]

    def test_distinct_hosts_run_in_parallel(self):
        sim = Simulator()
        sim.set_network(UniformLatency(0))
        make_node(sim, "src")
        a = make_node(sim, "a", cpu_us=100)
        b = make_node(sim, "b", cpu_us=100)
        src = sim.env("src")
        src.send("a", 1)
        src.send("b", 1)
        sim.run()
        assert a.messages[0][2] == 100
        assert b.messages[0][2] == 100

    def test_sends_depart_at_charge_point(self):
        sim = Simulator()
        sim.set_network(UniformLatency(0))

        class Relay(ProtocolNode):
            def __init__(self):
                self.env = None

            def on_message(self, src, msg):
                self.env.charge(50)
                self.env.send("sink", "early")
                self.env.charge(50)
                self.env.send("sink", "late")

            def on_timer(self, tag):
                pass

        relay = Relay()
        relay.env = sim.add_node("relay", relay)
        sink = make_node(sim, "sink")
        make_node(sim, "src")
        sim.env("src").send("relay", "go")
        sim.run()
        times = {msg: t for (_, msg, t) in sink.messages}
        assert times["early"] == 50
        assert times["late"] == 100


class TestTimers:
    def test_timer_fires_once(self):
        sim = Simulator()
        a = make_node(sim, "a")
        a.env.set_timer("t", 100)
        sim.run()
        assert a.timers == [("t", 100)]

    def test_rearm_replaces(self):
        sim = Simulator()
        a = make_node(sim, "a")
        a.env.set_timer("t", 100)
        a.env.set_timer("t", 300)
        sim.run()
        assert a.timers == [("t", 300)]

    def test_cancel(self):
        sim = Simulator()
        a = make_node(sim, "a")
        a.env.set_timer("t", 100)
        a.env.cancel_timer("t")
        sim.run()
        assert a.timers == []

    def test_timer_armed_query(self):
        sim = Simulator()
        a = make_node(sim, "a")
        a.env.set_timer("t", 100)
        assert a.env.timer_armed("t")
        a.env.cancel_timer("t")
        assert not a.env.timer_armed("t")

    def test_distinct_tags_coexist(self):
        sim = Simulator()
        a = make_node(sim, "a")
        a.env.set_timer("x", 100)
        a.env.set_timer("y", 50)
        sim.run()
        assert [tag for tag, _ in a.timers] == ["y", "x"]
