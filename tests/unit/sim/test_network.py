"""Unit tests for network models and fault injection."""

from repro.sim.network import (
    FaultyLink,
    LanModel,
    PartitionModel,
    UniformLatency,
)
from repro.sim.rng import DeterministicRng


class TestUniformLatency:
    def test_constant(self):
        model = UniformLatency(42)
        assert model.latency_us("a", "b", 10) == 42
        assert model.latency_us("b", "a", 10_000) == 42


class TestLanModel:
    def test_size_increases_latency(self):
        model = LanModel(propagation_us=100, ns_per_byte=8)
        small = model.latency_us("a", "b", 100)
        large = model.latency_us("a", "b", 100_000)
        assert large > small

    def test_propagation_floor(self):
        model = LanModel(propagation_us=50, ns_per_byte=0)
        assert model.latency_us("a", "b", 1) == 50

    def test_jitter_bounded_and_deterministic(self):
        rng = DeterministicRng(1, "jitter")
        model = LanModel(propagation_us=10, ns_per_byte=0, jitter_us=5, rng=rng)
        values = [model.latency_us("a", "b", 0) for _ in range(50)]
        assert all(10 <= v <= 15 for v in values)
        rng2 = DeterministicRng(1, "jitter")
        model2 = LanModel(propagation_us=10, ns_per_byte=0, jitter_us=5, rng=rng2)
        assert values == [model2.latency_us("a", "b", 0) for _ in range(50)]


class TestFaultyLink:
    def test_drop_everything_on_link(self):
        model = FaultyLink(UniformLatency(1))
        model.add_rule("a", "b", drop=1.0)
        assert model.latency_us("a", "b", 0) is None
        assert model.latency_us("b", "a", 0) == 1

    def test_extra_delay(self):
        model = FaultyLink(UniformLatency(10))
        model.add_rule("a", "b", extra_delay_us=90)
        assert model.latency_us("a", "b", 0) == 100

    def test_wildcards(self):
        model = FaultyLink(UniformLatency(1))
        model.add_rule("evil", "*", drop=1.0)
        assert model.latency_us("evil", "x", 0) is None
        assert model.latency_us("ok", "x", 0) == 1

    def test_clear_rules(self):
        model = FaultyLink(UniformLatency(1))
        model.add_rule("a", "b", drop=1.0)
        model.clear_rules()
        assert model.latency_us("a", "b", 0) == 1

    def test_probabilistic_drop_rate(self):
        model = FaultyLink(UniformLatency(1), rng=DeterministicRng(3, "d"))
        model.add_rule("a", "b", drop=0.5)
        outcomes = [model.latency_us("a", "b", 0) for _ in range(400)]
        dropped = sum(1 for o in outcomes if o is None)
        assert 120 <= dropped <= 280  # roughly half


class TestPartitionModel:
    def test_killed_node_isolated_both_ways(self):
        model = PartitionModel(UniformLatency(1))
        model.kill("x")
        assert model.latency_us("x", "y", 0) is None
        assert model.latency_us("y", "x", 0) is None
        assert model.latency_us("y", "z", 0) == 1

    def test_revive(self):
        model = PartitionModel(UniformLatency(1))
        model.kill("x")
        model.revive("x")
        assert model.latency_us("x", "y", 0) == 1

    def test_is_dead(self):
        model = PartitionModel(UniformLatency(1))
        model.kill("x")
        assert model.is_dead("x")
        assert not model.is_dead("y")


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(5, "x")
        b = DeterministicRng(5, "x")
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_labels_decorrelate(self):
        a = DeterministicRng(5, "x")
        b = DeterministicRng(5, "y")
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_child_streams(self):
        root = DeterministicRng(5)
        c1 = root.stream("a")
        c2 = root.stream("a")
        assert c1.randint(0, 10**9) == c2.randint(0, 10**9)

    def test_sample_mean_us_positive(self):
        rng = DeterministicRng(1, "t")
        samples = [rng.sample_mean_us(1000) for _ in range(200)]
        assert all(s >= 1 for s in samples)
        mean = sum(samples) / len(samples)
        assert 500 < mean < 2000

    def test_sample_mean_zero(self):
        assert DeterministicRng(1).sample_mean_us(0) == 0
