"""Unit tests for the public API surface (paper Figure 3 fidelity)."""

import pytest

from repro.perpetual.executor import CurrentTime, Random, Timestamp
from repro.soap.addressing import WsAddressing
from repro.ws.api import (
    MessageContext,
    MessageHandler,
    Options,
    Utils,
    WsReceiveAny,
    WsReceiveReply,
    WsReceiveRequest,
    WsSend,
    WsSendReceive,
    WsSendReply,
)


class TestOptions:
    def test_default_no_timeout(self):
        # Paper: "The default behavior ... is not to abort any
        # outstanding requests."
        assert Options().timeout_ms is None

    def test_paper_alias(self):
        options = Options()
        options.set_timeout_in_milliseconds(750)
        assert options.timeout_ms == 750


class TestMessageContext:
    def test_constructor_sets_addressing(self):
        context = MessageContext(to="pge", body={"x": 1}, action="authorize")
        assert WsAddressing.to(context.envelope) == "pge"
        assert WsAddressing.action(context.envelope) == "authorize"
        assert context.body == {"x": 1}

    def test_body_mutable(self):
        context = MessageContext()
        context.body = [1, 2]
        assert context.envelope.body == [1, 2]

    def test_allocator_unbound_raises(self):
        with pytest.raises(RuntimeError):
            MessageContext().allocate_message_id()

    def test_repr_mentions_correlation(self):
        context = MessageContext(to="pge")
        assert "pge" in repr(context)


class TestMessageHandlerOperations:
    """The six operations of Figure 3, plus the receive_any extension."""

    def test_send(self):
        context = MessageContext(to="t")
        op = MessageHandler.send(context)
        assert isinstance(op, WsSend) and op.context is context

    def test_receive_reply_any(self):
        assert MessageHandler.receive_reply() == WsReceiveReply(None)

    def test_receive_reply_specific(self):
        context = MessageContext(to="t")
        assert MessageHandler.receive_reply(context).request is context

    def test_send_receive(self):
        context = MessageContext(to="t")
        assert isinstance(MessageHandler.send_receive(context), WsSendReceive)

    def test_receive_request(self):
        assert isinstance(MessageHandler.receive_request(), WsReceiveRequest)

    def test_send_reply(self):
        reply, request = MessageContext(), MessageContext()
        op = MessageHandler.send_reply(reply, request)
        assert isinstance(op, WsSendReply)
        assert op.reply is reply and op.request is request

    def test_receive_any(self):
        assert isinstance(MessageHandler.receive_any(), WsReceiveAny)

    def test_compute(self):
        assert MessageHandler.compute(500).cpu_us == 500


class TestUtils:
    """The three deterministic utility functions of Figure 3."""

    def test_current_time(self):
        assert isinstance(Utils.current_time_millis(), CurrentTime)

    def test_timestamp(self):
        assert isinstance(Utils.timestamp(), Timestamp)

    def test_random(self):
        assert isinstance(Utils.random(), Random)
