"""Unit tests for the WS adapter (MessageHandler implementation).

The adapter is tested by driving its executor-level generator directly —
no simulator — asserting the exact effects it emits for each WS-level
operation and the WS-Addressing bookkeeping of paper section 5.1.
"""

import itertools

import pytest

from repro.common.errors import ExecutorViolation
from repro.common.ids import RequestId, ServiceId
from repro.perpetual.executor import (
    Compute,
    ExecutorRuntime,
    ReplyEvent,
    RequestEvent,
)
from repro.soap.addressing import WsAddressing
from repro.soap.envelope import SoapEnvelope
from repro.ws.adapter import WsAdapter
from repro.ws.api import MessageContext, MessageHandler, Options


def make_runtime(adapter: WsAdapter) -> ExecutorRuntime:
    counter = itertools.count(1)
    return ExecutorRuntime(
        app_factory=adapter.executor_app(),
        allocate_request_id=lambda: RequestId(
            ServiceId(adapter.service), next(counter)
        ),
    )


def soap_request(body, message_id="urn:caller:msg:1", reply_to="caller"):
    envelope = SoapEnvelope(body=body)
    WsAddressing.set_message_id(envelope, message_id)
    WsAddressing.set_reply_to(envelope, reply_to)
    return envelope.to_xml()


def request_event(seqno=1, payload=None, caller="caller"):
    return RequestEvent(
        request_id=RequestId(ServiceId(caller), seqno),
        caller=caller,
        payload=payload if payload is not None else soap_request({"n": seqno}),
    )


class TestSendPath:
    def test_send_emits_authenticated_soap_payload(self):
        def app():
            yield MessageHandler.send(MessageContext(to="pge", body={"x": 1}))

        adapter = WsAdapter("store", app)
        runtime = make_runtime(adapter)
        runtime.step()
        outbox = runtime.take_outbox()
        assert len(outbox.sends) == 1
        _, send = outbox.sends[0]
        assert send.target == "pge"
        envelope = SoapEnvelope.from_xml(send.payload)
        assert envelope.body == {"x": 1}
        assert WsAddressing.message_id(envelope) == "urn:store:msg:1"
        assert WsAddressing.reply_to(envelope) == "store"

    def test_send_resumes_with_message_id(self):
        got = []

        def app():
            got.append((yield MessageHandler.send(
                MessageContext(to="pge", body=None))))

        runtime = make_runtime(WsAdapter("store", app))
        runtime.step()
        assert got == ["urn:store:msg:1"]

    def test_send_without_to_rejected(self):
        def app():
            yield MessageHandler.send(MessageContext(body={"x": 1}))

        runtime = make_runtime(WsAdapter("store", app))
        with pytest.raises(ExecutorViolation):
            runtime.step()

    def test_timeout_propagates_to_send_effect(self):
        def app():
            yield MessageHandler.send(
                MessageContext(to="pge", body=None,
                               options=Options(timeout_ms=250))
            )

        runtime = make_runtime(WsAdapter("store", app))
        runtime.step()
        _, send = runtime.take_outbox().sends[0]
        assert send.timeout_ms == 250

    def test_marshal_cpu_charged(self):
        def app():
            yield MessageHandler.send(MessageContext(to="pge", body=None))

        runtime = make_runtime(WsAdapter("store", app))
        runtime.step()
        assert runtime.take_outbox().compute_us > 0

    def test_endpoint_resolution(self):
        def app():
            yield MessageHandler.send(
                MessageContext(to="perpetual://pge", body=None)
            )

        adapter = WsAdapter(
            "store", app,
            resolve=lambda e: e.removeprefix("perpetual://").split("/")[0],
        )
        runtime = make_runtime(adapter)
        runtime.step()
        assert runtime.take_outbox().sends[0][1].target == "pge"


class TestServePath:
    def test_receive_request_and_reply_correlation(self):
        def app():
            request = yield MessageHandler.receive_request()
            reply = MessageContext(body={"echo": request.body})
            yield MessageHandler.send_reply(reply, request)

        adapter = WsAdapter("pge", app)
        runtime = make_runtime(adapter)
        runtime.step()
        runtime.deliver_request(request_event(payload=soap_request({"q": 1})))
        runtime.step()
        replies = runtime.take_outbox().replies
        assert len(replies) == 1
        envelope = SoapEnvelope.from_xml(replies[0].payload)
        # Section 5.1: reply wsa:To = request wsa:ReplyTo;
        # wsa:RelatesTo = request wsa:MessageID.
        assert WsAddressing.to(envelope) == "caller"
        assert WsAddressing.relates_to(envelope) == "urn:caller:msg:1"
        assert envelope.body == {"echo": {"q": 1}}
        assert adapter.requests_served == 1

    def test_request_context_kind_and_caller(self):
        got = []

        def app():
            got.append((yield MessageHandler.receive_request()))

        runtime = make_runtime(WsAdapter("pge", app))
        runtime.step()
        runtime.deliver_request(request_event(caller="store"))
        runtime.step()
        assert got[0].kind == "request"
        assert got[0].caller == "store"

    def test_reply_to_unknown_request_rejected(self):
        def app():
            ghost = MessageContext(body=None)
            ghost.message_id = "urn:ghost"
            yield MessageHandler.send_reply(MessageContext(body=None), ghost)

        runtime = make_runtime(WsAdapter("pge", app))
        with pytest.raises(ExecutorViolation):
            runtime.step()

    def test_double_reply_rejected(self):
        def app():
            request = yield MessageHandler.receive_request()
            yield MessageHandler.send_reply(MessageContext(body=1), request)
            yield MessageHandler.send_reply(MessageContext(body=2), request)

        runtime = make_runtime(WsAdapter("pge", app))
        runtime.step()
        runtime.deliver_request(request_event())
        with pytest.raises(ExecutorViolation):
            runtime.step()


class TestReplyPath:
    def test_reply_context_correlated(self):
        got = []

        def app():
            context = MessageContext(to="pge", body={"x": 1})
            reply = yield MessageHandler.send_receive(context)
            got.append(reply)

        adapter = WsAdapter("store", app)
        runtime = make_runtime(adapter)
        runtime.step()
        rid = runtime.take_outbox().sends[0][0]
        reply_envelope = SoapEnvelope(body={"approved": True})
        WsAddressing.set_message_id(reply_envelope, "urn:pge:msg:1")
        WsAddressing.set_relates_to(reply_envelope, "urn:store:msg:1")
        runtime.deliver_reply(ReplyEvent(rid, reply_envelope.to_xml()))
        runtime.step()
        assert got[0].kind == "reply"
        assert got[0].body == {"approved": True}
        assert got[0].relates_to == "urn:store:msg:1"
        assert not got[0].is_fault

    def test_aborted_reply_becomes_soap_fault(self):
        got = []

        def app():
            reply = yield MessageHandler.send_receive(
                MessageContext(to="pge", body=None,
                               options=Options(timeout_ms=10))
            )
            got.append(reply)

        runtime = make_runtime(WsAdapter("store", app))
        runtime.step()
        rid = runtime.take_outbox().sends[0][0]
        runtime.deliver_reply(ReplyEvent(rid, None, aborted=True))
        runtime.step()
        assert got[0].is_fault
        assert got[0].relates_to == "urn:store:msg:1"

    def test_receive_reply_for_unknown_request_rejected(self):
        def app():
            phantom = MessageContext(body=None)
            phantom.message_id = "urn:never-sent"
            yield MessageHandler.receive_reply(phantom)

        runtime = make_runtime(WsAdapter("store", app))
        with pytest.raises(ExecutorViolation):
            runtime.step()


class TestComputeAndUnknownOps:
    def test_compute_passthrough(self):
        def app():
            yield MessageHandler.compute(5_000)

        runtime = make_runtime(WsAdapter("s", app))
        runtime.step()
        assert runtime.take_outbox().compute_us >= 5_000

    def test_unknown_operation_rejected(self):
        def app():
            yield 42

        runtime = make_runtime(WsAdapter("s", app))
        with pytest.raises(ExecutorViolation):
            runtime.step()

    def test_app_exceptions_rethrown_into_app(self):
        recovered = []

        def app():
            try:
                request = yield MessageHandler.receive_request()
                raise ValueError("app bug")
            except ValueError:
                recovered.append(True)

        runtime = make_runtime(WsAdapter("s", app))
        runtime.step()
        runtime.deliver_request(request_event())
        runtime.step()
        assert runtime.finished


class TestMessageIdDeterminism:
    def test_two_adapters_allocate_identical_ids(self):
        # Replica determinism: same app + same event sequence -> same ids.
        def app():
            yield MessageHandler.send(MessageContext(to="t", body=None))
            yield MessageHandler.send(MessageContext(to="t", body=None))

        ids = []
        for _ in range(2):
            adapter = WsAdapter("store", app)
            runtime = make_runtime(adapter)
            runtime.step()
            sends = runtime.take_outbox().sends
            envelopes = [SoapEnvelope.from_xml(s.payload) for _, s in sends]
            ids.append([WsAddressing.message_id(e) for e in envelopes])
        assert ids[0] == ids[1]
