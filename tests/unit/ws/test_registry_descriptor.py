"""Unit tests for the service registry and replicas.xml descriptor."""

import pytest

from repro.common.config import make_spec
from repro.common.errors import ConfigurationError
from repro.ws.descriptor import parse_replicas_xml, render_replicas_xml
from repro.ws.registry import ServiceRegistry


class TestRegistry:
    def test_register_and_resolve(self):
        registry = ServiceRegistry()
        registry.register(make_spec("pge", 4))
        assert registry.resolve("perpetual://pge").n == 4
        assert registry.resolve("pge").n == 4

    def test_resolve_with_replica_path(self):
        registry = ServiceRegistry()
        registry.register(make_spec("pge", 4))
        assert registry.resolve("perpetual://pge/2").n == 4

    def test_unknown_endpoint_raises(self):
        registry = ServiceRegistry()
        with pytest.raises(ConfigurationError):
            registry.resolve("perpetual://ghost")

    def test_deregister(self):
        registry = ServiceRegistry()
        registry.register(make_spec("pge", 4))
        registry.deregister("pge")
        with pytest.raises(ConfigurationError):
            registry.resolve("pge")

    def test_known_services_sorted(self):
        registry = ServiceRegistry()
        registry.register(make_spec("zeta", 1))
        registry.register(make_spec("alpha", 1))
        assert registry.known_services() == ["alpha", "zeta"]

    def test_service_name_extraction(self):
        assert ServiceRegistry.service_name("perpetual://bank/3") == "bank"
        assert ServiceRegistry.service_name("bank") == "bank"


class TestDescriptor:
    def test_parse_basic(self):
        specs = parse_replicas_xml(
            """
            <replicas>
              <service name="pge" replicas="4"/>
              <service name="bank" replicas="7"/>
            </replicas>
            """
        )
        by_name = {str(s.service): s for s in specs}
        assert by_name["pge"].n == 4
        assert by_name["pge"].f == 1
        assert by_name["bank"].n == 7

    def test_parse_with_endpoints(self):
        specs = parse_replicas_xml(
            """
            <replicas>
              <service name="pge" replicas="2">
                <endpoint>h1:8443</endpoint>
                <endpoint>h2:8443</endpoint>
              </service>
            </replicas>
            """
        )
        assert specs[0].endpoints == ("h1:8443", "h2:8443")

    def test_default_replicas_is_one(self):
        specs = parse_replicas_xml('<replicas><service name="x"/></replicas>')
        assert specs[0].n == 1

    @pytest.mark.parametrize(
        "document",
        [
            "<replicas><service/></replicas>",  # missing name
            '<replicas><service name="x" replicas="0"/></replicas>',
            '<replicas><service name="x" replicas="-2"/></replicas>',
            '<wrong><service name="x"/></wrong>',
            "<replicas><service name='x' replicas='2'>"
            "<endpoint>only-one</endpoint></service></replicas>",
            "not xml at all",
        ],
    )
    def test_invalid_documents_rejected(self, document):
        with pytest.raises(ConfigurationError):
            parse_replicas_xml(document)

    def test_render_roundtrip(self):
        specs = [make_spec("pge", 4), make_spec("rbe", 1)]
        rendered = render_replicas_xml(specs)
        reparsed = parse_replicas_xml(rendered)
        assert [(str(s.service), s.n) for s in reparsed] == [
            ("pge", 4), ("rbe", 1),
        ]
