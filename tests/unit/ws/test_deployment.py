"""Unit tests for the Deployment facade."""

import pytest

from repro.common.errors import ConfigurationError
from repro.ws.api import MessageContext, MessageHandler
from repro.ws.deployment import Deployment


def idle_app():
    while True:
        request = yield MessageHandler.receive_request()
        yield MessageHandler.send_reply(MessageContext(body=None), request)


class TestDeclaration:
    def test_declare_then_add(self):
        deployment = Deployment(name="d1")
        deployment.declare("svc", 4)
        deployed = deployment.add_service("svc", idle_app)
        assert deployed.n == 4
        assert len(deployed.adapters) == 4

    def test_add_with_inline_degree(self):
        deployment = Deployment(name="d2")
        deployed = deployment.add_service("svc", idle_app, n=7)
        assert deployed.n == 7

    def test_undeclared_without_degree_rejected(self):
        deployment = Deployment(name="d3")
        with pytest.raises(ConfigurationError):
            deployment.add_service("svc", idle_app)

    def test_conflicting_degree_rejected(self):
        deployment = Deployment(name="d4")
        deployment.declare("svc", 4)
        with pytest.raises(ConfigurationError):
            deployment.add_service("svc", idle_app, n=7)

    def test_declare_from_xml(self):
        deployment = Deployment(name="d5")
        deployment.declare_from_xml(
            """
            <replicas>
              <service name="pge" replicas="4"/>
              <service name="bank" replicas="1"/>
            </replicas>
            """
        )
        assert deployment.topology.spec("pge").n == 4
        assert deployment.registry.resolve("perpetual://bank").n == 1
        pge = deployment.add_service("pge", idle_app)
        assert pge.n == 4


class TestTopologyQueries:
    def test_registry_mirrors_topology(self):
        deployment = Deployment(name="d6")
        deployment.declare("a", 4)
        deployment.declare("b", 1)
        assert deployment.registry.known_services() == ["a", "b"]

    def test_unknown_service_spec_raises(self):
        deployment = Deployment(name="d7")
        with pytest.raises(ConfigurationError):
            deployment.topology.spec("ghost")


class TestRun:
    def test_run_bounded_by_time(self):
        deployment = Deployment(name="d8")
        deployment.declare("svc", 1)
        deployment.add_service("svc", idle_app)
        deployment.run(seconds=0.5)
        assert deployment.now_us == 500_000

    def test_run_bounded_by_events(self):
        deployment = Deployment(name="d9")
        deployment.declare("svc", 4)
        deployment.add_service("svc", idle_app)
        processed = deployment.run(max_events=3)
        assert processed <= 3
