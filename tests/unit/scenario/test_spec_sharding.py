"""Unit: the sharded half of the scenario spec.

Groups and routing are validated structure like everything else in the
spec: bad documents fail at ``validate()`` with a precise message, good
documents round-trip through JSON unchanged, and the builder partitions
services and auto-assigns faults to the group that owns them.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.scenario.presets import sharded_echo_scenario, sharded_tpcw_scenario
from repro.scenario.spec import (
    AppSpec,
    FaultSpec,
    GroupSpec,
    RoutingSpec,
    ScenarioBuilder,
    ScenarioSpec,
    ServiceDecl,
)


def decl(name, n=4, app="echo", **params):
    return ServiceDecl(name=name, n=n, app=AppSpec(kind=app, params=params))


def spec_with(groups=(), routing=RoutingSpec(), services=(), faults=()):
    return ScenarioSpec(
        name="sharded-neg",
        services=tuple(services),
        faults=tuple(faults),
        groups=tuple(groups),
        routing=routing,
    )


class TestValidationNegatives:
    def test_empty_group(self):
        with pytest.raises(ConfigurationError, match="declares no services"):
            spec_with(groups=[GroupSpec(name="g0")]).validate()

    def test_duplicate_principal_across_groups(self):
        groups = [
            GroupSpec(name="g0", services=(decl("svc"),)),
            GroupSpec(name="g1", services=(decl("svc"),)),
        ]
        with pytest.raises(ConfigurationError, match="duplicate service"):
            spec_with(groups=groups).validate()

    def test_unknown_routing_policy(self):
        with pytest.raises(ConfigurationError, match="unknown routing policy"):
            spec_with(
                groups=[GroupSpec(name="g0", services=(decl("svc"),))],
                routing=RoutingSpec(policy="round_robin"),
            ).validate()

    def test_routing_without_groups(self):
        with pytest.raises(ConfigurationError, match="has no groups"):
            spec_with(services=(decl("svc"),)).validate()

    def test_groups_without_routing(self):
        with pytest.raises(ConfigurationError, match="needs a routing policy"):
            spec_with(
                groups=[GroupSpec(name="g0", services=(decl("svc"),))],
                routing=None,
            ).validate()

    @pytest.mark.parametrize("vnodes", [0, -3, True, "many"])
    def test_bad_vnodes(self, vnodes):
        with pytest.raises(ConfigurationError, match="vnodes"):
            spec_with(
                groups=[GroupSpec(name="g0", services=(decl("svc"),))],
                routing=RoutingSpec(
                    policy="consistent_hash", params={"vnodes": vnodes}
                ),
            ).validate()

    @pytest.mark.parametrize("name", ["", "a/b"])
    def test_invalid_group_name(self, name):
        with pytest.raises(ConfigurationError, match="invalid group name"):
            spec_with(
                groups=[GroupSpec(name=name, services=(decl("svc"),))]
            ).validate()

    def test_duplicate_group_name(self):
        groups = [
            GroupSpec(name="g0", services=(decl("a"),)),
            GroupSpec(name="g0", services=(decl("b"),)),
        ]
        with pytest.raises(ConfigurationError, match="duplicate group"):
            spec_with(groups=groups).validate()

    def test_top_level_services_need_consistent_hash(self):
        spec = spec_with(
            groups=[GroupSpec(name="g0", services=(decl("svc"),))],
            services=(decl("client"),),
        )
        with pytest.raises(ConfigurationError, match="consistent_hash"):
            spec.validate()
        spec_with(
            groups=[GroupSpec(name="g0", services=(decl("svc"),))],
            services=(decl("client"),),
            routing=RoutingSpec(policy="consistent_hash"),
        ).validate()

    def test_group_fault_must_name_in_group_service(self):
        groups = [
            GroupSpec(
                name="g0",
                services=(decl("a"),),
                faults=(FaultSpec(kind="crash", service="b", index=0),),
            ),
            GroupSpec(name="g1", services=(decl("b"),)),
        ]
        with pytest.raises(
            ConfigurationError, match="which the group does not declare"
        ):
            spec_with(groups=groups).validate()

    def test_sharded_top_level_link_fault_is_rejected(self):
        spec = spec_with(
            groups=[GroupSpec(name="g0", services=(decl("svc"),))],
            faults=(FaultSpec(kind="link", params={"src": "*", "dst": "*"}),),
        )
        with pytest.raises(ConfigurationError, match="inside a group"):
            spec.validate()

    def test_group_link_fault_scoped_to_group_principals(self):
        fault = FaultSpec(
            kind="link", params={"src": "other/v0", "dst": "*", "drop": 0.5}
        )
        groups = [
            GroupSpec(name="g0", services=(decl("svc"),), faults=(fault,)),
            GroupSpec(name="g1", services=(decl("other"),)),
        ]
        # "other" exists — but in g1, so g0's link rule cannot see it.
        with pytest.raises(ConfigurationError, match="names no principal"):
            spec_with(groups=groups).validate()


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [sharded_echo_scenario(), sharded_tpcw_scenario()],
        ids=["sharded-echo", "sharded-tpcw"],
    )
    def test_sharded_presets_round_trip(self, spec):
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.groups == spec.groups
        assert restored.routing == spec.routing
        restored.validate()

    def test_document_without_sharding_keys_is_classic(self):
        spec = ScenarioSpec.from_dict(
            {"name": "classic", "services": [], "network": {"kind": "lan"}}
        )
        assert spec.groups == ()
        assert spec.routing is None
        assert not spec.is_sharded


class TestBuilderPartitioning:
    def build(self):
        return (
            ScenarioBuilder("builder-sharding")
            .routing("consistent_hash", vnodes=16)
            .service("g0-a", n=4, app="echo", group="g0")
            .service("g1-b", n=4, app="echo", group="g1")
            .service("g0-c", n=4, app="echo", group="g0")
            .service("client", n=2, app="sync_caller",
                     target="g0-a", total_calls=1)
            .crash("g1-b", 0)
            .link_fault("g0-c/v1", "*", drop=0.5)
            .delay("client", 0, delay_us=100)
            .build()
        )

    def test_groups_in_first_appearance_order(self):
        spec = self.build()
        assert [g.name for g in spec.groups] == ["g0", "g1"]
        assert [s.name for s in spec.groups[0].services] == ["g0-a", "g0-c"]
        assert spec.is_sharded
        assert spec.routing == RoutingSpec(
            policy="consistent_hash", params={"vnodes": 16}
        )

    def test_faults_assigned_to_owning_group(self):
        spec = self.build()
        by_group = {g.name: [f.kind for f in g.faults] for g in spec.groups}
        assert by_group == {"g0": ["link"], "g1": ["crash"]}
        # The client is top-level, so its fault stays top-level.
        assert [f.kind for f in spec.faults] == ["delay"]
        assert [f.kind for f in spec.all_faults()] == ["delay", "link", "crash"]

    def test_routing_defaults_to_service_name(self):
        spec = (
            ScenarioBuilder("default-routing")
            .service("svc", n=4, app="echo", group="g0")
            .build()
        )
        assert spec.routing == RoutingSpec()
        assert spec.routing.policy == "service_name"

    def test_lookup_helpers_cover_groups(self):
        spec = self.build()
        assert [s.name for s in spec.all_services()] == [
            "client", "g0-a", "g0-c", "g1-b",
        ]
        assert spec.group_of("g1-b") == "g1"
        assert spec.group_of("client") is None
        assert spec.service("g0-c").name == "g0-c"
        with pytest.raises(ConfigurationError, match="no service"):
            spec.service("missing")
