"""Unit tests for the scenario spec, builder, registry, and presets."""

import pytest

from repro.common.errors import ConfigurationError
from repro.crypto.cost import MAC_COST_MODEL, SIGNATURE_COST_MODEL
from repro.scenario.apps import (
    app_kinds,
    build_app,
    register_cost_model,
    resolve_cost_model,
)
from repro.scenario.presets import (
    PRESETS,
    echo_parity_scenario,
    orchestration_scenario,
    preset,
    tpcw_scenario,
    two_tier_scenario,
)
from repro.scenario.spec import (
    AppSpec,
    FaultSpec,
    ScenarioBuilder,
    ScenarioSpec,
    ServiceDecl,
)


class TestBuilder:
    def test_builds_declared_services_in_order(self):
        spec = (
            ScenarioBuilder("b1")
            .service("target", n=4, app="echo")
            .service("caller", n=7, app="sync_caller",
                     target="target", total_calls=3)
            .build()
        )
        assert [s.name for s in spec.services] == ["target", "caller"]
        assert spec.service("caller").n == 7
        assert spec.service("caller").app.kind == "sync_caller"
        assert spec.service("caller").app.params["total_calls"] == 3

    def test_network_crypto_duration_seed(self):
        spec = (
            ScenarioBuilder("b2")
            .network("uniform", latency_us=50)
            .crypto("rsa-signature")
            .duration(12.5)
            .seed(99)
            .service("svc", n=1, app="echo")
            .build()
        )
        assert spec.network.kind == "uniform"
        assert spec.network.params == {"latency_us": 50}
        assert spec.crypto == "rsa-signature"
        assert spec.duration_s == 12.5
        assert spec.seed == 99

    def test_duplicate_service_rejected(self):
        builder = ScenarioBuilder("b3").service("svc", n=1, app="echo")
        with pytest.raises(ConfigurationError):
            builder.service("svc", n=2, app="echo").build()

    def test_zero_replicas_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioBuilder("b4").service("svc", n=0, app="echo").build()

    def test_crash_fault_out_of_range_rejected(self):
        builder = (
            ScenarioBuilder("b5").service("svc", n=2, app="echo").crash("svc", 5)
        )
        with pytest.raises(ConfigurationError):
            builder.build()

    def test_host_count_must_match_replication(self):
        with pytest.raises(ConfigurationError):
            ScenarioBuilder("b6").service(
                "svc", n=3, app="echo", hosts=["h0"]
            ).build()

    def test_unknown_network_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            (
                ScenarioBuilder("b7")
                .network("carrier-pigeon")
                .service("svc", n=1, app="echo")
                .build()
            )


class TestSpecLookups:
    def test_unknown_service_raises(self):
        spec = ScenarioSpec(name="s", services=())
        with pytest.raises(ConfigurationError):
            spec.service("ghost")

    def test_with_replaces_fields(self):
        spec = echo_parity_scenario(n=2, total_calls=3)
        faulted = spec.with_(faults=(FaultSpec(kind="crash",
                                               service="target", index=0),))
        assert faulted.faults[0].service == "target"
        assert spec.faults == ()

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_json("{not json")
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_json('{"services": []}')  # no name


class TestAppRegistry:
    def test_known_kinds_present(self):
        kinds = app_kinds()
        for kind in ("echo", "counter", "digest", "sync_caller",
                     "async_caller", "bank", "pge", "bookstore", "rbe",
                     "orchestrator", "inventory", "shipping"):
            assert kind in kinds

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            build_app(AppSpec(kind="nonesuch"))

    def test_missing_required_params_rejected_as_configuration_error(self):
        with pytest.raises(ConfigurationError, match="sync_caller"):
            build_app(AppSpec(kind="sync_caller", params={"total_calls": 2}))

    def test_sync_caller_probe_counts_completions(self):
        built = build_app(
            AppSpec(kind="sync_caller", params={"target": "t", "total_calls": 2})
        )
        assert built.probe() == {"completed": 0, "faults": 0}

    def test_cost_model_resolution(self):
        assert resolve_cost_model("mac") is MAC_COST_MODEL
        assert resolve_cost_model("rsa-signature") is SIGNATURE_COST_MODEL
        assert register_cost_model(SIGNATURE_COST_MODEL) == "rsa-signature"
        with pytest.raises(ConfigurationError):
            resolve_cost_model("one-time-pad")

    def test_cost_model_from_explicit_params(self):
        # A spec carrying crypto_params builds the model without the
        # process-local registry — what spawned workers rely on.
        model = resolve_cost_model(
            "bespoke", {"sign_us": 9, "verify_us": 3, "per_receiver_us": 1}
        )
        assert (model.name, model.sign_us, model.verify_us,
                model.per_receiver_us) == ("bespoke", 9, 3, 1)
        with pytest.raises(ConfigurationError):
            resolve_cost_model("bespoke", {"sign_us": 9, "bogus": 1})


class TestPresets:
    def test_two_tier_shape(self):
        spec = two_tier_scenario(4, 7, total_calls=11, cpu_ms=6)
        assert spec.service("target").n == 7
        assert spec.service("target").app.kind == "digest"
        assert spec.service("caller").app.params["body"] == {"cpu_us": 6000}
        # Null-op cells target the increment service.
        null_spec = two_tier_scenario(1, 1, total_calls=5)
        assert null_spec.service("target").app.kind == "counter"

    def test_two_tier_async_explicit_even_at_window_1(self):
        spec = two_tier_scenario(4, 4, window=1, asynchronous=True)
        assert spec.service("caller").app.kind == "async_caller"
        assert spec.service("caller").app.params["window"] == 1

    def test_tpcw_shape(self):
        spec = tpcw_scenario(rbe_count=5, n_pge=4, seed=3)
        names = [s.name for s in spec.services]
        assert names[:3] == ["bank", "pge", "bookstore"]
        assert sum(name.startswith("rbe") for name in names) == 5
        # "All the RBEs were executed within a single host."
        assert spec.service("rbe0").hosts == ("rbe-host",)
        assert spec.service("bank").n == 4
        assert spec.service("bookstore").app.params["seed"] == 3

    def test_orchestration_shape(self):
        spec = orchestration_scenario(n=4)
        assert spec.service("orchestrator").app.kind == "orchestrator"
        assert len(spec.service("orchestrator").app.params["orders"]) == 4
        assert spec.service("shipping").n == 1

    def test_every_preset_builds_and_round_trips(self):
        for name in PRESETS:
            spec = preset(name)
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            preset("fig13")


class TestServiceDecl:
    def test_defaults(self):
        decl = ServiceDecl(name="svc", n=1, app=AppSpec(kind="echo"))
        assert decl.crypto is None
        assert decl.hosts is None
        assert decl.clbft is None


def fault_builder(n=4):
    return (
        ScenarioBuilder("fault-validation")
        .service("target", n=n, app="echo")
        .service("caller", n=1, app="sync_caller",
                 target="target", total_calls=1)
    )


class TestLinkFaultValidation:
    def test_unknown_param_key_rejected(self):
        builder = fault_builder().link_fault("caller/d0", "*", dorp=0.5)
        with pytest.raises(ConfigurationError, match="unknown params"):
            builder.build()

    def test_endpoint_must_name_a_declared_principal(self):
        for endpoint in ("caller", "ghost/v0", "target/v9", "target/x0"):
            builder = fault_builder().link_fault(endpoint, "*")
            with pytest.raises(ConfigurationError, match="principal"):
                builder.build()

    def test_wildcard_and_in_range_principals_accepted(self):
        spec = (
            fault_builder()
            .link_fault("*", "target/v3", drop=1.0)
            .link_fault("caller/d0", "*", extra_delay_us=0)
            .build()
        )
        assert len(spec.faults) == 2

    def test_drop_probability_bounds(self):
        for drop in (-0.1, 1.5, "half"):
            builder = fault_builder().link_fault("*", "*", drop=drop)
            with pytest.raises(ConfigurationError, match="drop"):
                builder.build()

    def test_negative_extra_delay_rejected(self):
        builder = fault_builder().link_fault("*", "*", extra_delay_us=-5)
        with pytest.raises(ConfigurationError, match="extra_delay_us"):
            builder.build()


class TestReplicaFaultValidation:
    def test_unknown_fault_kind_rejected(self):
        spec = fault_builder().build()
        bad = spec.with_(faults=(FaultSpec(kind="gremlin", service="target"),))
        with pytest.raises(ConfigurationError, match="gremlin"):
            bad.validate()

    def test_unknown_byzantine_mode_rejected(self):
        builder = fault_builder().byzantine("target", 0, mode="lazy")
        with pytest.raises(ConfigurationError, match="byzantine mode"):
            builder.build()

    def test_byzantine_needs_fault_tolerant_group(self):
        builder = fault_builder(n=3).byzantine("target", 0)
        with pytest.raises(ConfigurationError, match="n >= 4"):
            builder.build()

    def test_index_out_of_range_rejected_for_each_kind(self):
        for builder in (
            fault_builder().byzantine("target", 4),
            fault_builder().delay("target", -1, delay_us=100),
            fault_builder().restart("target", 9, up_after_us=100),
        ):
            with pytest.raises(ConfigurationError, match="out of range"):
                builder.build()

    def test_delay_needs_positive_integer_delay(self):
        for delay_us in (0, -100, 1.5):
            spec = fault_builder().build().with_(faults=(
                FaultSpec(kind="delay", service="target", index=0,
                          params={"delay_us": delay_us}),
            ))
            with pytest.raises(ConfigurationError, match="delay_us"):
                spec.validate()

    def test_delay_jitter_must_be_non_negative(self):
        builder = fault_builder().delay("target", 0, delay_us=10, jitter_us=-1)
        with pytest.raises(ConfigurationError, match="jitter_us"):
            builder.build()

    def test_partition_side_must_be_proper_in_range_subset(self):
        cases = [
            ([], "non-empty"),
            ([0, 4], "out of range"),
            ([0, 1, 2, 3], "proper subset"),
        ]
        for side, message in cases:
            builder = fault_builder().partition(
                "target", side, heal_after_us=1000
            )
            with pytest.raises(ConfigurationError, match=message):
                builder.build()

    def test_partition_window_must_be_ordered(self):
        builder = fault_builder().partition(
            "target", [0], heal_after_us=100, start_after_us=100
        )
        with pytest.raises(ConfigurationError, match="heal_after_us"):
            builder.build()

    def test_restart_window_must_be_ordered(self):
        builder = fault_builder().restart(
            "target", 0, up_after_us=50, down_after_us=50
        )
        with pytest.raises(ConfigurationError, match="up_after_us"):
            builder.build()

    def test_fault_on_unknown_service_rejected(self):
        builder = fault_builder().byzantine("ghost", 0)
        with pytest.raises(ConfigurationError, match="ghost"):
            builder.build()

    def test_new_fault_kinds_round_trip_through_json(self):
        spec = (
            fault_builder()
            .byzantine("target", 0, mode="mute")
            .delay("target", 1, delay_us=250, jitter_us=40)
            .partition("target", [3], heal_after_us=2_000_000,
                       start_after_us=500_000)
            .restart("target", 2, up_after_us=800_000, down_after_us=100_000)
            .build()
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert [f.kind for f in restored.faults] == [
            "byzantine", "delay", "partition", "restart",
        ]
        # The restored document revalidates cleanly (what the process
        # substrate's workers do with the spawn-payload JSON).
        restored.validate()
