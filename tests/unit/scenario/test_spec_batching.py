"""The ``batching`` knob on ScenarioSpec: validation and serialisation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.scenario.spec import ScenarioBuilder, ScenarioSpec


def minimal(batching):
    return (
        ScenarioBuilder("batching-spec")
        .batching(batching)
        .service("target", n=1, app="echo")
        .build()
    )


class TestValidation:
    @pytest.mark.parametrize("value", ["off", "tick", 1, 500, 250_000])
    def test_accepted(self, value):
        assert minimal(value).batching == value

    @pytest.mark.parametrize("value", ["nope", "window", "", 0, -5, True, False, 2.5, None])
    def test_rejected(self, value):
        with pytest.raises(ConfigurationError, match="batching"):
            minimal(value)

    def test_default_is_off(self):
        spec = ScenarioBuilder("d").service("t", n=1, app="echo").build()
        assert spec.batching == "off"


class TestSerialisation:
    @pytest.mark.parametrize("value", ["off", "tick", 500])
    def test_json_round_trip(self, value):
        spec = minimal(value)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_json(spec.to_json()).batching == value

    def test_documents_without_the_field_default_to_off(self):
        spec = minimal("tick")
        data = spec.to_dict()
        del data["batching"]
        assert ScenarioSpec.from_dict(data).batching == "off"

    def test_with_replaces_batching(self):
        spec = minimal("off")
        assert spec.with_(batching="tick").batching == "tick"
