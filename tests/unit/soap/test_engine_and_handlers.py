"""Unit tests for WS-Addressing, handler pipes, engine, and faults."""

import pytest

from repro.soap.addressing import WsAddressing
from repro.soap.engine import SoapEngine
from repro.soap.envelope import SoapEnvelope
from repro.soap.faults import (
    CODE_ABORTED,
    SoapFault,
    fault_of,
    make_fault_envelope,
)
from repro.soap.handlers import CountingHandler, FunctionHandler, HandlerChain
from repro.ws.api import MessageContext


class TestWsAddressing:
    def test_set_get_all_fields(self):
        envelope = SoapEnvelope()
        WsAddressing.set_message_id(envelope, "urn:1")
        WsAddressing.set_reply_to(envelope, "store")
        WsAddressing.set_to(envelope, "pge")
        WsAddressing.set_relates_to(envelope, "urn:0")
        WsAddressing.set_action(envelope, "authorize")
        assert WsAddressing.message_id(envelope) == "urn:1"
        assert WsAddressing.reply_to(envelope) == "store"
        assert WsAddressing.to(envelope) == "pge"
        assert WsAddressing.relates_to(envelope) == "urn:0"
        assert WsAddressing.action(envelope) == "authorize"

    def test_headers_survive_marshal(self):
        envelope = SoapEnvelope()
        WsAddressing.set_message_id(envelope, "urn:42")
        restored = SoapEnvelope.from_xml(envelope.to_xml())
        assert WsAddressing.message_id(restored) == "urn:42"

    def test_missing_fields_default_empty(self):
        assert WsAddressing.message_id(SoapEnvelope()) == ""


class TestHandlerChain:
    def test_invocation_order(self):
        seen = []
        chain = HandlerChain()
        chain.add(FunctionHandler("first", lambda ctx: seen.append("first")))
        chain.add(FunctionHandler("second", lambda ctx: seen.append("second")))
        chain.add_first(FunctionHandler("zeroth", lambda ctx: seen.append("zeroth")))
        chain.invoke(None)
        assert seen == ["zeroth", "first", "second"]

    def test_names(self):
        chain = HandlerChain([CountingHandler("a"), CountingHandler("b")])
        assert chain.names() == ["a", "b"]


class TestEngine:
    def test_out_pipe_stamps_addressing(self):
        engine = SoapEngine()
        context = MessageContext(to="pge", body={"x": 1})
        context.local_service = "store"
        counter = [0]

        def allocate():
            counter[0] += 1
            return f"urn:store:msg:{counter[0]}"

        context._allocate = allocate
        payload = engine.send_through(context)
        envelope = SoapEnvelope.from_xml(payload)
        assert WsAddressing.message_id(envelope) == "urn:store:msg:1"
        assert WsAddressing.reply_to(envelope) == "store"
        assert engine.marshalled == 1

    def test_in_pipe_extracts_correlation(self):
        engine = SoapEngine()
        outgoing = SoapEnvelope(body={"ok": True})
        WsAddressing.set_message_id(outgoing, "urn:9")
        WsAddressing.set_relates_to(outgoing, "urn:8")
        context = MessageContext()
        engine.receive_through(context, outgoing.to_xml())
        assert context.message_id == "urn:9"
        assert context.relates_to == "urn:8"
        assert engine.demarshalled == 1

    def test_custom_handlers_run(self):
        engine = SoapEngine()
        counting = CountingHandler()
        engine.add_out_handler(counting)
        context = MessageContext(to="x", body=None)
        context._allocate = lambda: "urn:1"
        context.local_service = "s"
        engine.send_through(context)
        assert counting.count == 1

    def test_existing_message_id_not_overwritten(self):
        engine = SoapEngine()
        context = MessageContext(to="pge", body=None)
        WsAddressing.set_message_id(context.envelope, "urn:preset")
        context._allocate = lambda: "urn:generated"
        context.local_service = "s"
        payload = engine.send_through(context)
        restored = SoapEnvelope.from_xml(payload)
        assert WsAddressing.message_id(restored) == "urn:preset"


class TestFaults:
    def test_fault_envelope_roundtrip(self):
        envelope = make_fault_envelope(CODE_ABORTED, "timed out")
        restored = SoapEnvelope.from_xml(envelope.to_xml())
        fault = fault_of(restored)
        assert fault == SoapFault(code=CODE_ABORTED, reason="timed out")

    def test_non_fault_envelope(self):
        assert fault_of(SoapEnvelope(body={"x": 1})) is None

    def test_message_context_fault_accessors(self):
        context = MessageContext(envelope=make_fault_envelope(CODE_ABORTED, "r"))
        assert context.is_fault
        assert context.fault.code == CODE_ABORTED
        plain = MessageContext(body={"x": 1})
        assert not plain.is_fault
