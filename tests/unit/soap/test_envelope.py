"""Unit tests for SOAP envelopes and the typed body codec."""

import pytest
import xml.etree.ElementTree as ET

from repro.common.errors import ProtocolError
from repro.soap.envelope import SOAP_NS, SoapEnvelope, body_from_xml, body_to_xml


class TestBodyCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -5,
            12345678901234,
            "",
            "text with spaces & symbols <>",
            b"\x00\x01binary",
            [],
            [1, "two", None],
            {"k": "v"},
            {"nested": {"list": [{"deep": True}]}},
        ],
    )
    def test_roundtrip(self, value):
        root = ET.Element("root")
        element = body_to_xml(root, "payload", value)
        assert body_from_xml(element) == value

    def test_non_string_map_keys_rejected(self):
        root = ET.Element("root")
        with pytest.raises(ProtocolError):
            body_to_xml(root, "payload", {1: "x"})

    def test_unencodable_type_rejected(self):
        root = ET.Element("root")
        with pytest.raises(ProtocolError):
            body_to_xml(root, "payload", object())

    def test_unknown_type_attribute_rejected(self):
        element = ET.Element("payload")
        element.set("t", "quaternion")
        with pytest.raises(ProtocolError):
            body_from_xml(element)


class TestEnvelope:
    def test_xml_roundtrip(self):
        envelope = SoapEnvelope(
            headers={"wsa:To": "pge", "wsa:MessageID": "urn:1"},
            body={"amount": 100, "card": "4111"},
        )
        data = envelope.to_xml()
        restored = SoapEnvelope.from_xml(data)
        assert restored.headers == envelope.headers
        assert restored.body == envelope.body

    def test_produces_real_soap_xml(self):
        data = SoapEnvelope(body={"x": 1}).to_xml()
        root = ET.fromstring(data)
        assert root.tag == f"{{{SOAP_NS}}}Envelope"
        children = [child.tag for child in root]
        assert f"{{{SOAP_NS}}}Header" in children
        assert f"{{{SOAP_NS}}}Body" in children

    def test_malformed_xml_rejected(self):
        with pytest.raises(ProtocolError):
            SoapEnvelope.from_xml(b"<not-even-close")

    def test_non_envelope_root_rejected(self):
        with pytest.raises(ProtocolError):
            SoapEnvelope.from_xml(b"<wrong/>")

    def test_copy_is_independent(self):
        envelope = SoapEnvelope(headers={"h": "1"}, body={"x": 1})
        copied = envelope.copy()
        copied.headers["h"] = "2"
        assert envelope.headers["h"] == "1"

    def test_empty_body(self):
        restored = SoapEnvelope.from_xml(SoapEnvelope().to_xml())
        assert restored.body is None
