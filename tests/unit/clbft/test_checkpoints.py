"""CLBFT checkpointing and log garbage collection."""

from repro.clbft.messages import Checkpoint
from tests.unit.clbft.harness import Group


class TestCheckpoints:
    def test_stable_checkpoint_advances(self):
        group = Group(4, checkpoint_interval=4, batch_size=1)
        for k in range(8):
            group.submit({"k": k}, timestamp=k + 1)
            group.deliver_all()
        for i in range(4):
            assert group.replicas[i].log.stable_seqno >= 4

    def test_garbage_collection_bounds_log(self):
        group = Group(4, checkpoint_interval=4, log_window=16, batch_size=1)
        for k in range(40):
            group.submit({"k": k}, timestamp=k + 1)
            group.deliver_all()
        for i in range(4):
            log = group.replicas[i].log
            assert log.live_entry_count <= log._config.log_window + 8
            assert log.stable_seqno >= 32

    def test_checkpoint_messages_flow(self):
        group = Group(4, checkpoint_interval=2, batch_size=1)
        for k in range(4):
            group.submit({"k": k}, timestamp=k + 1)
            group.deliver_all()
        checkpoints = [
            m for _, _, m in group.bus.log if isinstance(m, Checkpoint)
        ]
        assert checkpoints

    def test_progress_beyond_initial_window(self):
        # Without garbage collection the watermark window would halt
        # agreement; 100 requests >> log_window proves GC unblocks it.
        group = Group(4, checkpoint_interval=4, log_window=16, batch_size=1)
        for k in range(100):
            group.submit({"k": k}, timestamp=k + 1)
            group.deliver_all()
        for i in range(4):
            assert len(group.executed_ops(i)) == 100

    def test_mismatched_checkpoint_digests_never_stabilise(self):
        group = Group(4, checkpoint_interval=4)
        log = group.replicas[0].log
        for replica in range(3):
            log.add_checkpoint(
                Checkpoint(seqno=4, state_digest=bytes([replica]) * 32,
                           replica=replica)
            )
        assert log.stable_seqno == 0

    def test_quorum_of_matching_digests_stabilises(self):
        group = Group(4, checkpoint_interval=4)
        log = group.replicas[0].log
        for replica in range(3):
            became_stable = log.add_checkpoint(
                Checkpoint(seqno=4, state_digest=b"s" * 32, replica=replica)
            )
        assert became_stable
        assert log.stable_seqno == 4

    def test_stale_checkpoint_votes_ignored(self):
        group = Group(4, checkpoint_interval=4)
        log = group.replicas[0].log
        for replica in range(3):
            log.add_checkpoint(
                Checkpoint(seqno=4, state_digest=b"s" * 32, replica=replica)
            )
        assert not log.add_checkpoint(
            Checkpoint(seqno=4, state_digest=b"s" * 32, replica=3)
        )
