"""Wire codec round-trips for every CLBFT and Perpetual message type."""

import pytest

from repro.clbft.messages import (
    Checkpoint,
    ClientRequest,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    PreparedProof,
    Reply,
    ViewChange,
    message_from_wire,
    message_to_wire,
)
from repro.common.encoding import canonical_encode, decode_payload
from repro.common.errors import ProtocolError
from repro.common.ids import RequestId, ServiceId
from repro.perpetual.messages import (
    AgreedEvent,
    OutRequest,
    ReplyBundle,
    ReplyForward,
    ResultSubmission,
    UtilityRequest,
)

REQUEST = ClientRequest(client="c", timestamp=3, op={"amount": 5})
PRE_PREPARE = PrePrepare(view=1, seqno=7, digest=b"d" * 32, requests=(REQUEST,))


def roundtrip(msg):
    wire = message_to_wire(msg)
    encoded = canonical_encode(wire)
    return message_from_wire(decode_payload(encoded))


@pytest.mark.parametrize(
    "msg",
    [
        REQUEST,
        PRE_PREPARE,
        Prepare(view=1, seqno=7, digest=b"d" * 32, replica=2),
        Commit(view=1, seqno=7, digest=b"d" * 32, replica=0),
        Reply(view=0, timestamp=3, client="c", replica=1, result={"ok": True}),
        Checkpoint(seqno=16, state_digest=b"s" * 32, replica=3),
        PreparedProof(
            pre_prepare=PRE_PREPARE,
            prepares=(Prepare(view=1, seqno=7, digest=b"d" * 32, replica=2),),
        ),
        ViewChange(
            new_view=2,
            stable_seqno=16,
            checkpoint_proof=(
                Checkpoint(seqno=16, state_digest=b"s" * 32, replica=0),
            ),
            prepared=(
                PreparedProof(pre_prepare=PRE_PREPARE, prepares=()),
            ),
            replica=1,
        ),
        NewView(view=2, view_changes=(), pre_prepares=(PRE_PREPARE,)),
        OutRequest(
            request_id=RequestId(ServiceId("store"), 4),
            caller=ServiceId("store"),
            target=ServiceId("pge"),
            payload=b"<soap/>",
            responder_index=2,
            attempt=1,
        ),
        ReplyForward(
            request_id=RequestId(ServiceId("store"), 4),
            result=b"<soap/>",
            voter_index=1,
            auth=["pge/v1", [["store/d0", b"m" * 16]]],
        ),
        ReplyBundle(
            request_id=RequestId(ServiceId("store"), 4),
            result=b"<soap/>",
            vouchers=((1, ["pge/v1", []]), (2, ["pge/v2", []])),
        ),
        ResultSubmission(
            request_id=RequestId(ServiceId("store"), 4),
            result=b"<soap/>",
            aborted=False,
        ),
        UtilityRequest(util_seq=9, utility="time"),
        AgreedEvent(kind="reply", body={"request_id": None, "value": 1,
                                        "aborted": False}),
    ],
)
def test_roundtrip(msg):
    assert roundtrip(msg) == msg


def test_nested_containers_of_messages():
    value = {"batch": [REQUEST, REQUEST], "pair": (PRE_PREPARE,)}
    wire = message_to_wire(value)
    restored = message_from_wire(decode_payload(canonical_encode(wire)))
    assert restored == value


def test_unknown_kind_rejected():
    with pytest.raises(ProtocolError):
        message_from_wire({"__msg__": "martian", "v": {}})


def test_plain_values_pass_through():
    assert message_from_wire(message_to_wire({"x": [1, "y"]})) == {"x": [1, "y"]}
