"""Unit tests for the standalone CLBFT client proxy."""

from repro.clbft.client import RETRANSMIT_TIMER, ClbftClient
from repro.clbft.config import GroupConfig
from repro.clbft.messages import Reply


class ClientJig:
    def __init__(self, n=4):
        self.config = GroupConfig(n=n)
        self.sent = []
        self.timers = {}
        self.results = []
        self.client = ClbftClient(
            name="c",
            config=self.config,
            send_to=lambda i, m: self.sent.append((i, m)),
            set_timer=lambda tag, us: self.timers.__setitem__(tag, us),
            cancel_timer=lambda tag: self.timers.pop(tag, None),
            on_result=lambda ts, r: self.results.append((ts, r)),
        )

    def reply(self, replica, timestamp, result, view=0):
        self.client.on_reply(
            replica,
            Reply(view=view, timestamp=timestamp, client="c",
                  replica=replica, result=result),
        )


class TestInvocation:
    def test_sends_to_primary_first(self):
        jig = ClientJig()
        jig.client.invoke({"op": 1})
        assert [i for i, _ in jig.sent] == [0]

    def test_timestamps_increase(self):
        jig = ClientJig()
        assert jig.client.invoke("a") == 1
        assert jig.client.invoke("b") == 2

    def test_retransmit_goes_to_whole_group(self):
        jig = ClientJig()
        jig.client.invoke("a")
        jig.sent.clear()
        jig.client.on_timer(RETRANSMIT_TIMER)
        assert sorted(i for i, _ in jig.sent) == [0, 1, 2, 3]

    def test_timer_armed_on_invoke(self):
        jig = ClientJig()
        jig.client.invoke("a")
        assert RETRANSMIT_TIMER in jig.timers


class TestWeakCertificate:
    def test_single_reply_insufficient(self):
        jig = ClientJig()
        ts = jig.client.invoke("a")
        jig.reply(0, ts, {"v": 1})
        assert jig.results == []

    def test_f_plus_1_matching_completes(self):
        jig = ClientJig()
        ts = jig.client.invoke("a")
        jig.reply(0, ts, {"v": 1})
        jig.reply(1, ts, {"v": 1})
        assert jig.results == [(ts, {"v": 1})]

    def test_mismatched_replies_do_not_complete(self):
        jig = ClientJig()
        ts = jig.client.invoke("a")
        jig.reply(0, ts, {"v": 1})
        jig.reply(1, ts, {"v": 2})  # a faulty replica lies
        assert jig.results == []
        jig.reply(2, ts, {"v": 1})  # second honest vote
        assert jig.results == [(ts, {"v": 1})]

    def test_duplicate_votes_from_same_replica_ignored(self):
        jig = ClientJig()
        ts = jig.client.invoke("a")
        jig.reply(0, ts, {"v": 1})
        jig.reply(0, ts, {"v": 1})
        assert jig.results == []

    def test_replica_impersonation_rejected(self):
        jig = ClientJig()
        ts = jig.client.invoke("a")
        # src index 2 claims to be replica 1.
        jig.client.on_reply(
            2, Reply(view=0, timestamp=ts, client="c", replica=1,
                     result={"v": 1}),
        )
        jig.reply(0, ts, {"v": 1})
        assert jig.results == []

    def test_timer_cancelled_when_all_done(self):
        jig = ClientJig()
        ts = jig.client.invoke("a")
        jig.reply(0, ts, "r")
        jig.reply(1, ts, "r")
        assert RETRANSMIT_TIMER not in jig.timers

    def test_view_hint_updates_from_replies(self):
        jig = ClientJig()
        ts = jig.client.invoke("a")
        jig.reply(0, ts, "r", view=2)
        jig.reply(1, ts, "r", view=2)
        jig.sent.clear()
        jig.client.invoke("b")
        # New invocation targets view 2's primary (index 2).
        assert [i for i, _ in jig.sent] == [2]

    def test_unreplicated_group_single_reply_suffices(self):
        jig = ClientJig(n=1)
        ts = jig.client.invoke("a")
        jig.reply(0, ts, "done")
        assert jig.results == [(ts, "done")]

    def test_stale_reply_for_completed_call_ignored(self):
        jig = ClientJig()
        ts = jig.client.invoke("a")
        jig.reply(0, ts, "r")
        jig.reply(1, ts, "r")
        jig.reply(2, ts, "r")  # third, after completion
        assert len(jig.results) == 1
