"""Unit tests for the message log and certificate predicates."""

from repro.clbft.config import GroupConfig
from repro.clbft.log import MessageLog, SeqnoEntry
from repro.clbft.messages import Checkpoint, Commit, PrePrepare, Prepare

CONFIG = GroupConfig(n=4)
DIGEST = b"d" * 32


def pre_prepare(view=0, seqno=1, digest=DIGEST):
    return PrePrepare(view=view, seqno=seqno, digest=digest, requests=())


class TestSeqnoEntry:
    def test_not_prepared_without_pre_prepare(self):
        entry = SeqnoEntry()
        for r in (1, 2, 3):
            entry.prepares[r] = Prepare(view=0, seqno=1, digest=DIGEST, replica=r)
        assert not entry.prepared(CONFIG)

    def test_prepared_needs_2f_matching(self):
        entry = SeqnoEntry(pre_prepare=pre_prepare())
        entry.prepares[1] = Prepare(view=0, seqno=1, digest=DIGEST, replica=1)
        assert not entry.prepared(CONFIG)
        entry.prepares[2] = Prepare(view=0, seqno=1, digest=DIGEST, replica=2)
        assert entry.prepared(CONFIG)

    def test_mismatched_digests_do_not_count(self):
        entry = SeqnoEntry(pre_prepare=pre_prepare())
        entry.prepares[1] = Prepare(view=0, seqno=1, digest=b"x" * 32, replica=1)
        entry.prepares[2] = Prepare(view=0, seqno=1, digest=b"y" * 32, replica=2)
        assert not entry.prepared(CONFIG)

    def test_committed_needs_quorum(self):
        entry = SeqnoEntry(pre_prepare=pre_prepare())
        for r in (1, 2):
            entry.prepares[r] = Prepare(view=0, seqno=1, digest=DIGEST, replica=r)
        for r in (0, 1):
            entry.commits[r] = Commit(view=0, seqno=1, digest=DIGEST, replica=r)
        assert not entry.committed_local(CONFIG)
        entry.commits[2] = Commit(view=0, seqno=1, digest=DIGEST, replica=2)
        assert entry.committed_local(CONFIG)

    def test_unreplicated_trivial_certificates(self):
        config1 = GroupConfig(n=1)
        entry = SeqnoEntry(pre_prepare=pre_prepare())
        assert entry.prepared(config1)
        entry.commits[0] = Commit(view=0, seqno=1, digest=DIGEST, replica=0)
        assert entry.committed_local(config1)


class TestWatermarks:
    def test_initial_window(self):
        log = MessageLog(CONFIG)
        assert log.in_window(1)
        assert log.in_window(CONFIG.log_window)
        assert not log.in_window(0)
        assert not log.in_window(CONFIG.log_window + 1)

    def test_window_slides_with_stable_checkpoint(self):
        log = MessageLog(CONFIG)
        for r in range(3):
            log.add_checkpoint(
                Checkpoint(seqno=16, state_digest=b"s" * 32, replica=r)
            )
        assert log.stable_seqno == 16
        assert not log.in_window(16)
        assert log.in_window(17)
        assert log.in_window(16 + CONFIG.log_window)


class TestPreparedProofs:
    def test_highest_view_wins_per_seqno(self):
        log = MessageLog(CONFIG)
        for view in (0, 1):
            entry = log.entry(view, 5)
            entry.pre_prepare = pre_prepare(view=view, seqno=5,
                                            digest=bytes([view]) * 32)
            for r in (1, 2):
                entry.prepares[r] = Prepare(
                    view=view, seqno=5, digest=bytes([view]) * 32, replica=r
                )
        proofs = log.prepared_proofs_above(0)
        assert len(proofs) == 1
        assert proofs[0].pre_prepare.view == 1

    def test_unprepared_entries_excluded(self):
        log = MessageLog(CONFIG)
        entry = log.entry(0, 3)
        entry.pre_prepare = pre_prepare(seqno=3)
        assert log.prepared_proofs_above(0) == []

    def test_below_threshold_excluded(self):
        log = MessageLog(CONFIG)
        entry = log.entry(0, 3)
        entry.pre_prepare = pre_prepare(seqno=3)
        for r in (1, 2):
            entry.prepares[r] = Prepare(view=0, seqno=3, digest=DIGEST, replica=r)
        assert log.prepared_proofs_above(3) == []
        assert len(log.prepared_proofs_above(2)) == 1
