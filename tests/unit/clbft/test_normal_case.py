"""CLBFT normal-case operation: three-phase agreement, batching, dedup."""

import pytest

from repro.clbft.messages import ClientRequest, Commit, PrePrepare, Prepare
from tests.unit.clbft.harness import Group


class TestUnreplicated:
    def test_n1_executes_immediately(self):
        group = Group(1)
        group.submit({"op": "x"})
        assert group.executed_ops(0) == [{"op": "x"}]

    def test_n1_replies(self):
        group = Group(1)
        group.submit({"op": "x"})
        assert len(group.replies[0]) == 1
        assert group.replies[0][0].result == {"executed": {"op": "x"}}


class TestThreePhase:
    def test_all_replicas_execute(self):
        group = Group(4)
        group.submit({"op": "a"})
        group.deliver_all()
        for i in range(4):
            assert group.executed_ops(i) == [{"op": "a"}]

    def test_total_order_consistent(self):
        group = Group(4)
        for k in range(10):
            group.submit({"k": k}, timestamp=k + 1)
        group.deliver_all()
        reference = group.executed_ops(0)
        assert len(reference) == 10
        for i in range(1, 4):
            assert group.executed_ops(i) == reference

    def test_exactly_once_execution(self):
        group = Group(4)
        request = group.submit({"op": "a"})
        group.deliver_all()
        # Resubmit the identical request (client retransmission).
        for replica in group.replicas:
            replica.submit(request)
        group.deliver_all()
        for i in range(4):
            assert group.executed_ops(i) == [{"op": "a"}]

    def test_message_flow_contains_all_phases(self):
        group = Group(4)
        group.submit({"op": "a"})
        group.deliver_all()
        kinds = {type(m).__name__ for _, _, m in group.bus.log}
        assert {"PrePrepare", "Prepare", "Commit"} <= kinds

    def test_replies_sent_by_every_replica(self):
        group = Group(4)
        group.submit({"op": "a"})
        group.deliver_all()
        for i in range(4):
            assert len(group.replies[i]) == 1

    def test_larger_groups(self):
        for n in (7, 10):
            group = Group(n)
            group.submit({"op": "a"})
            group.deliver_all()
            for i in range(n):
                assert group.executed_ops(i) == [{"op": "a"}]


class TestBatching:
    def test_primary_batches_pending_requests(self):
        group = Group(4, batch_size=8)
        # Submit to backups only first so the primary receives them in one
        # burst via its own submission later.
        for k in range(8):
            group.submit({"k": k}, timestamp=k + 1)
        group.deliver_all()
        pre_prepares = [
            m for _, _, m in group.bus.log if isinstance(m, PrePrepare)
        ]
        # All 8 requests fit in few pre-prepares (batching happened).
        assert len({p.seqno for p in pre_prepares}) <= 8
        assert sum(len(p.requests) for p in pre_prepares if p.view == 0) >= 8

    def test_batch_size_one(self):
        group = Group(4, batch_size=1)
        for k in range(3):
            group.submit({"k": k}, timestamp=k + 1)
        group.deliver_all()
        assert len(group.executed_ops(0)) == 3


class TestByzantineInputRejection:
    def test_pre_prepare_from_non_primary_ignored(self):
        group = Group(4)
        fake = PrePrepare(view=0, seqno=1, digest=b"x" * 32, requests=())
        group.replicas[1].on_message(2, fake)  # replica 2 is not primary
        group.deliver_all()
        assert group.executed_ops(1) == []

    def test_pre_prepare_with_wrong_digest_ignored(self):
        group = Group(4)
        request = ClientRequest(client="c", timestamp=1, op={"op": "evil"})
        fake = PrePrepare(
            view=0, seqno=1, digest=b"y" * 32, requests=(request,)
        )
        group.replicas[1].on_message(0, fake)
        group.deliver_all()
        assert group.executed_ops(1) == []

    def test_prepare_claiming_wrong_replica_ignored(self):
        group = Group(4)
        group.submit({"op": "a"})
        forged = Prepare(view=0, seqno=1, digest=b"z" * 32, replica=3)
        group.replicas[1].on_message(2, forged)  # src 2 claims to be 3
        group.deliver_all()
        entry = group.replicas[1].log.entry_if_exists(0, 1)
        assert entry is None or 3 not in {
            p.replica
            for p in entry.prepares.values()
            if p.digest == b"z" * 32
        }

    def test_commit_for_future_view_ignored(self):
        group = Group(4)
        forged = Commit(view=5, seqno=1, digest=b"x" * 32, replica=2)
        group.replicas[1].on_message(2, forged)
        assert group.replicas[1].log.entry_if_exists(5, 1) is None

    def test_out_of_window_seqno_ignored(self):
        group = Group(4, log_window=16)
        request = ClientRequest(client="c", timestamp=1, op="x")
        from repro.clbft.replica import batch_digest

        far = PrePrepare(
            view=0, seqno=999, digest=batch_digest((request,)),
            requests=(request,),
        )
        group.replicas[1].on_message(0, far)
        assert group.replicas[1].log.entry_if_exists(0, 999) is None


class TestEquivocation:
    def test_conflicting_pre_prepare_keeps_first(self):
        group = Group(4)
        from repro.clbft.replica import batch_digest

        r1 = ClientRequest(client="c", timestamp=1, op="one")
        r2 = ClientRequest(client="c", timestamp=2, op="two")
        pp1 = PrePrepare(view=0, seqno=1, digest=batch_digest((r1,)),
                         requests=(r1,))
        pp2 = PrePrepare(view=0, seqno=1, digest=batch_digest((r2,)),
                         requests=(r2,))
        backup = group.replicas[1]
        backup.on_message(0, pp1)
        backup.on_message(0, pp2)
        entry = backup.log.entry_if_exists(0, 1)
        assert entry.pre_prepare.digest == batch_digest((r1,))
