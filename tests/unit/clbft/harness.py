"""In-memory CLBFT test harness: a group of replicas with a controllable
message bus (no simulator, no crypto) for precise protocol-level tests."""

from __future__ import annotations

from typing import Any, Callable

from repro.clbft.config import GroupConfig
from repro.clbft.messages import ClientRequest, Reply
from repro.clbft.replica import ClbftReplica


class Bus:
    """Deterministic message bus with optional drop/capture rules."""

    def __init__(self) -> None:
        self.queue: list[tuple[int, int, Any]] = []  # (src, dst, msg)
        self.drop: Callable[[int, int, Any], bool] = lambda s, d, m: False
        self.log: list[tuple[int, int, Any]] = []

    def post(self, src: int, dst: int, msg: Any) -> None:
        self.log.append((src, dst, msg))
        if not self.drop(src, dst, msg):
            self.queue.append((src, dst, msg))


class Timers:
    """Manual timers: tests fire them explicitly."""

    def __init__(self) -> None:
        self.armed: dict[tuple[int, str], int] = {}

    def binder(self, index: int):
        def set_timer(tag: str, delay_us: int) -> None:
            self.armed[(index, tag)] = delay_us

        def cancel_timer(tag: str) -> None:
            self.armed.pop((index, tag), None)

        return set_timer, cancel_timer

    def is_armed(self, index: int, tag: str) -> bool:
        return (index, tag) in self.armed


class Group:
    """n CLBFT replicas over a Bus, executing an append log."""

    def __init__(self, n: int, **config_overrides) -> None:
        defaults = dict(view_change_timeout_us=1_000)
        defaults.update(config_overrides)
        self.config = GroupConfig(n=n, **defaults)
        self.bus = Bus()
        self.timers = Timers()
        self.executed: list[list[tuple[int, Any]]] = [[] for _ in range(n)]
        self.replies: list[list[Reply]] = [[] for _ in range(n)]
        self.replicas: list[ClbftReplica] = []
        for i in range(n):
            set_timer, cancel_timer = self.timers.binder(i)
            self.replicas.append(
                ClbftReplica(
                    config=self.config,
                    index=i,
                    execute=self._executor(i),
                    multicast=self._multicaster(i),
                    send_to=self._sender(i),
                    set_timer=set_timer,
                    cancel_timer=cancel_timer,
                    send_reply=self._replier(i),
                )
            )

    def _executor(self, i: int):
        def execute(seqno: int, request: ClientRequest):
            self.executed[i].append((seqno, request.op))
            return {"executed": request.op}

        return execute

    def _multicaster(self, i: int):
        def multicast(msg: Any) -> None:
            for j in range(self.config.n):
                if j != i:
                    self.bus.post(i, j, msg)

        return multicast

    def _sender(self, i: int):
        def send_to(j: int, msg: Any) -> None:
            if j == i:
                self.replicas[i].on_message(i, msg)
            else:
                self.bus.post(i, j, msg)

        return send_to

    def _replier(self, i: int):
        def send_reply(client: str, reply: Reply) -> None:
            self.replies[i].append(reply)

        return send_reply

    # -- driving ---------------------------------------------------------

    def deliver_all(self, max_rounds: int = 10_000) -> None:
        rounds = 0
        while self.bus.queue and rounds < max_rounds:
            src, dst, msg = self.bus.queue.pop(0)
            self.replicas[dst].on_message(src, msg)
            rounds += 1

    def submit(self, op: Any, client: str = "client", timestamp: int = 1,
               to: list[int] | None = None) -> ClientRequest:
        request = ClientRequest(client=client, timestamp=timestamp, op=op)
        targets = to if to is not None else list(range(self.config.n))
        for i in targets:
            self.replicas[i].submit(request)
        return request

    def fire_timer(self, index: int, tag: str = "clbft-view-change") -> None:
        if self.timers.is_armed(index, tag):
            self.timers.armed.pop((index, tag))
            self.replicas[index].on_timer(tag)

    def executed_ops(self, index: int) -> list[Any]:
        return [op for _, op in self.executed[index]]
