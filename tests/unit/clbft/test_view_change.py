"""CLBFT view changes: liveness under a faulty primary."""

from repro.clbft.replica import VIEW_CHANGE_TIMER
from tests.unit.clbft.harness import Group


def silence_primary(group: Group, primary: int = 0) -> None:
    """The primary's outgoing messages vanish (mute-primary fault)."""
    group.bus.drop = lambda src, dst, msg: src == primary


class TestViewChange:
    def test_mute_primary_triggers_view_change_and_executes(self):
        group = Group(4)
        silence_primary(group)
        group.submit({"op": "a"})
        group.deliver_all()
        # No progress: backups' view-change timers fire.
        assert all(group.executed_ops(i) == [] for i in range(1, 4))
        for i in range(1, 4):
            group.fire_timer(i)
        group.deliver_all()
        # View 1's primary is replica 1; the request must now execute on
        # all correct replicas.
        for i in range(1, 4):
            assert group.executed_ops(i) == [{"op": "a"}], f"replica {i}"
            assert group.replicas[i].view == 1

    def test_view_change_preserves_executed_requests(self):
        group = Group(4)
        group.submit({"op": "first"}, timestamp=1)
        group.deliver_all()
        silence_primary(group)
        group.submit({"op": "second"}, timestamp=2)
        group.deliver_all()
        for i in range(1, 4):
            group.fire_timer(i)
        group.deliver_all()
        for i in range(1, 4):
            assert group.executed_ops(i) == [{"op": "first"}, {"op": "second"}]

    def test_no_request_reexecution_across_views(self):
        group = Group(4)
        silence_primary(group)
        group.submit({"op": "a"})
        group.deliver_all()
        for i in range(1, 4):
            group.fire_timer(i)
        group.deliver_all()
        counts = [group.executed_ops(i).count({"op": "a"}) for i in range(1, 4)]
        assert counts == [1, 1, 1]

    def test_successive_view_changes(self):
        group = Group(7)
        # Both view-0 and view-1 primaries are mute.
        group.bus.drop = lambda src, dst, msg: src in (0, 1)
        group.submit({"op": "a"})
        group.deliver_all()
        for i in range(2, 7):
            group.fire_timer(i)
        group.deliver_all()
        # View 1's primary (replica 1) is also mute; timers fire again.
        for i in range(2, 7):
            group.fire_timer(i)
        group.deliver_all()
        for i in range(2, 7):
            assert group.executed_ops(i) == [{"op": "a"}], f"replica {i}"
            assert group.replicas[i].view == 2

    def test_join_rule_pulls_lagging_replica(self):
        group = Group(4)
        silence_primary(group)
        group.submit({"op": "a"})
        group.deliver_all()
        # Only two backups time out; the third must join via f+1 rule.
        group.fire_timer(1)
        group.fire_timer(2)
        group.deliver_all()
        assert group.replicas[3].view == 1
        for i in range(1, 4):
            assert group.executed_ops(i) == [{"op": "a"}]

    def test_timer_armed_while_pending(self):
        group = Group(4)
        silence_primary(group)
        group.submit({"op": "a"})
        group.deliver_all()
        for i in range(1, 4):
            assert group.timers.is_armed(i, VIEW_CHANGE_TIMER)

    def test_timer_cancelled_after_execution(self):
        group = Group(4)
        group.submit({"op": "a"})
        group.deliver_all()
        for i in range(4):
            assert not group.timers.is_armed(i, VIEW_CHANGE_TIMER)

    def test_view_change_counter(self):
        group = Group(4)
        silence_primary(group)
        group.submit({"op": "a"})
        group.deliver_all()
        for i in range(1, 4):
            group.fire_timer(i)
        group.deliver_all()
        assert all(
            group.replicas[i].view_changes_completed >= 1 for i in range(1, 4)
        )


class TestNewViewValidation:
    def test_new_view_from_wrong_primary_ignored(self):
        from repro.clbft.messages import NewView

        group = Group(4)
        fake = NewView(view=1, view_changes=(), pre_prepares=())
        group.replicas[2].on_message(3, fake)  # view 1 primary is 1, not 3
        assert group.replicas[2].view == 0

    def test_new_view_without_quorum_ignored(self):
        from repro.clbft.messages import NewView, ViewChange

        group = Group(4)
        lone_vote = ViewChange(
            new_view=1, stable_seqno=0, checkpoint_proof=(),
            prepared=(), replica=2,
        )
        fake = NewView(view=1, view_changes=(lone_vote,), pre_prepares=())
        group.replicas[2].on_message(1, fake)
        assert group.replicas[2].view == 0
