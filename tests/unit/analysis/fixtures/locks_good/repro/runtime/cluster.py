"""Fixture: LOCK001 negatives — every discipline the checker accepts.

Same ``runtime/cluster.py`` module key as the bad twin, zero findings:
writes under ``with self._lock:``, thread-safe containers (queue.Queue,
detected through AnnAssign ctor typing), a lambda-wrapped thread target,
a ``guarded-by`` annotation, and a class with no thread entries at all.
"""

import queue
import threading


class DisciplinedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.pending = {}
        self.total = 0
        self.inbox: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=lambda: self._run(), daemon=True
        )

    def _run(self):
        while True:
            item = self.inbox.get()
            with self._lock:
                self.pending[item] = True
                self.total += 1

    def submit(self, key):
        self.inbox.put(key)  # queue.Queue serialises internally
        with self._lock:
            self.pending[key] = False

    def bootstrap_reset(self):
        # analysis: guarded-by(single-threaded setup phase)
        self.total = 0


class MainOnly:
    """No Thread(target=...) anywhere: single context, never flagged."""

    def __init__(self):
        self.items = []

    def push(self, x):
        self.items.append(x)
