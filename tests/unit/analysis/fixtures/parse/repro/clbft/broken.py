"""Fixture: unparseable file — the engine must report PARSE000, not crash."""

def half_open(:
