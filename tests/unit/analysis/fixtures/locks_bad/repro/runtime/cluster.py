"""Fixture: LOCK001 positives — a class whose thread races its callers.

The ``.../locks_bad/repro/runtime/cluster.py`` shape maps this file onto
the ``runtime/cluster.py`` module key, which is in the lock checker's
scope. ``submit`` runs on caller threads while ``_run`` is a spawned
thread target; ``pending`` and ``total`` are written from both contexts.
"""

import threading


class RacyCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.pending = {}
        self.total = 0
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while True:
            if self.pending:
                key, value = self.pending.popitem()  # expect: LOCK001
                self.total += value  # expect: LOCK001

    def submit(self, key, value):
        self.pending[key] = value  # expect: LOCK001
        with self._lock:
            self.total += value  # guarded: the lock dominates this write
