"""Fixture: the sanctioned DET006 suppression at the substrate boundary.

The ``repro/runtime/aio.py`` path puts this file in the determinism
scope (the real asyncio substrate joined it alongside the protocol
modules). The cluster that *implements* the env timer seam is the one
place allowed to grab the running loop — with a documented allow()
suppression — because it is what translates ``loop.time()`` into
``env.now_us()`` for everything above it. The engine must report zero
findings here.
"""

import asyncio


class Cluster:
    def __init__(self):
        self._loop = None
        self._epoch = 0.0

    def bind_running_loop(self):
        loop = asyncio.get_running_loop()  # analysis: allow(DET006) -- substrate boundary: the cluster adapts the loop clock to env.now_us
        self._loop = loop
        self._epoch = loop.time()

    def now_us(self):
        if self._loop is None:
            return 0
        return int((self._loop.time() - self._epoch) * 1_000_000)
