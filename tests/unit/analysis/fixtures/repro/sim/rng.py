"""Fixture: the RNG wrapper module is exempt from DET002 by name."""

import random


def make_stream(seed):
    return random.Random(seed)
