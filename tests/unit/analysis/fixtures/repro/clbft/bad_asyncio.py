"""Fixture: DET006 — bare asyncio sleeps and loop-clock reads.

Parsed (never imported) by the rule-engine tests; the ``repro/clbft``
directory shape puts it in the determinism family's scope. Protocol
code awaiting ``asyncio.sleep`` or reading the event-loop clock
bypasses the env timer seam, so timeouts neither replay under the sim
nor fire at all off the asyncio substrate.
"""

import asyncio
from asyncio import sleep


async def drip_backoff():
    await asyncio.sleep(0.05)  # expect: DET006


async def from_import_sleep():
    await sleep(0.01)  # expect: DET006


def host_deadline_us():
    return asyncio.get_event_loop().time() * 1e6  # expect: DET006


async def grab_loop_for_call_later(fire):
    loop = asyncio.get_running_loop()  # expect: DET006
    loop.call_later(0.5, fire)
