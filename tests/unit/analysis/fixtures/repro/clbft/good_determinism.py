"""Fixture: determinism-clean protocol code plus sanctioned suppressions."""

import datetime
import time

_UTC_EPOCH = datetime.datetime(1970, 1, 1, tzinfo=datetime.timezone.utc)


def virtual_now(env):
    return env.now_us()  # the sanctioned clock


def agreed_datetime(millis):
    return _UTC_EPOCH + datetime.timedelta(milliseconds=millis)


def stable_order(xs):
    return sorted(set(xs))  # sorted() launders set order


def membership(xs, x):
    return x in set(xs)  # membership tests are order-free


def diagnostics_stamp():
    # analysis: allow(DET001) — log decoration only, never on the wire
    return time.time()


def trailing_suppression():
    return time.time()  # analysis: allow(DET001) — test fixture
