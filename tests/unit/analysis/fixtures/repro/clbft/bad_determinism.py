"""Fixture: every determinism rule should fire in this file.

Parsed (never imported) by the rule-engine tests; the ``repro/clbft``
directory shape puts it in the determinism family's scope. Trailing
``# expect: RULE[, RULE]`` markers name the violations the engine must
report on that line — the tests read them back.
"""

import datetime
import random
import time as clock
from random import randint


def wall_clock_now():
    return clock.time()  # expect: DET001


def wall_clock_datetime():
    return datetime.datetime.now()  # expect: DET001


def ambient_random():
    return random.random()  # expect: DET002


def ambient_from_import():
    return randint(0, 10)  # expect: DET002


def iterate_set_call(xs):
    for x in set(xs):  # expect: DET003
        yield x


def iterate_set_literal():
    return [x for x in {1, 2, 3}]  # expect: DET003


def materialise_set(xs):
    return list(set(xs))  # expect: DET003


CACHE = {}


def remember(msg):
    CACHE[id(msg)] = msg  # expect: DET004


def recall(msg):
    return CACHE.get(id(msg))  # expect: DET004


def agreed_datetime(millis):
    return datetime.datetime.fromtimestamp(millis / 1000.0)  # expect: DET005
