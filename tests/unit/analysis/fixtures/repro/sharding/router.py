"""Fixture: the routing tier itself is allowlisted for SHARD001.

``repro/sharding`` is where rings and routers are built and placement
is decided; the same calls that fire in protocol code are clean here.
The package is also inside the determinism scope, so this fixture must
stay free of clocks and ambient randomness.
"""

from repro.sharding import HashRing, Router, build_router


def ring_for(groups):
    return HashRing(groups, vnodes=8)


def router_for(spec):
    router = build_router(spec)
    if router is None:
        router = Router(spec)
    return router


def placement(router, service, client):
    return router.group_for_service(service), router.home_group_for(client)
