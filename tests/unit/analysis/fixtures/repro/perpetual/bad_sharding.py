"""Fixture: the sharding contract fires outside the routing tier.

``repro/perpetual`` is protocol code, so building rings/routers or
asking one where a service lives is exactly what SHARD001 exists to
catch — placement decisions belong to the scenario layer.
"""

from repro.sharding import HashRing, Router, build_router


def hand_rolled_ring(groups):
    return HashRing(groups)  # expect: SHARD001


def local_router(spec):
    return Router(spec)  # expect: SHARD001


def maybe_router(spec):
    return build_router(spec)  # expect: SHARD001


def peer_group(router, target):
    return router.group_for_service(target)  # expect: SHARD001


def my_group(router, client):
    return router.home_group_for(client)  # expect: SHARD001


def sanctioned(router, home_group, target):
    # The injected handle is the one legal way to cross a group
    # boundary — no marker: ``forward`` must stay unflagged.
    return router.forward(home_group, target)
