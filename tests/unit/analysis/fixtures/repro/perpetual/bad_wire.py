"""Fixture: wire-contract rules fire outside the allowlisted layer.

``repro/perpetual`` is protocol code, so direct codec/digest calls and
hand-built envelopes are exactly what WIRE001-003 exist to catch.
"""

from repro.common.encoding import decode_message, encode_message
from repro.crypto.digest import digest, digest_hex
from repro.transport.wire import WireEnvelope


def frame(msg):
    return encode_message(msg)  # expect: WIRE001


def unframe(payload):
    return decode_message(payload)  # expect: WIRE001


def proof_digest(payload):
    return digest(payload)  # expect: WIRE002


def match_key(reply):
    return digest_hex(("reply", reply))  # expect: WIRE002


def forge(sender, payload):
    return WireEnvelope(sender, payload, b"")  # expect: WIRE003
