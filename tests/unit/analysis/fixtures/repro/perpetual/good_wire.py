"""Fixture: sanctioned wire usage in protocol code — zero findings.

Covers the three negatives the wire family promises: codecs injected as
parameters (not called), the memoized WireBlob path, and documented
suppressions. A local helper named ``digest`` also checks that WIRE002
only tracks names imported from repro.crypto.digest.
"""

from repro.common.encoding import encode_message, wire_blob
from repro.crypto.digest import digest_hex


def send(channel, dsts, msg):
    # Passing the codec as a parameter hands it to the channel: sanctioned.
    channel.multicast_to(dsts, msg, encode=encode_message)


def blob_digest(msg):
    return wire_blob(msg).digest  # the digest-once path


def digest(state):  # an unrelated local helper, not the crypto digest
    return sum(state)


def local_helper(state):
    return digest(state)  # resolves to the helper above: not flagged


def suppressed_key(reply):
    # analysis: allow(WIRE002) — fixture: memoized upstream, documented
    return digest_hex(("reply", reply))
