"""Fixture: the wire layer itself may use every flagged construct.

``transport/channel.py`` is on all three wire allowlists, so the same
calls that light up ``perpetual/bad_wire.py`` produce zero findings here.
"""

from repro.common.encoding import encode_message
from repro.crypto.digest import digest
from repro.transport.wire import WireEnvelope


def sign_and_frame(sender, msg):
    payload = encode_message(msg)
    return WireEnvelope(sender, payload, digest(payload))
