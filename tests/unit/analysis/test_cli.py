"""CLI contract: exit codes, text format, JSON schema, rule catalog."""

import json
from pathlib import Path

from repro.analysis import RULES
from repro.analysis.engine import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_clean_tree_exits_zero(capsys):
    good = FIXTURES / "repro" / "transport"
    assert main([str(good)]) == 0
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "0 violation(s) in 1 file(s)" in captured.err


def test_dirty_tree_exits_nonzero_with_file_line_rule(capsys):
    bad = FIXTURES / "repro" / "clbft" / "bad_determinism.py"
    assert main([str(bad)]) == 1
    captured = capsys.readouterr()
    lines = captured.out.splitlines()
    assert lines, "expected findings on stdout"
    # `path:line:col: RULE message` per line, sorted by location.
    for line in lines:
        path, lineno, col, rest = line.split(":", 3)
        assert path.endswith("bad_determinism.py")
        assert int(lineno) > 0 and int(col) >= 0
        assert rest.strip().split()[0].startswith(("DET", "WIRE", "LOCK", "PARSE"))


def test_json_format_schema(capsys):
    bad = FIXTURES / "repro" / "perpetual" / "bad_wire.py"
    assert main(["--format", "json", str(bad)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 1
    assert doc["files_checked"] == 1
    assert {r["id"] for r in doc["rules"]} == {rule.id for rule in RULES}
    for entry in doc["rules"]:
        assert set(entry) == {"id", "title", "rationale"}
    assert doc["violations"], "expected violations in the document"
    for violation in doc["violations"]:
        assert set(violation) == {"path", "line", "col", "rule", "message"}
    assert doc["violations"] == sorted(
        doc["violations"], key=lambda v: (v["path"], v["line"], v["col"])
    )


def test_rules_catalog_lists_every_rule(capsys):
    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule.id in out
        assert rule.title in out
