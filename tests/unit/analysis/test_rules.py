"""Rule-engine tests: every rule family against its fixture twins.

Positive fixtures carry trailing ``# expect: RULE[, RULE]`` markers; the
tests read those back and require the engine to report *exactly* that
set of ``(rule, line)`` findings — no misses, no extras. Negative
fixtures (sanctioned idioms, allowlisted modules, suppressions) must
produce zero findings.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.core import SourceFile, module_key
from repro.analysis.engine import PARSE_RULE, check_file, check_paths

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9,\s]+?)\s*$")


def expected_findings(path: Path) -> set[tuple[str, int]]:
    """The ``(rule, line)`` pairs the fixture's expect markers declare."""
    out: set[tuple[str, int]] = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for rule_id in match.group(1).split(","):
                out.add((rule_id.strip(), lineno))
    return out


def reported_findings(path: Path) -> set[tuple[str, int]]:
    return {(v.rule, v.line) for v in check_file(path)}


# -- positive fixtures: exactly the marked findings --------------------------

BAD_FIXTURES = [
    FIXTURES / "repro" / "clbft" / "bad_determinism.py",
    FIXTURES / "repro" / "clbft" / "bad_asyncio.py",
    FIXTURES / "repro" / "perpetual" / "bad_wire.py",
    FIXTURES / "repro" / "perpetual" / "bad_sharding.py",
    FIXTURES / "locks_bad" / "repro" / "runtime" / "cluster.py",
]


@pytest.mark.parametrize("path", BAD_FIXTURES, ids=lambda p: p.stem)
def test_bad_fixture_reports_exactly_the_marked_violations(path):
    expected = expected_findings(path)
    assert expected, f"fixture {path} has no expect markers"
    assert reported_findings(path) == expected


def test_every_rule_family_has_a_positive_case():
    rules_hit = {rule for p in BAD_FIXTURES for rule, _ in expected_findings(p)}
    for family_rule in ("DET001", "DET002", "DET003", "DET004", "DET005",
                        "DET006", "WIRE001", "WIRE002", "WIRE003", "LOCK001",
                        "SHARD001"):
        assert family_rule in rules_hit


# -- negative fixtures: zero findings ----------------------------------------

GOOD_FIXTURES = [
    FIXTURES / "repro" / "clbft" / "good_determinism.py",
    FIXTURES / "repro" / "runtime" / "aio.py",
    FIXTURES / "repro" / "sim" / "rng.py",
    FIXTURES / "repro" / "perpetual" / "good_wire.py",
    FIXTURES / "repro" / "transport" / "channel.py",
    FIXTURES / "repro" / "sharding" / "router.py",
    FIXTURES / "locks_good" / "repro" / "runtime" / "cluster.py",
]


@pytest.mark.parametrize("path", GOOD_FIXTURES, ids=lambda p: p.parent.name + "-" + p.stem)
def test_good_fixture_is_clean(path):
    assert check_file(path) == []


# -- engine behaviours --------------------------------------------------------


def test_unparseable_file_reports_parse_rule():
    findings = check_file(FIXTURES / "parse" / "repro" / "clbft" / "broken.py")
    assert [v.rule for v in findings] == [PARSE_RULE]
    assert findings[0].line > 0


def test_check_paths_aggregates_and_counts_files():
    findings, files_checked = check_paths([str(FIXTURES / "repro")])
    # Everything under fixtures/repro: the bad files' markers, and
    # nothing from the good files.
    expected = (
        expected_findings(BAD_FIXTURES[0])
        | expected_findings(BAD_FIXTURES[1])
        | expected_findings(BAD_FIXTURES[2])
        | expected_findings(BAD_FIXTURES[3])
    )
    assert {(v.rule, v.line) for v in findings} == expected
    assert files_checked == len(list((FIXTURES / "repro").rglob("*.py")))


def test_module_key_scopes_fixture_trees_like_src():
    assert module_key("src/repro/clbft/replica.py") == "clbft/replica.py"
    assert (
        module_key("tests/unit/analysis/fixtures/locks_bad/repro/runtime/cluster.py")
        == "runtime/cluster.py"
    )
    assert module_key("scripts/standalone.py") == "standalone.py"


def test_suppression_covers_multiline_node_spans():
    text = (
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time(  # analysis: allow(DET001) -- fixture\n"
        "    )\n"
    )
    src = SourceFile("src/repro/clbft/multiline.py", text)
    import ast

    call = next(n for n in ast.walk(src.tree) if isinstance(n, ast.Call))
    assert src.is_suppressed("DET001", call)
    assert not src.is_suppressed("DET002", call)


def test_standalone_suppression_attaches_to_next_code_line():
    text = (
        "import time\n"
        "\n"
        "def stamp():\n"
        "    # analysis: allow(DET001) -- reason\n"
        "    return time.time()\n"
    )
    src = SourceFile("src/repro/clbft/standalone.py", text)
    assert src.allows[5] == frozenset({"DET001"})


def test_guard_annotation_read_back():
    text = (
        "class C:\n"
        "    def reset(self):\n"
        "        # analysis: guarded-by(setup phase)\n"
        "        self.total = 0\n"
    )
    src = SourceFile("src/repro/runtime/cluster.py", text)
    import ast

    assign = next(n for n in ast.walk(src.tree) if isinstance(n, ast.Assign))
    assert src.guard_annotation(assign) == "setup phase"
