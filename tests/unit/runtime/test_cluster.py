"""Unit tests for the threaded cluster primitives."""

import threading
import time

import pytest

from repro.runtime.cluster import ThreadedCluster
from repro.sim.kernel import ProtocolNode


class Collector(ProtocolNode):
    def __init__(self):
        self.messages = []
        self.timers = []
        self.lock = threading.Lock()

    def on_message(self, src, msg):
        with self.lock:
            self.messages.append((str(src), msg))

    def on_timer(self, tag):
        with self.lock:
            self.timers.append(tag)


@pytest.fixture
def cluster():
    c = ThreadedCluster()
    yield c
    c.shutdown()


def wait_for(predicate, timeout_s=5.0):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestMessaging:
    def test_delivery(self, cluster):
        a, b = Collector(), Collector()
        env_a = cluster.add_node("a", a)
        cluster.add_node("b", b)
        cluster.start()
        env_a.send("b", "hello")
        assert wait_for(lambda: b.messages == [("a", "hello")])

    def test_local_deliver(self, cluster):
        a, b = Collector(), Collector()
        env_a = cluster.add_node("a", a)
        cluster.add_node("b", b)
        cluster.start()
        env_a.local_deliver("b", {"x": 1})
        assert wait_for(lambda: len(b.messages) == 1)

    def test_unknown_destination_harmless(self, cluster):
        a = Collector()
        env_a = cluster.add_node("a", a)
        cluster.start()
        env_a.send("ghost", "x")  # must not raise

    def test_dropped_node_isolated(self, cluster):
        a, b = Collector(), Collector()
        env_a = cluster.add_node("a", a)
        env_b = cluster.add_node("b", b)
        cluster.start()
        cluster.drop_node("b")
        env_a.send("b", "never")
        env_b.send("a", "never")
        time.sleep(0.1)
        assert b.messages == []
        assert a.messages == []

    def test_handler_exception_recorded_not_fatal(self, cluster):
        class Exploding(ProtocolNode):
            def on_message(self, src, msg):
                raise RuntimeError("bang")

            def on_timer(self, tag):
                pass

        node = Exploding()
        cluster.add_node("x", node)
        ok = Collector()
        cluster.add_node("ok", ok)
        env = cluster.add_node("driver", Collector())
        cluster.start()
        env.send("x", 1)
        env.send("ok", 2)
        assert wait_for(lambda: len(ok.messages) == 1)
        assert wait_for(lambda: len(cluster.errors()) == 1)


class TestTimers:
    def test_timer_fires(self, cluster):
        a = Collector()
        env = cluster.add_node("a", a)
        cluster.start()
        env.set_timer("t", 20_000)
        assert wait_for(lambda: a.timers == ["t"])

    def test_cancel(self, cluster):
        a = Collector()
        env = cluster.add_node("a", a)
        cluster.start()
        env.set_timer("t", 50_000)
        env.cancel_timer("t")
        time.sleep(0.12)
        assert a.timers == []

    def test_rearm_replaces(self, cluster):
        a = Collector()
        env = cluster.add_node("a", a)
        cluster.start()
        env.set_timer("t", 500_000)
        env.set_timer("t", 10_000)
        assert wait_for(lambda: a.timers == ["t"], timeout_s=0.4)


class TestQuiescence:
    def test_await_quiescent(self, cluster):
        a, b = Collector(), Collector()
        env_a = cluster.add_node("a", a)
        cluster.add_node("b", b)
        cluster.start()
        for i in range(20):
            env_a.send("b", i)
        assert cluster.await_quiescent(timeout_s=5.0)
        assert len(b.messages) == 20

    def test_clock_monotone(self, cluster):
        env = cluster.add_node("a", Collector())
        t1 = env.now_us()
        time.sleep(0.02)
        assert env.now_us() > t1
        assert env.now_ms() >= 0
