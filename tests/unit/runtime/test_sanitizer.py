"""Guard-proxy semantics: the dynamic half of the lock-discipline story."""

import threading

import pytest

from repro.runtime.sanitizer import (
    LockDisciplineError,
    guarded_dict,
    guarded_list,
    guarded_set,
)


def test_lock_held_guard_rejects_unheld_mutation():
    cv = threading.Condition()
    entries = guarded_dict("entries", cv)
    with pytest.raises(LockDisciplineError, match="entries.__setitem__"):
        entries["k"] = 1
    assert entries == {}


def test_lock_held_guard_accepts_held_mutation():
    cv = threading.Condition()
    entries = guarded_dict("entries", cv)
    with cv:
        entries["k"] = 1
        entries.setdefault("j", 2)
        del entries["j"]
        assert entries.pop("k") == 1


def test_plain_lock_degrades_to_held_by_someone():
    lock = threading.Lock()
    items = guarded_set("items", lock)
    with pytest.raises(LockDisciplineError):
        items.add(1)
    with lock:
        items.add(1)
    assert items == {1}


def test_reads_and_iteration_never_assert():
    cv = threading.Condition()
    entries = guarded_dict("entries", cv)
    with cv:
        entries.update({"a": 1, "b": 2})
    # All of these run without holding the lock: reads pass through.
    assert entries["a"] == 1
    assert "b" in entries
    assert sorted(entries) == ["a", "b"]
    assert entries.get("c") is None
    assert len(entries) == 2


def test_single_writer_guard_claims_first_mutator():
    log = guarded_list("log")
    log.append("mine")  # this thread claims ownership
    raised = []

    def intruder():
        try:
            log.append("theirs")
        except LockDisciplineError as exc:
            raised.append(exc)

    thread = threading.Thread(target=intruder)
    thread.start()
    thread.join()
    assert len(raised) == 1
    assert "log.append" in str(raised[0])
    assert log == ["mine"]


def test_single_writer_guard_allows_repeated_owner_mutation():
    dropped = guarded_set("dropped")
    dropped.add("a")
    dropped.add("b")
    dropped.discard("a")
    assert dropped == {"b"}


def test_violation_is_an_assertion_error():
    # Under the threaded substrate a violation lands in the node worker's
    # error list and fails the run, like any handler assertion.
    assert issubclass(LockDisciplineError, AssertionError)


def test_guarded_containers_behave_like_builtins():
    cv = threading.Condition()
    entries = guarded_dict("entries", cv)
    with cv:
        entries["k"] = [1]
    assert isinstance(entries, dict)
    assert dict(entries) == {"k": [1]}
    items = guarded_list("items")
    items.extend([3, 1, 2])
    items.sort()
    assert items == [1, 2, 3]
