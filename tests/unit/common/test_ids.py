"""Unit tests for typed identifiers."""

import pytest

from repro.common.ids import (
    MessageId,
    NodeId,
    ReplicaId,
    RequestId,
    RequestIdAllocator,
    ServiceId,
    driver,
    voter,
)


class TestServiceId:
    def test_equality_and_hash(self):
        assert ServiceId("bank") == ServiceId("bank")
        assert hash(ServiceId("bank")) == hash(ServiceId("bank"))
        assert ServiceId("bank") != ServiceId("pge")

    def test_ordering(self):
        assert ServiceId("a") < ServiceId("b")

    def test_str(self):
        assert str(ServiceId("bank")) == "bank"


class TestNodeId:
    def test_roles(self):
        v = voter("pge", 2)
        d = driver("pge", 2)
        assert v.role == NodeId.VOTER
        assert d.role == NodeId.DRIVER
        assert v.replica == d.replica

    def test_invalid_role_rejected(self):
        with pytest.raises(ValueError):
            NodeId(ReplicaId(ServiceId("s"), 0), "observer")

    def test_peer_is_involution(self):
        v = voter("s", 1)
        assert v.peer().role == NodeId.DRIVER
        assert v.peer().peer() == v

    def test_str_forms(self):
        assert str(voter("bank", 0)) == "bank[0]/voter"
        assert str(driver("bank", 3)) == "bank[3]/driver"

    def test_accessors(self):
        v = voter("bank", 1)
        assert v.service == ServiceId("bank")
        assert v.index == 1


class TestRequestId:
    def test_ordering_by_origin_then_seqno(self):
        a = RequestId(ServiceId("a"), 5)
        b = RequestId(ServiceId("a"), 6)
        c = RequestId(ServiceId("b"), 0)
        assert a < b < c

    def test_str(self):
        assert str(RequestId(ServiceId("store"), 7)) == "store#7"


class TestRequestIdAllocator:
    def test_sequential_and_deterministic(self):
        alloc1 = RequestIdAllocator(ServiceId("s"), start=1)
        alloc2 = RequestIdAllocator(ServiceId("s"), start=1)
        ids1 = [alloc1.next_id() for _ in range(5)]
        ids2 = [alloc2.next_id() for _ in range(5)]
        assert ids1 == ids2
        assert [r.seqno for r in ids1] == [1, 2, 3, 4, 5]

    def test_distinct_origins_do_not_collide(self):
        a = RequestIdAllocator(ServiceId("a")).next_id()
        b = RequestIdAllocator(ServiceId("b")).next_id()
        assert a != b


class TestMessageId:
    def test_value_roundtrip(self):
        assert str(MessageId("urn:x:1")) == "urn:x:1"
        assert MessageId("x") == MessageId("x")
