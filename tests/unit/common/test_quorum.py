"""Unit tests for quorum arithmetic (3f+1 bounds)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.quorum import (
    agreement_quorum,
    fault_bound,
    group_size,
    matching_request_quorum,
    reply_bundle_quorum,
    validate_group,
    weak_certificate,
)


class TestGroupSize:
    def test_zero_faults_needs_one_replica(self):
        assert group_size(0) == 1

    def test_paper_configurations(self):
        # The paper evaluates groups of 1, 4, 7, 10 = 3f+1 for f = 0..3.
        assert [group_size(f) for f in range(4)] == [1, 4, 7, 10]

    def test_negative_fault_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            group_size(-1)


class TestFaultBound:
    def test_unreplicated_tolerates_nothing(self):
        assert fault_bound(1) == 0

    def test_sub_quorum_groups_tolerate_nothing(self):
        assert fault_bound(2) == 0
        assert fault_bound(3) == 0

    def test_paper_groups(self):
        assert fault_bound(4) == 1
        assert fault_bound(7) == 2
        assert fault_bound(10) == 3

    def test_non_aligned_sizes_round_down(self):
        assert fault_bound(5) == 1
        assert fault_bound(6) == 1
        assert fault_bound(9) == 2

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_bound(0)

    def test_roundtrip_with_group_size(self):
        for f in range(10):
            assert fault_bound(group_size(f)) == f


class TestQuorums:
    def test_agreement_quorum_is_2f_plus_1(self):
        assert agreement_quorum(4) == 3
        assert agreement_quorum(7) == 5
        assert agreement_quorum(10) == 7

    def test_agreement_quorum_unreplicated(self):
        assert agreement_quorum(1) == 1

    def test_weak_certificate_is_f_plus_1(self):
        assert weak_certificate(1) == 1
        assert weak_certificate(4) == 2
        assert weak_certificate(7) == 3
        assert weak_certificate(10) == 4

    def test_two_agreement_quorums_intersect_in_correct_replica(self):
        # 2 * (2f+1) - (3f+1) = f + 1 > f: any two quorums share a correct
        # replica -- the safety core of CLBFT.
        for n in (1, 4, 7, 10, 13):
            f = fault_bound(n)
            assert 2 * agreement_quorum(n) - n >= f + 1

    def test_matching_request_quorum_matches_paper_stage_2(self):
        # fc + 1 matching requests from calling drivers.
        assert matching_request_quorum(1) == 1
        assert matching_request_quorum(4) == 2
        assert matching_request_quorum(10) == 4

    def test_reply_bundle_quorum_matches_paper_stage_6(self):
        # ft + 1 matching replies in the bundle.
        assert reply_bundle_quorum(1) == 1
        assert reply_bundle_quorum(7) == 3


class TestValidateGroup:
    def test_accepts_exact(self):
        validate_group(4, 1)

    def test_accepts_overprovisioned(self):
        validate_group(10, 1)

    def test_rejects_insufficient(self):
        with pytest.raises(ConfigurationError):
            validate_group(3, 1)
        with pytest.raises(ConfigurationError):
            validate_group(9, 3)
