"""Unit tests for the canonical codec."""

import pytest

from repro.common.encoding import canonical_encode, decode_payload
from repro.common.errors import ProtocolError
from repro.common.ids import NodeId, ReplicaId, RequestId, ServiceId, voter


class TestRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            2**62,
            "",
            "hello",
            "unicode-free ascii only",
            b"",
            b"\x00\xff binary",
            [],
            [1, 2, 3],
            {"a": 1, "b": [True, None]},
            (1, "two", b"3"),
            {"nested": {"deep": [{"x": (1, 2)}]}},
        ],
    )
    def test_roundtrip(self, value):
        assert decode_payload(canonical_encode(value)) == value

    def test_typed_ids_roundtrip(self):
        values = [
            ServiceId("bank"),
            ReplicaId(ServiceId("bank"), 2),
            voter("bank", 1),
            RequestId(ServiceId("store"), 9),
        ]
        for value in values:
            assert decode_payload(canonical_encode(value)) == value

    def test_ids_inside_containers(self):
        value = {"req": RequestId(ServiceId("s"), 1), "nodes": [voter("s", 0)]}
        assert decode_payload(canonical_encode(value)) == value


class TestDeterminism:
    def test_dict_key_order_is_canonicalised(self):
        a = canonical_encode({"x": 1, "y": 2})
        b = canonical_encode({"y": 2, "x": 1})
        assert a == b

    def test_distinct_values_encode_differently(self):
        assert canonical_encode({"a": 1}) != canonical_encode({"a": 2})

    def test_tuple_and_list_are_distinguished(self):
        assert canonical_encode((1, 2)) != canonical_encode([1, 2])
        assert decode_payload(canonical_encode((1, 2))) == (1, 2)
        assert decode_payload(canonical_encode([1, 2])) == [1, 2]

    def test_bool_and_int_are_distinguished(self):
        # JSON true vs 1 must not collapse.
        assert decode_payload(canonical_encode(True)) is True
        assert decode_payload(canonical_encode(1)) == 1


class TestRejections:
    def test_floats_rejected(self):
        with pytest.raises(ProtocolError):
            canonical_encode(1.5)

    def test_floats_rejected_in_containers(self):
        with pytest.raises(ProtocolError):
            canonical_encode({"x": [1.0]})

    def test_non_string_keys_rejected(self):
        with pytest.raises(ProtocolError):
            canonical_encode({1: "x"})

    def test_unknown_types_rejected(self):
        with pytest.raises(ProtocolError):
            canonical_encode(object())

    def test_malformed_bytes_rejected_on_decode(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"not json at all{")

    def test_unknown_tag_rejected_on_decode(self):
        with pytest.raises(ProtocolError):
            decode_payload(b'{"__repro__":"alien","v":1}')
