"""Unit tests for the wire fast path: blobs, memos, and metrics.

The cache layer must be *invisible* except for speed: cached encodes and
digests are byte-identical to uncached ones, and the operation counters
prove the encode-once/digest-once behaviour the fast path exists for.
"""

import hashlib
import sys

import pytest

from repro.common.encoding import (
    IdentityMemo,
    WireBlob,
    canonical_encode,
    clear_blob_cache,
    clear_wire_caches,
    decode_payload,
    wire_blob,
)
from repro.common.errors import ProtocolError
from repro.common.ids import RequestId, ServiceId
from repro.common.metrics import METRICS, Metrics


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_wire_caches()
    METRICS.reset()
    yield
    clear_wire_caches()
    METRICS.reset()


class TestWireBlob:
    def test_cached_bytes_identical_to_uncached(self):
        message = {"op": "transfer", "amount": 125, "to": ServiceId("bank")}
        blob = wire_blob(message)
        assert blob.data == canonical_encode(dict(message))

    def test_cached_digest_identical_to_uncached(self):
        message = {"n": 7, "payload": b"\x00\x01", "rid": RequestId(ServiceId("s"), 3)}
        blob = wire_blob(message)
        assert blob.digest == hashlib.sha256(canonical_encode(dict(message))).digest()

    def test_digest_memoized(self):
        blob = wire_blob({"k": 1})
        first = blob.digest
        METRICS.reset()
        assert blob.digest == first
        assert METRICS.digest_calls == 0
        assert METRICS.digest_cache_hits == 1

    def test_same_object_hits_cache(self):
        message = {"x": 1}
        a = wire_blob(message)
        b = wire_blob(message)
        assert a is b
        assert METRICS.encode_cache_hits == 1

    def test_equal_but_distinct_objects_do_not_alias(self):
        a = wire_blob({"x": 1})
        b = wire_blob({"x": 1})
        assert a is not b
        assert a.data == b.data

    def test_blob_passthrough(self):
        blob = wire_blob({"x": 1})
        assert wire_blob(blob) is blob
        assert canonical_encode(blob) == blob.data

    def test_custom_encoder(self):
        blob = wire_blob((1, 2), encode=lambda obj: b"custom")
        assert blob.data == b"custom"

    def test_decode_inverts_blob_bytes(self):
        message = {"ids": [RequestId(ServiceId("a"), 1)], "t": (1, b"\xff")}
        blob = wire_blob(message)
        assert decode_payload(blob.data) == message


class TestIterativeEncoder:
    def test_deep_nesting_does_not_recurse(self):
        # The seed encoder recursed per level; the iterative walk must
        # handle structures far deeper than the interpreter stack.
        # (json.dumps itself still enforces the interpreter limit, so the
        # walk is exercised directly.)
        from repro.common.encoding import _to_jsonable

        depth = sys.getrecursionlimit() * 2
        deep = 0
        for _ in range(depth):
            deep = [deep]
        jsonable = _to_jsonable(deep)
        for _ in range(depth):
            assert isinstance(jsonable, list) and len(jsonable) == 1
            jsonable = jsonable[0]
        assert jsonable == 0

    def test_moderately_deep_roundtrip(self):
        deep = "leaf"
        for _ in range(50):
            deep = {"level": [deep]}
        assert decode_payload(canonical_encode(deep)) == deep

    def test_float_rejected(self):
        with pytest.raises(ProtocolError):
            canonical_encode({"x": 1.5})

    def test_nested_float_rejected(self):
        with pytest.raises(ProtocolError):
            canonical_encode({"x": [1, {"y": (2.5,)}]})

    def test_non_string_key_rejected(self):
        with pytest.raises(ProtocolError):
            canonical_encode({1: "x"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(ProtocolError):
            canonical_encode({"x": object()})

    def test_scalar_fast_path(self):
        assert canonical_encode(42) == b"42"
        assert canonical_encode("hi") == b'"hi"'
        assert canonical_encode(None) == b"null"
        assert canonical_encode(True) == b"true"

    def test_subclass_compat_with_seed_semantics(self):
        # The seed encoder dispatched on isinstance, so subclasses of
        # supported types must keep encoding (normalised to base forms).
        from typing import NamedTuple

        class Point(NamedTuple):
            x: int
            y: int

        class Key(str):
            pass

        class Count(int):
            pass

        from repro.clbft.messages import encode_message, message_to_wire

        payload = {Key("k"): [Point(1, 2), Count(3)]}
        reference = canonical_encode(
            {"k": [(1, 2), 3]}
        )
        assert canonical_encode(payload) == reference
        # The fused codec accepts the same values as its two-pass
        # reference (NamedTuple payloads were a seed-supported case).
        assert encode_message(payload) == canonical_encode(
            message_to_wire({"k": [(1, 2), 3]})
        )


class TestIdentityMemo:
    def test_computes_once_per_object(self):
        memo = IdentityMemo()
        calls = []
        obj = {"a": 1}
        compute = lambda o: calls.append(1) or len(o)
        assert memo.get(obj, compute) == memo.get(obj, compute)
        assert len(calls) == 1

    def test_distinct_objects_compute_separately(self):
        memo = IdentityMemo()
        calls = []
        compute = lambda o: calls.append(1) or len(o)
        memo.get({"a": 1}, compute)
        memo.get({"a": 1}, compute)
        assert len(calls) == 2

    def test_eviction_bounded(self):
        memo = IdentityMemo(limit=4)
        keep = [{"i": i} for i in range(10)]
        for obj in keep:
            memo.get(obj, lambda o: o["i"])
        assert len(memo._cache) <= 4

    def test_clear_wire_caches_empties_registered_memos(self):
        memo = IdentityMemo()
        memo.get({"a": 1}, len)
        keyed = {"b": 2}
        blob = wire_blob(keyed)
        clear_wire_caches()
        assert len(memo._cache) == 0
        assert wire_blob(keyed) is not blob  # blob cache also cleared


class TestMetrics:
    def test_reset_zeroes_everything(self):
        METRICS.encode_calls = 5
        METRICS.digest_calls = 3
        METRICS.reset()
        assert METRICS.encode_calls == 0
        assert METRICS.digest_calls == 0

    def test_snapshot_copies(self):
        snap = METRICS.snapshot()
        METRICS.encode_calls += 1
        assert METRICS.snapshot()["encode_calls"] == snap["encode_calls"] + 1

    def test_counts_encodes(self):
        before = METRICS.encode_calls
        canonical_encode({"x": 1})
        assert METRICS.encode_calls == before + 1

    def test_independent_instances(self):
        local = Metrics()
        local.encode_calls += 1
        assert local.encode_calls == 1
