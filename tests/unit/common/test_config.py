"""Unit tests for replication configuration and service specs."""

import pytest

from repro.common.config import ReplicationConfig, ServiceSpec, make_spec
from repro.common.errors import ConfigurationError
from repro.common.ids import NodeId, ServiceId


class TestReplicationConfig:
    def test_for_group_size(self):
        config = ReplicationConfig.for_group_size(7)
        assert config.n == 7
        assert config.f == 2

    def test_for_fault_bound(self):
        config = ReplicationConfig.for_fault_bound(3)
        assert config.n == 10
        assert config.f == 3

    def test_invalid_combination_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(n=3, f=1)

    def test_overprovisioned_accepted(self):
        assert ReplicationConfig(n=10, f=1).f == 1

    def test_is_replicated(self):
        assert not ReplicationConfig.for_group_size(1).is_replicated
        assert ReplicationConfig.for_group_size(4).is_replicated


class TestServiceSpec:
    def test_replicas_and_nodes(self):
        spec = make_spec("pge", 4)
        assert spec.n == 4
        assert spec.f == 1
        assert len(spec.replicas()) == 4
        assert [v.role for v in spec.voters()] == [NodeId.VOTER] * 4
        assert [d.role for d in spec.drivers()] == [NodeId.DRIVER] * 4

    def test_default_endpoints_synthesised(self):
        spec = make_spec("pge", 4)
        assert spec.endpoint_of(2) == "perpetual://pge/2"

    def test_explicit_endpoints(self):
        spec = make_spec("pge", 2 + 2, endpoints=("a", "b", "c", "d"))
        assert spec.endpoint_of(0) == "a"
        assert spec.endpoint_of(3) == "d"

    def test_endpoint_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec("pge", 4, endpoints=("a", "b"))

    def test_duplicate_endpoints_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec("pge", 4, endpoints=("a", "a", "b", "c"))

    def test_service_identity(self):
        spec = make_spec("bank", 1)
        assert spec.service == ServiceId("bank")
