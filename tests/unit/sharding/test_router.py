"""Unit: the consistent-hash ring and the router tier.

The router is pure state derived from a validated spec — SHA-256 ring
arithmetic only — so two builds from the same document must agree point
for point (worker processes rebuild it from spec JSON).
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.scenario.presets import echo_parity_scenario
from repro.scenario.spec import ScenarioBuilder, ScenarioSpec
from repro.sharding import HashRing, Router, build_router

KEYS = [f"client{i}" for i in range(200)]


def sharded_spec(policy="service_name", top_level=False):
    builder = ScenarioBuilder("router-spec").routing(policy)
    builder.service("g0-svc", n=4, app="echo", group="g0")
    builder.service("g1-svc", n=4, app="echo", group="g1")
    if top_level:
        builder.service("client", n=4, app="sync_caller",
                        target="g0-svc", total_calls=1)
    return builder.build()


class TestHashRing:
    def test_assignment_is_deterministic(self):
        a = HashRing(("g0", "g1", "g2"))
        b = HashRing(("g0", "g1", "g2"))
        assert [a.assign(k) for k in KEYS] == [b.assign(k) for k in KEYS]

    def test_assignment_is_reasonably_balanced(self):
        ring = HashRing(("g0", "g1", "g2"))
        counts = {"g0": 0, "g1": 0, "g2": 0}
        for key in KEYS:
            counts[ring.assign(key)] += 1
        # 64 vnodes per group: every group owns a healthy share of 200
        # keys (expected ~1/3 each; 10% is a loose structural floor).
        for group, count in counts.items():
            assert count >= len(KEYS) * 0.10, (group, counts)

    def test_adding_a_group_remaps_only_its_arcs(self):
        before = HashRing(("g0", "g1"))
        after = HashRing(("g0", "g1", "g2"))
        unchanged = sum(
            1 for k in KEYS if before.assign(k) == after.assign(k)
        )
        # Consistent hashing's point: most keys keep their owner
        # (expected ~2/3 when a third group joins).
        assert unchanged >= len(KEYS) * 0.5

    def test_empty_ring_is_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one group"):
            HashRing(())


class TestRouter:
    def test_group_services_are_pinned_under_both_policies(self):
        for policy in ("service_name", "consistent_hash"):
            router = Router(sharded_spec(policy))
            assert router.policy == policy
            assert router.group_for_service("g0-svc") == "g0"
            assert router.group_for_service("g1-svc") == "g1"

    def test_top_level_clients_are_ring_assigned(self):
        spec = sharded_spec("consistent_hash", top_level=True)
        router = Router(spec)
        home = router.home_group_for("client")
        assert home in ("g0", "g1")
        # The name is the ring key: the raw ring agrees with the router.
        assert home == HashRing(("g0", "g1")).assign("client")

    def test_rebuild_from_json_is_identical(self):
        spec = sharded_spec("consistent_hash", top_level=True)
        restored = ScenarioSpec.from_json(spec.to_json())
        a, b = Router(spec), Router(restored)
        for service in ("g0-svc", "g1-svc", "client"):
            assert a.group_for_service(service) == b.group_for_service(service)

    def test_forward_flags_group_crossings(self):
        router = Router(sharded_spec())
        local = router.forward("g0", "g0-svc")
        assert local.target_group == "g0" and not local.cross_group
        crossing = router.forward("g0", "g1-svc")
        assert crossing.target_group == "g1" and crossing.cross_group
        # A caller with no home group (classic client) never "crosses".
        assert not router.forward(None, "g1-svc").cross_group

    def test_unknown_service_is_an_error(self):
        router = Router(sharded_spec())
        with pytest.raises(ConfigurationError, match="knows no service"):
            router.group_for_service("nope")

    def test_build_router_is_none_for_classic_specs(self):
        assert build_router(echo_parity_scenario()) is None

    def test_router_requires_groups(self):
        with pytest.raises(ConfigurationError, match="declares no groups"):
            Router(echo_parity_scenario())
