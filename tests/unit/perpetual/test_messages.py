"""Unit tests for Perpetual agreement-item construction and matching."""

from repro.clbft.messages import message_to_wire
from repro.common.ids import RequestId, ServiceId
from repro.perpetual.messages import (
    ITEM_ABORT,
    ITEM_REQUEST,
    ITEM_RESULT,
    ITEM_UTILITY,
    OutRequest,
    abort_item,
    item_kind,
    reply_auth_bytes,
    request_item,
    result_item,
    utility_item,
)
from repro.perpetual.voter import request_match_key, result_match_key

RID = RequestId(ServiceId("store"), 5)


def out_request(responder=0, attempt=0, payload=b"x"):
    return OutRequest(
        request_id=RID,
        caller=ServiceId("store"),
        target=ServiceId("pge"),
        payload=payload,
        responder_index=responder,
        attempt=attempt,
    )


class TestItemIdentity:
    def test_request_item_identity_stable(self):
        wire = message_to_wire(out_request())
        a = request_item(wire, proof=[])
        b = request_item(wire, proof=[["other", "proof"]])
        # Same request -> same (client, timestamp) identity even with a
        # different proof set: CLBFT dedup applies.
        assert (a.client, a.timestamp) == (b.client, b.timestamp)
        assert item_kind(a) == ITEM_REQUEST

    def test_result_item_identity_per_request(self):
        a = result_item(RID, b"r1")
        b = result_item(RID, b"r2")
        assert (a.client, a.timestamp) == (b.client, b.timestamp)
        assert item_kind(a) == ITEM_RESULT

    def test_abort_and_result_share_request_but_differ_in_kind(self):
        r = result_item(RID, b"r")
        a = abort_item(RID)
        assert item_kind(a) == ITEM_ABORT
        assert r.client != a.client  # distinct items, ordered independently

    def test_utility_item_identity_by_sequence(self):
        a = utility_item(3, "time", None)
        b = utility_item(3, "time", 999)  # primary's value-filled version
        assert (a.client, a.timestamp) == (b.client, b.timestamp)
        assert "value" not in a.op
        assert b.op["value"] == 999
        assert item_kind(a) == ITEM_UTILITY


class TestMatching:
    def test_retries_match_despite_responder_rotation(self):
        original = out_request(responder=0, attempt=0)
        retry = out_request(responder=1, attempt=1)
        assert request_match_key(original) == request_match_key(retry)

    def test_different_payloads_do_not_match(self):
        assert request_match_key(out_request(payload=b"a")) != request_match_key(
            out_request(payload=b"b")
        )

    def test_result_match_distinguishes_values_and_aborts(self):
        assert result_match_key(RID, b"x", False) == result_match_key(
            RID, b"x", False
        )
        assert result_match_key(RID, b"x", False) != result_match_key(
            RID, b"y", False
        )
        assert result_match_key(RID, None, True) != result_match_key(
            RID, None, False
        )


class TestReplyAuthBytes:
    def test_stable_across_calls(self):
        assert reply_auth_bytes(RID, b"result") == reply_auth_bytes(RID, b"result")

    def test_sensitive_to_request_and_result(self):
        other = RequestId(ServiceId("store"), 6)
        assert reply_auth_bytes(RID, b"r") != reply_auth_bytes(other, b"r")
        assert reply_auth_bytes(RID, b"r1") != reply_auth_bytes(RID, b"r2")
