"""Unit tests for voter-level validation logic, driven directly.

These poke the VoterNode's validation helpers without a full deployment:
result-echo quorums, utility deferral, and request-proof checking.
"""

import pytest

from repro.clbft.messages import message_to_wire
from repro.common.encoding import canonical_encode
from repro.common.ids import RequestId, ServiceId
from repro.crypto.auth import AuthenticatorFactory
from repro.crypto.keys import KeyStore
from repro.perpetual.group import Topology
from repro.perpetual.messages import (
    OutRequest,
    ResultSubmission,
    request_item,
    result_item,
    utility_item,
)
from repro.perpetual.voter import VoterNode, result_match_key, voter_name
from repro.sim.kernel import Simulator
from repro.sim.network import UniformLatency
from repro.transport.wire import WireEnvelope, envelope_to_wire


@pytest.fixture
def setup():
    topology = Topology()
    topology.add("caller", 4)
    topology.add("svc", 4)
    keys = KeyStore.for_deployment("voter-unit")
    sim = Simulator()
    sim.set_network(UniformLatency(0))
    voters = []
    for i in range(4):
        voter = VoterNode(topology=topology, service="svc", index=i, keys=keys)
        env = sim.add_node(voter_name("svc", i), voter, host=f"svc/h{i}")
        voter.attach(env)
        voters.append(voter)
    return topology, keys, sim, voters


RID = RequestId(ServiceId("svc"), 7)


class TestResultValidation:
    def test_own_echo_validates(self, setup):
        __, __, __, voters = setup
        voter = voters[1]
        key = result_match_key(RID, b"r", False)
        voter._on_result_submission(
            1, ResultSubmission(request_id=RID, result=b"r"), own=True
        )
        assert voter._result_validated(RID, key)

    def test_single_foreign_echo_insufficient(self, setup):
        __, __, __, voters = setup
        voter = voters[1]
        key = result_match_key(RID, b"r", False)
        voter._on_result_submission(
            3, ResultSubmission(request_id=RID, result=b"r"), own=False
        )
        assert not voter._result_validated(RID, key)

    def test_f_plus_1_foreign_echoes_validate(self, setup):
        __, __, __, voters = setup
        voter = voters[1]
        key = result_match_key(RID, b"r", False)
        for driver_index in (2, 3):
            voter._on_result_submission(
                driver_index,
                ResultSubmission(request_id=RID, result=b"r"),
                own=False,
            )
        assert voter._result_validated(RID, key)

    def test_conflicting_echoes_do_not_combine(self, setup):
        __, __, __, voters = setup
        voter = voters[1]
        key = result_match_key(RID, b"r", False)
        voter._on_result_submission(
            2, ResultSubmission(request_id=RID, result=b"r"), own=False
        )
        voter._on_result_submission(
            3, ResultSubmission(request_id=RID, result=b"other"), own=False
        )
        assert not voter._result_validated(RID, key)

    def test_own_echo_mismatch_does_not_validate_other_value(self, setup):
        __, __, __, voters = setup
        voter = voters[1]
        voter._on_result_submission(
            1, ResultSubmission(request_id=RID, result=b"mine"), own=True
        )
        other_key = result_match_key(RID, b"theirs", False)
        assert not voter._result_validated(RID, other_key)


class TestBatchValidation:
    def test_utility_without_own_request_defers(self, setup):
        __, __, __, voters = setup
        voter = voters[1]
        item = utility_item(1, "time", 12345)
        assert voter._validate_batch((item,)) == "defer"

    def test_utility_with_own_request_accepts(self, setup):
        __, __, __, voters = setup
        voter = voters[1]
        from repro.perpetual.messages import UtilityRequest

        voter._on_utility_request(UtilityRequest(util_seq=1, utility="time"))
        item = utility_item(1, "time", 12345)
        assert voter._validate_batch((item,)) == "accept"

    def test_utility_value_missing_rejects(self, setup):
        __, __, __, voters = setup
        voter = voters[1]
        item = utility_item(1, "time", None)  # primary must fill the value
        assert voter._validate_batch((item,)) == "reject"

    def test_utility_kind_mismatch_rejects(self, setup):
        __, __, __, voters = setup
        voter = voters[1]
        from repro.perpetual.messages import UtilityRequest

        voter._on_utility_request(UtilityRequest(util_seq=1, utility="random"))
        item = utility_item(1, "time", 5)
        assert voter._validate_batch((item,)) == "reject"

    def test_unvalidated_result_defers(self, setup):
        __, __, __, voters = setup
        voter = voters[1]
        item = result_item(RID, b"r")
        assert voter._validate_batch((item,)) == "defer"

    def test_request_item_with_valid_proof_accepts(self, setup):
        topology, keys, __, voters = setup
        voter = voters[1]
        request = OutRequest(
            request_id=RequestId(ServiceId("caller"), 1),
            caller=ServiceId("caller"),
            target=ServiceId("svc"),
            payload=b"p",
            responder_index=0,
        )
        payload = canonical_encode(message_to_wire(request))
        audience = [voter_name("svc", i) for i in range(4)]
        proof = []
        for driver_index in (0, 1):  # fc + 1 = 2 matching copies
            sender = f"caller/d{driver_index}"
            auth = AuthenticatorFactory(keys, sender).sign(payload, audience)
            proof.append(
                envelope_to_wire(WireEnvelope(payload=payload, auth=auth))
            )
        item = request_item(message_to_wire(request), proof)
        assert voter._validate_batch((item,)) == "accept"

    def test_request_item_with_short_proof_rejects(self, setup):
        topology, keys, __, voters = setup
        voter = voters[1]
        request = OutRequest(
            request_id=RequestId(ServiceId("caller"), 1),
            caller=ServiceId("caller"),
            target=ServiceId("svc"),
            payload=b"p",
            responder_index=0,
        )
        payload = canonical_encode(message_to_wire(request))
        audience = [voter_name("svc", i) for i in range(4)]
        auth = AuthenticatorFactory(keys, "caller/d0").sign(payload, audience)
        proof = [envelope_to_wire(WireEnvelope(payload=payload, auth=auth))]
        item = request_item(message_to_wire(request), proof)
        assert voter._validate_batch((item,)) == "reject"

    def test_request_item_with_forged_macs_rejects(self, setup):
        topology, __, __, voters = setup
        voter = voters[1]
        forged_keys = KeyStore.for_deployment("not-the-deployment")
        request = OutRequest(
            request_id=RequestId(ServiceId("caller"), 1),
            caller=ServiceId("caller"),
            target=ServiceId("svc"),
            payload=b"p",
            responder_index=0,
        )
        payload = canonical_encode(message_to_wire(request))
        audience = [voter_name("svc", i) for i in range(4)]
        proof = []
        for driver_index in (0, 1):
            sender = f"caller/d{driver_index}"
            auth = AuthenticatorFactory(forged_keys, sender).sign(
                payload, audience
            )
            proof.append(
                envelope_to_wire(WireEnvelope(payload=payload, auth=auth))
            )
        item = request_item(message_to_wire(request), proof)
        assert voter._validate_batch((item,)) == "reject"

    def test_request_for_other_service_rejects(self, setup):
        topology, keys, __, voters = setup
        voter = voters[1]
        request = OutRequest(
            request_id=RequestId(ServiceId("caller"), 1),
            caller=ServiceId("caller"),
            target=ServiceId("elsewhere"),
            payload=b"p",
            responder_index=0,
        )
        item = request_item(message_to_wire(request), [])
        assert voter._validate_batch((item,)) == "reject"
