"""Unit tests for the executor runtime (the deterministic app model)."""

import itertools

import pytest

from repro.common.errors import ExecutorViolation
from repro.common.ids import RequestId, ServiceId
from repro.perpetual.executor import (
    Compute,
    CurrentTime,
    ExecutorRuntime,
    Random,
    ReceiveAny,
    ReceiveReply,
    ReceiveRequest,
    ReplyEvent,
    RequestEvent,
    Send,
    SendReply,
    Sleep,
    Timestamp,
    run_passive,
)


def make_runtime(app_factory):
    counter = itertools.count(1)
    return ExecutorRuntime(
        app_factory=app_factory,
        allocate_request_id=lambda: RequestId(ServiceId("me"), next(counter)),
    )


def request_event(seqno: int = 1, payload=None):
    return RequestEvent(
        request_id=RequestId(ServiceId("caller"), seqno),
        caller="caller",
        payload=payload if payload is not None else {"n": seqno},
    )


class TestNonBlockingEffects:
    def test_send_resumes_with_request_id(self):
        seen = []

        def app():
            rid = yield Send("target", {"x": 1})
            seen.append(rid)

        runtime = make_runtime(app)
        runtime.step()
        assert seen == [RequestId(ServiceId("me"), 1)]
        outbox = runtime.take_outbox()
        assert len(outbox.sends) == 1
        assert outbox.sends[0][1].payload == {"x": 1}
        assert runtime.finished

    def test_sequential_sends_get_sequential_ids(self):
        ids = []

        def app():
            for _ in range(3):
                ids.append((yield Send("t", {})))

        runtime = make_runtime(app)
        runtime.step()
        assert [r.seqno for r in ids] == [1, 2, 3]

    def test_compute_accumulates(self):
        def app():
            yield Compute(100)
            yield Compute(250)

        runtime = make_runtime(app)
        runtime.step()
        assert runtime.take_outbox().compute_us == 350

    def test_negative_compute_rejected(self):
        def app():
            yield Compute(-1)

        runtime = make_runtime(app)
        with pytest.raises(ExecutorViolation):
            runtime.step()

    def test_send_reply_recorded(self):
        def app():
            event = yield ReceiveRequest()
            yield SendReply(event, {"ok": True})

        runtime = make_runtime(app)
        runtime.step()
        runtime.deliver_request(request_event())
        runtime.step()
        outbox = runtime.take_outbox()
        assert len(outbox.replies) == 1
        assert outbox.replies[0].payload == {"ok": True}


class TestBlockingReceives:
    def test_receive_request_blocks_until_delivery(self):
        def app():
            event = yield ReceiveRequest()
            yield SendReply(event, event.payload)

        runtime = make_runtime(app)
        runtime.step()
        assert isinstance(runtime.blocked_on, ReceiveRequest)
        runtime.deliver_request(request_event(payload={"v": 7}))
        runtime.step()
        assert runtime.take_outbox().replies[0].payload == {"v": 7}

    def test_receive_specific_reply(self):
        got = []

        def app():
            rid1 = yield Send("t", 1)
            rid2 = yield Send("t", 2)
            got.append((yield ReceiveReply(rid2)))
            got.append((yield ReceiveReply(rid1)))

        runtime = make_runtime(app)
        runtime.step()
        rid1 = RequestId(ServiceId("me"), 1)
        rid2 = RequestId(ServiceId("me"), 2)
        runtime.deliver_reply(ReplyEvent(rid1, payload="one"))
        runtime.step()
        assert got == []  # still blocked on rid2
        runtime.deliver_reply(ReplyEvent(rid2, payload="two"))
        runtime.step()
        assert [e.payload for e in got] == ["two", "one"]

    def test_receive_any_reply_in_agreement_order(self):
        got = []

        def app():
            yield Send("t", 1)
            yield Send("t", 2)
            got.append((yield ReceiveReply()))
            got.append((yield ReceiveReply()))

        runtime = make_runtime(app)
        runtime.step()
        runtime.deliver_reply(ReplyEvent(RequestId(ServiceId("me"), 2), "b"))
        runtime.deliver_reply(ReplyEvent(RequestId(ServiceId("me"), 1), "a"))
        runtime.step()
        assert [e.payload for e in got] == ["b", "a"]

    def test_reply_for_unknown_request_rejected(self):
        def app():
            yield ReceiveReply(RequestId(ServiceId("me"), 99))

        runtime = make_runtime(app)
        with pytest.raises(ExecutorViolation):
            runtime.step()

    def test_duplicate_reply_delivery_ignored(self):
        got = []

        def app():
            rid = yield Send("t", 1)
            got.append((yield ReceiveReply(rid)))

        runtime = make_runtime(app)
        runtime.step()
        rid = RequestId(ServiceId("me"), 1)
        runtime.deliver_reply(ReplyEvent(rid, "first"))
        runtime.deliver_reply(ReplyEvent(rid, "second"))
        runtime.step()
        assert [e.payload for e in got] == ["first"]

    def test_receive_any_interleaves_requests_and_replies(self):
        log = []

        def app():
            yield Send("t", 1)
            for _ in range(2):
                event = yield ReceiveAny()
                log.append(type(event).__name__)

        runtime = make_runtime(app)
        runtime.step()
        runtime.deliver_request(request_event())
        runtime.deliver_reply(ReplyEvent(RequestId(ServiceId("me"), 1), "r"))
        runtime.step()
        assert log == ["RequestEvent", "ReplyEvent"]

    def test_aborted_reply_flag_visible(self):
        got = []

        def app():
            rid = yield Send("t", 1, timeout_ms=50)
            got.append((yield ReceiveReply(rid)))

        runtime = make_runtime(app)
        runtime.step()
        runtime.deliver_reply(
            ReplyEvent(RequestId(ServiceId("me"), 1), None, aborted=True)
        )
        runtime.step()
        assert got[0].aborted


class TestUtilities:
    @pytest.mark.parametrize(
        "effect,utility", [(CurrentTime(), "time"), (Timestamp(), "timestamp")]
    )
    def test_time_utilities(self, effect, utility):
        got = []

        def app():
            got.append((yield effect))

        runtime = make_runtime(app)
        runtime.step()
        assert runtime.take_outbox().utility == utility
        runtime.deliver_utility(utility, 123456)
        runtime.step()
        assert got == [123456]

    def test_random_returns_seeded_rng(self):
        got = []

        def app():
            got.append((yield Random()))

        runtime = make_runtime(app)
        runtime.step()
        assert runtime.take_outbox().utility == "random"
        runtime.deliver_utility("random", 42)
        runtime.step()
        import random as stdlib_random

        assert got[0].random() == stdlib_random.Random(42).random()

    def test_utility_requested_only_once(self):
        def app():
            yield CurrentTime()

        runtime = make_runtime(app)
        runtime.step()
        assert runtime.take_outbox().utility == "time"
        runtime.step()  # extra step before the value arrives
        assert runtime.take_outbox().utility is None

    def test_mismatched_utility_kind_rejected(self):
        def app():
            yield CurrentTime()

        runtime = make_runtime(app)
        runtime.step()
        runtime.deliver_utility("random", 1)
        with pytest.raises(ExecutorViolation):
            runtime.step()


class TestSleep:
    def test_sleep_blocks_until_wakeup(self):
        woke = []

        def app():
            yield Sleep(5_000)
            woke.append(True)

        runtime = make_runtime(app)
        runtime.step()
        assert runtime.take_outbox().sleep_us == 5_000
        assert not woke
        runtime.deliver_wakeup()
        runtime.step()
        assert woke == [True]

    def test_sleep_requested_once(self):
        def app():
            yield Sleep(1_000)

        runtime = make_runtime(app)
        runtime.step()
        runtime.take_outbox()
        runtime.step()
        assert runtime.take_outbox().sleep_us is None


class TestDeterminism:
    def test_identical_event_sequences_identical_behaviour(self):
        def make_app(log):
            def app():
                while True:
                    event = yield ReceiveAny()
                    if isinstance(event, RequestEvent):
                        rid = yield Send("t", event.payload)
                        log.append(("sent", rid.seqno))
                        yield SendReply(event, {"ok": True})
                    else:
                        log.append(("reply", event.payload))

            return app

        logs = ([], [])
        runtimes = [make_runtime(make_app(log)) for log in logs]
        events = [
            request_event(1, {"a": 1}),
            request_event(2, {"a": 2}),
        ]
        for runtime in runtimes:
            runtime.step()
            for event in events:
                runtime.deliver_request(event)
                runtime.step()
            runtime.deliver_reply(
                ReplyEvent(RequestId(ServiceId("me"), 1), "done")
            )
            runtime.step()
        assert logs[0] == logs[1]


class TestRunPassive:
    def test_passive_handler_loop(self):
        def handler(event):
            return {"echo": event.payload}

        runtime = make_runtime(run_passive(handler))
        runtime.step()
        runtime.deliver_request(request_event(payload="hi"))
        runtime.step()
        replies = runtime.take_outbox().replies
        assert replies[0].payload == {"echo": "hi"}
        assert not runtime.finished  # endless service loop

    def test_non_effect_yield_rejected(self):
        def app():
            yield "not an effect"

        runtime = make_runtime(app)
        with pytest.raises(ExecutorViolation):
            runtime.step()
