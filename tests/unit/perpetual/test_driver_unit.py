"""Unit tests for DriverNode internals: issue, retransmit, bundle checks."""

import pytest

from repro.clbft.messages import message_from_wire, message_to_wire
from repro.common.encoding import decode_payload
from repro.common.ids import RequestId, ServiceId
from repro.crypto.auth import AuthenticatorFactory
from repro.crypto.keys import KeyStore
from repro.perpetual.driver import DriverNode
from repro.perpetual.group import Topology
from repro.perpetual.messages import (
    AgreedEvent,
    OutRequest,
    ReplyBundle,
    reply_auth_bytes,
)
from repro.perpetual.voter import voter_name
from repro.sim.kernel import Simulator
from repro.sim.network import UniformLatency
from repro.transport.wire import WireEnvelope, auth_to_wire
from repro.soap.envelope import SoapEnvelope
from repro.ws.api import MessageContext, MessageHandler
from repro.ws.adapter import WsAdapter


def _soap_reply():
    return SoapEnvelope(body={"ok": True}).to_xml()


@pytest.fixture
def rig():
    """A caller driver wired to a simulator, with a message tap."""
    topology = Topology()
    topology.add("caller", 4)
    topology.add("target", 4)
    keys = KeyStore.for_deployment("driver-unit")
    sim = Simulator()
    sim.set_network(UniformLatency(0))
    taps = []
    original = sim.post_message

    def tapping(src, dst, msg, size_bytes):
        taps.append((str(src), str(dst), msg))
        original(src, dst, msg, size_bytes)

    sim.post_message = tapping

    def app():
        yield MessageHandler.send_receive(MessageContext(to="target", body={}))

    adapter = WsAdapter(service="caller", app_factory=app)
    driver = DriverNode(
        topology=topology, service="caller", index=0, keys=keys,
        app_factory=adapter.executor_app(),
    )
    env = sim.add_node("caller/d0", driver)
    driver.attach(env)
    return sim, driver, taps, keys


def decoded_out_requests(taps, keys=None):
    out = []
    for src, dst, msg in taps:
        if not isinstance(msg, WireEnvelope):
            continue
        try:
            decoded = message_from_wire(decode_payload(msg.payload))
        except Exception:
            continue
        if isinstance(decoded, OutRequest):
            out.append((src, dst, decoded))
    return out


class TestIssue:
    def test_first_transmission_goes_to_primary_hint_only(self, rig):
        sim, driver, taps, __ = rig
        sim.run(until_us=10_000)
        requests = decoded_out_requests(taps)
        assert requests
        destinations = {dst for _, dst, _ in requests}
        assert destinations == {"target/v0"}

    def test_request_authenticated_for_all_target_voters(self, rig):
        sim, driver, taps, keys = rig
        sim.run(until_us=10_000)
        envelope = next(
            m for _, _, m in taps if isinstance(m, WireEnvelope)
        )
        for i in range(4):
            verifier = AuthenticatorFactory(keys, voter_name("target", i))
            assert verifier.verify(envelope.payload, envelope.auth)

    def test_responder_rotates_deterministically_with_seqno(self, rig):
        sim, driver, taps, __ = rig
        sim.run(until_us=10_000)
        __, __, request = decoded_out_requests(taps)[0]
        assert request.responder_index == request.request_id.seqno % 4


class TestRetransmission:
    def test_retransmit_fans_out_and_rotates_responder(self, rig):
        sim, driver, taps, __ = rig
        sim.run(until_us=10_000)
        taps.clear()
        # No reply ever arrives; let the retransmit timer fire.
        sim.run(until_us=400_000)
        retries = decoded_out_requests(taps)
        destinations = {dst for _, dst, _ in retries}
        assert destinations == {f"target/v{i}" for i in range(4)}
        assert all(r.attempt >= 1 for _, _, r in retries)
        first = decoded_out_requests(taps)[0][2]
        assert first.responder_index == (first.request_id.seqno + first.attempt) % 4


class TestBundleVerification:
    def make_bundle(self, keys, request_id, result, voters, forge=False):
        data = reply_auth_bytes(request_id, result)
        source = KeyStore.for_deployment("evil") if forge else keys
        vouchers = []
        for index in voters:
            auth = AuthenticatorFactory(source, voter_name("target", index)).sign(
                data, ["caller/d0"]
            )
            vouchers.append((index, auth_to_wire(auth)))
        return ReplyBundle(
            request_id=request_id, result=result, vouchers=tuple(vouchers)
        )

    def outstanding_request_id(self, rig):
        sim, driver, taps, keys = rig
        sim.run(until_us=10_000)
        return next(iter(driver._outstanding))

    def test_valid_bundle_accepted(self, rig):
        sim, driver, __, keys = rig
        rid = self.outstanding_request_id(rig)
        bundle = self.make_bundle(keys, rid, b"<r/>", voters=(0, 1))
        assert driver._verify_bundle("target", bundle)

    def test_single_voucher_rejected(self, rig):
        sim, driver, __, keys = rig
        rid = self.outstanding_request_id(rig)
        bundle = self.make_bundle(keys, rid, b"<r/>", voters=(0,))
        assert not driver._verify_bundle("target", bundle)

    def test_duplicate_voucher_indices_rejected(self, rig):
        sim, driver, __, keys = rig
        rid = self.outstanding_request_id(rig)
        bundle = self.make_bundle(keys, rid, b"<r/>", voters=(2, 2))
        assert not driver._verify_bundle("target", bundle)

    def test_forged_macs_rejected(self, rig):
        sim, driver, __, keys = rig
        rid = self.outstanding_request_id(rig)
        bundle = self.make_bundle(keys, rid, b"<r/>", voters=(0, 1), forge=True)
        assert not driver._verify_bundle("target", bundle)

    def test_tampered_result_rejected(self, rig):
        sim, driver, __, keys = rig
        rid = self.outstanding_request_id(rig)
        good = self.make_bundle(keys, rid, b"<r/>", voters=(0, 1))
        tampered = ReplyBundle(
            request_id=rid, result=b"<evil/>", vouchers=good.vouchers
        )
        assert not driver._verify_bundle("target", tampered)


class TestSettlement:
    def test_agreed_reply_settles_and_cancels_timers(self, rig):
        sim, driver, __, keys = rig
        sim.run(until_us=10_000)
        rid = next(iter(driver._outstanding))
        driver._on_agreed_event(
            AgreedEvent(kind="reply",
                        body={"request_id": rid,
                              "value": _soap_reply(),
                              "aborted": False})
        )
        assert rid not in driver._outstanding
        assert driver.completed_calls == 1
        assert not driver._env.timer_armed(("rtx", rid))

    def test_agreed_abort_counts_separately(self, rig):
        sim, driver, __, keys = rig
        sim.run(until_us=10_000)
        rid = next(iter(driver._outstanding))
        driver._on_agreed_event(
            AgreedEvent(kind="reply",
                        body={"request_id": rid, "value": None, "aborted": True})
        )
        assert driver.aborted_calls == 1
        assert driver.completed_calls == 0
