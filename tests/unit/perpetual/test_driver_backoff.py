"""Unit tests for the driver's retransmission backoff and retry budget.

The backoff schedule is truncated binary exponential with deterministic
per-driver jitter: ``base * 2^attempt`` capped at RETRANSMIT_CAP_US plus
a uniform draw of up to RETRANSMIT_JITTER of the delay. Determinism
matters — the simulator's reproducibility guarantee covers faulted runs,
so two same-seed runs must retransmit at identical instants.
"""

from repro.perpetual.driver import (
    DriverNode,
    RETRANSMIT_CAP_US,
    RETRANSMIT_JITTER,
    RETRANSMIT_TIMEOUT_US,
    RETRY_BUDGET,
)
from repro.scenario.runtime import run_scenario
from repro.scenario.spec import ScenarioBuilder


def make_driver(service="svc", index=0):
    # The schedule needs no wiring: topology/keys are only touched at
    # attach time, and the stub app factory satisfies the executor.
    return DriverNode(
        topology=None,
        service=service,
        index=index,
        keys=None,
        app_factory=lambda: None,
    )


def test_backoff_schedule_doubles_then_caps():
    driver = make_driver()
    for attempt in range(12):
        base = min(RETRANSMIT_TIMEOUT_US << attempt, RETRANSMIT_CAP_US)
        delay = driver._retransmit_delay_us(attempt)
        assert base <= delay <= int(base * (1 + RETRANSMIT_JITTER))
    # Deep attempts are fully capped: the base never exceeds the ceiling.
    assert driver._retransmit_delay_us(30) <= int(
        RETRANSMIT_CAP_US * (1 + RETRANSMIT_JITTER)
    )


def test_backoff_jitter_deterministic_per_driver_name():
    schedule_a = [make_driver()._retransmit_delay_us(k) for k in range(10)]
    schedule_b = [make_driver()._retransmit_delay_us(k) for k in range(10)]
    assert schedule_a == schedule_b


def test_backoff_jitter_differs_across_drivers():
    # Per-name seeding desynchronises a group's retransmissions: two
    # replicas of the same service must not back off in lockstep.
    schedule_0 = [make_driver(index=0)._retransmit_delay_us(k)
                  for k in range(10)]
    schedule_1 = [make_driver(index=1)._retransmit_delay_us(k)
                  for k in range(10)]
    assert schedule_0 != schedule_1


def test_retry_budget_aborts_calls_to_a_dead_group():
    # Every target replica is crashed: the driver retransmits through its
    # budget, then proposes the deterministic abort instead of rearming
    # forever. The whole exhaustion takes ~32 s of simulated time.
    spec = (
        ScenarioBuilder("retry-budget-abort")
        .duration(90)
        .service("target", n=1, app="echo")
        .service("caller", n=1, app="sync_caller",
                 target="target", total_calls=1)
        .crash("target", 0)
        .build()
    )
    metrics = run_scenario(spec, runtime="sim")
    caller = metrics.services["caller"]
    assert caller.completed_calls == 0
    assert caller.aborted_calls == 1
    assert metrics.counters["retransmissions"] == RETRY_BUDGET
