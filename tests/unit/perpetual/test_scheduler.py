"""Unit tests for the deterministic round-robin scheduler extension."""

import itertools

from repro.common.ids import RequestId, ServiceId
from repro.perpetual.executor import (
    ExecutorRuntime,
    ReceiveRequest,
    ReplyEvent,
    RequestEvent,
    Send,
    SendReply,
)
from repro.perpetual.scheduler import round_robin


def make_runtime(app_factory):
    counter = itertools.count(1)
    return ExecutorRuntime(
        app_factory=app_factory,
        allocate_request_id=lambda: RequestId(ServiceId("me"), next(counter)),
    )


def request_event(seqno, payload):
    return RequestEvent(
        request_id=RequestId(ServiceId("caller"), seqno),
        caller="caller",
        payload=payload,
    )


def test_two_services_multiplexed():
    """Two logical services in one replica, partitioned by payload kind."""
    log = []

    def ping_thread():
        while True:
            event = yield ReceiveRequest()
            log.append(("ping", event.payload["n"]))
            yield SendReply(event, "pong")

    def sum_thread():
        total = 0
        while True:
            event = yield ReceiveRequest()
            total += event.payload["n"]
            log.append(("sum", total))
            yield SendReply(event, total)

    app = round_robin([
        ("ping", ping_thread, lambda p: p.get("kind") == "ping"),
        ("sum", sum_thread, lambda p: p.get("kind") == "sum"),
    ])
    runtime = make_runtime(app)
    runtime.step()
    runtime.deliver_request(request_event(1, {"kind": "sum", "n": 5}))
    runtime.step()
    runtime.deliver_request(request_event(2, {"kind": "ping", "n": 1}))
    runtime.step()
    runtime.deliver_request(request_event(3, {"kind": "sum", "n": 7}))
    runtime.step()
    assert log == [("sum", 5), ("ping", 1), ("sum", 12)]


def test_replies_routed_to_issuing_thread():
    from repro.perpetual.executor import ReceiveReply

    log = []

    def thread_a():
        rid = yield Send("t", "a")
        event = yield ReceiveReply(rid)
        log.append(("a", event.payload))

    def thread_b():
        rid = yield Send("t", "b")
        event = yield ReceiveReply(rid)
        log.append(("b", event.payload))

    app = round_robin([
        ("a", thread_a, lambda p: False),
        ("b", thread_b, lambda p: False),
    ])
    runtime = make_runtime(app)
    runtime.step()
    outbox = runtime.take_outbox()
    assert len(outbox.sends) == 2
    (rid_a, send_a), (rid_b, send_b) = outbox.sends
    assert (send_a.payload, send_b.payload) == ("a", "b")
    # Deliver b's reply first: it must wake thread b, not thread a.
    runtime.deliver_reply(ReplyEvent(rid_b, "reply-b"))
    runtime.step()
    runtime.deliver_reply(ReplyEvent(rid_a, "reply-a"))
    runtime.step()
    assert sorted(log) == [("a", "reply-a"), ("b", "reply-b")]
    assert log[0] == ("b", "reply-b")


def test_determinism_across_instances():
    def make(log):
        def ping():
            while True:
                event = yield ReceiveRequest()
                log.append(("p", event.payload["n"]))
                yield SendReply(event, None)

        def pong():
            while True:
                event = yield ReceiveRequest()
                log.append(("q", event.payload["n"]))
                yield SendReply(event, None)

        return round_robin([
            ("ping", ping, lambda p: p["n"] % 2 == 0),
            ("pong", pong, lambda p: p["n"] % 2 == 1),
        ])

    logs = ([], [])
    for log in logs:
        runtime = make_runtime(make(log))
        runtime.step()
        for n in range(6):
            runtime.deliver_request(request_event(n + 1, {"n": n}))
            runtime.step()
    assert logs[0] == logs[1]
