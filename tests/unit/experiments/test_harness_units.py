"""Unit tests for experiment harness plumbing and the CLI."""

import pytest

from repro.experiments.ablations import ReplyPathRow, reply_path_ablation
from repro.experiments.cli import main
from repro.experiments.microbench import MicrobenchResult


class TestMicrobenchResult:
    def make(self, **overrides):
        defaults = dict(
            n_calling=4, n_target=4, window=1, cpu_ms=0, completed=100,
            aborted=0, duration_s=2.0, throughput_rps=50.0,
            ms_per_request=20.0,
        )
        defaults.update(overrides)
        return MicrobenchResult(**defaults)

    def test_row_contains_key_figures(self):
        row = self.make().row()
        assert "nc=4" in row and "nt=4" in row
        assert "50.0 req/s" in row

    def test_frozen(self):
        result = self.make()
        with pytest.raises(AttributeError):
            result.completed = 7


class TestReplyPathRow:
    def test_formulas(self):
        row = ReplyPathRow(n_target=4, n_calling=4)
        assert row.responder_messages == 3 + 4
        assert row.all_to_all_messages == 16

    def test_savings_grow_with_scale(self):
        small = ReplyPathRow(4, 4).savings_factor
        large = ReplyPathRow(10, 10).savings_factor
        assert large > small

    def test_grid_covers_all_pairs(self):
        rows = reply_path_ablation((1, 4))
        pairs = {(r.n_target, r.n_calling) for r in rows}
        assert pairs == {(1, 1), (1, 4), (4, 1), (4, 4)}


class TestCli:
    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Perpetual-WS" in out

    def test_ablations_reply_path_only_output(self, capsys):
        # Use a tiny calls budget to keep this a unit-scale test.
        assert main(["ablations", "--calls", "5"]) == 0
        out = capsys.readouterr().out
        assert "responder bundling" in out
        assert "MAC vs signatures" in out

    def test_fig7_tiny(self, capsys):
        assert main(["fig7", "--calls", "3", "--groups", "1"]) == 0
        out = capsys.readouterr().out
        assert "req/s" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
