"""The application registry: named, parameterised app factories.

A :class:`~repro.scenario.spec.AppSpec` references applications by
registry name with JSON-safe parameters, which is what keeps a
:class:`~repro.scenario.spec.ScenarioSpec` serialisable and lets the
multi-process runtime rebuild the same application inside a worker
process from nothing but the spec document.

``build_app`` returns a :class:`BuiltApp`: the WS-level generator factory
plus an optional *probe* — a zero-argument callable returning JSON-safe
observability counters (workload completions, TPC-W interaction counts,
saga logs). Probes are how application-level results travel back through
:meth:`Runtime.metrics`, including across process boundaries.

Builders lazy-import their application modules so that importing
:mod:`repro.scenario` stays cheap and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.common.errors import ConfigurationError
from repro.crypto.cost import (
    MAC_COST_MODEL,
    SIGNATURE_COST_MODEL,
    CryptoCostModel,
)

WsAppFactory = Callable[[], Generator[Any, Any, None]]
Probe = Callable[[], dict]


@dataclass
class BuiltApp:
    """A constructed application: factory plus optional metrics probe."""

    factory: WsAppFactory
    probe: Probe | None = None


_APP_BUILDERS: dict[str, Callable[[dict], BuiltApp]] = {}


def register_app(kind: str) -> Callable:
    """Register a builder: ``(params: dict) -> BuiltApp`` under ``kind``."""

    def decorator(builder: Callable[[dict], BuiltApp]) -> Callable[[dict], BuiltApp]:
        _APP_BUILDERS[kind] = builder
        return builder

    return decorator


def app_kinds() -> list[str]:
    return sorted(_APP_BUILDERS)


def build_app(spec) -> BuiltApp:
    """Instantiate the application an :class:`AppSpec` references."""
    builder = _APP_BUILDERS.get(spec.kind)
    if builder is None:
        raise ConfigurationError(
            f"unknown application kind {spec.kind!r} "
            f"(known: {', '.join(app_kinds())})"
        )
    try:
        return builder(dict(spec.params))
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(
            f"bad parameters for application {spec.kind!r}: {exc!r}"
        ) from exc


# ---------------------------------------------------------------------------
# Crypto cost models (referenced by name from ScenarioSpec.crypto)
# ---------------------------------------------------------------------------

#: Model names every process (including freshly spawned workers) knows.
BUILTIN_COST_MODELS = frozenset((MAC_COST_MODEL.name, SIGNATURE_COST_MODEL.name))

_COST_MODELS: dict[str, CryptoCostModel] = {
    MAC_COST_MODEL.name: MAC_COST_MODEL,
    SIGNATURE_COST_MODEL.name: SIGNATURE_COST_MODEL,
}


def register_cost_model(model: CryptoCostModel) -> str:
    """Register ``model`` under its own name; returns the name."""
    _COST_MODELS[model.name] = model
    return model.name


def resolve_cost_model(name: str, params: dict | None = None) -> CryptoCostModel:
    """The cost model ``name`` refers to.

    With ``params`` (``sign_us`` / ``verify_us`` / ``per_receiver_us``)
    the model is constructed directly from them — the self-describing
    form a :class:`ScenarioSpec` uses so custom models survive the trip
    into spawned worker processes, where this registry starts empty.
    """
    if params is not None:
        try:
            return CryptoCostModel(name=name, **params)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad crypto cost parameters for {name!r}: {exc}"
            ) from exc
    model = _COST_MODELS.get(name)
    if model is None:
        raise ConfigurationError(
            f"unknown crypto cost model {name!r} "
            f"(known: {', '.join(sorted(_COST_MODELS))})"
        )
    return model


def scenario_cost_model(spec, decl) -> CryptoCostModel:
    """The cost model one service of a scenario runs under.

    A per-service ``crypto`` override names a registered model; the
    scenario-wide default honours ``spec.crypto_params``.
    """
    if decl.crypto is not None:
        return resolve_cost_model(decl.crypto)
    return resolve_cost_model(spec.crypto, spec.crypto_params)


# ---------------------------------------------------------------------------
# Built-in applications
# ---------------------------------------------------------------------------


@register_app("echo")
def _build_echo(params: dict) -> BuiltApp:
    from repro.apps.echo import echo_app

    return BuiltApp(factory=echo_app)


@register_app("counter")
def _build_counter(params: dict) -> BuiltApp:
    from repro.apps.counter import counter_app

    return BuiltApp(factory=counter_app)


@register_app("digest")
def _build_digest(params: dict) -> BuiltApp:
    from repro.apps.digest import digest_app

    return BuiltApp(factory=digest_app)


def _recorder_probe(recorder) -> Probe:
    return lambda: {"completed": recorder.completed, "faults": recorder.faults}


@register_app("sync_caller")
def _build_sync_caller(params: dict) -> BuiltApp:
    from repro.apps.workloads import CompletionRecorder, sync_closed_loop_caller

    recorder = CompletionRecorder()
    factory = sync_closed_loop_caller(
        target=params["target"],
        total_calls=int(params["total_calls"]),
        recorder=recorder,
        body=params.get("body") or {},
        timeout_ms=params.get("timeout_ms"),
    )
    return BuiltApp(factory=factory, probe=_recorder_probe(recorder))


@register_app("async_caller")
def _build_async_caller(params: dict) -> BuiltApp:
    from repro.apps.workloads import CompletionRecorder, async_window_caller

    recorder = CompletionRecorder()
    factory = async_window_caller(
        target=params["target"],
        total_calls=int(params["total_calls"]),
        window=int(params.get("window", 1)),
        recorder=recorder,
        body=params.get("body") or {},
        timeout_ms=params.get("timeout_ms"),
    )
    return BuiltApp(factory=factory, probe=_recorder_probe(recorder))


@register_app("bank")
def _build_bank(params: dict) -> BuiltApp:
    from repro.apps.payment import DEFAULT_CARD_LIMIT_CENTS, bank_app

    limit = int(params.get("card_limit_cents", DEFAULT_CARD_LIMIT_CENTS))
    return BuiltApp(factory=lambda: bank_app(card_limit_cents=limit))


@register_app("pge")
def _build_pge(params: dict) -> BuiltApp:
    from repro.apps.payment import pge_app

    return BuiltApp(
        factory=pge_app(
            bank_endpoint=params.get("bank_endpoint", "bank"),
            synchronous=bool(params.get("synchronous", False)),
        )
    )


@register_app("bookstore")
def _build_bookstore(params: dict) -> BuiltApp:
    from repro.tpcw.bookstore import BookstoreStats, bookstore_app
    from repro.tpcw.model import BookstoreDatabase

    db = BookstoreDatabase(seed=int(params.get("seed", 11)))
    stats = BookstoreStats()
    factory = bookstore_app(
        db,
        stats,
        pge_endpoint=params.get("pge_endpoint", "pge"),
        synchronous_pge=bool(params.get("synchronous_pge", False)),
    )

    def probe() -> dict:
        return {
            "interactions": stats.interactions,
            "pge_calls": stats.pge_calls,
            "approved": stats.approved,
            "declined": stats.declined,
        }

    return BuiltApp(factory=factory, probe=probe)


@register_app("rbe")
def _build_rbe(params: dict) -> BuiltApp:
    from repro.tpcw.interactions import PAPER_MIX, Mix
    from repro.tpcw.rbe import THINK_TIME_MEAN_US, rbe_app

    mix_data = params.get("mix")
    if mix_data is None:
        mix = PAPER_MIX
    else:
        mix = Mix(
            name=mix_data["name"],
            weights=tuple((page, weight) for page, weight in mix_data["weights"]),
        )
    return BuiltApp(
        factory=rbe_app(
            rbe_index=int(params["rbe_index"]),
            bookstore_endpoint=params.get("bookstore_endpoint", "bookstore"),
            mix=mix,
            seed=int(params.get("seed", 11)),
            think_time_mean_us=int(
                params.get("think_time_mean_us", THINK_TIME_MEAN_US)
            ),
        )
    )


@register_app("orchestrator")
def _build_orchestrator(params: dict) -> BuiltApp:
    from repro.apps.orchestrator import orchestrator_app

    log: list = []
    factory = orchestrator_app(
        orders=list(params["orders"]),
        inventory_endpoint=params.get("inventory_endpoint", "inventory"),
        payment_endpoint=params.get("payment_endpoint", "payment"),
        shipping_endpoint=params.get("shipping_endpoint", "shipping"),
        log=log,
    )

    def probe() -> dict:
        # One [order_id, outcome, started_at_ms] entry per completed saga,
        # repeated once per orchestrator replica (the demo counts copies).
        return {"sagas": [list(entry) for entry in log]}

    return BuiltApp(factory=factory, probe=probe)


@register_app("inventory")
def _build_inventory(params: dict) -> BuiltApp:
    from repro.apps.orchestrator import inventory_app

    return BuiltApp(factory=inventory_app(dict(params.get("stock") or {})))


@register_app("shipping")
def _build_shipping(params: dict) -> BuiltApp:
    from repro.apps.orchestrator import shipping_app

    return BuiltApp(factory=shipping_app())
