"""The threaded substrate: scenarios on one OS thread per protocol node.

``ThreadedRuntime`` executes the same :class:`~repro.scenario.spec
.ScenarioSpec` the simulator runs, but on the
:class:`~repro.runtime.cluster.ThreadedCluster`: every voter and driver
gets a consumer thread, messages race through thread-safe mailboxes, and
timers fire from a shared wheel. There is no modelled network — latency
parameters in the spec are ignored (real queues are the network) — and
``link`` faults are rejected as unsupported (they parameterise the
modelled network, which only the simulator has). ``crash`` faults map to
:meth:`ThreadedCluster.drop_node` on the replica's voter/driver pair;
``byzantine``, ``delay``, ``partition``, and ``restart`` faults run
through the same :class:`repro.faults.FaultInjector` hooks as every
other substrate.

``run`` starts the cluster and parks until quiescence (every mailbox
stays empty) or the wall-clock budget elapses, then reports the same
:class:`~repro.scenario.runtime.ScenarioMetrics` shape as every other
substrate.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.common.encoding import clear_wire_caches
from repro.common.metrics import METRICS
from repro.crypto.keys import KeyStore
from repro.faults import FaultPlan, require_supported_kinds
from repro.perpetual.group import ServiceGroup, Topology
from repro.perpetual.voter import driver_name, voter_name
from repro.runtime.cluster import ThreadedCluster
from repro.runtime.deploy import deploy_threaded_service
from repro.scenario.apps import BuiltApp, build_app, scenario_cost_model
from repro.scenario.runtime import (
    Runtime,
    ScenarioMetrics,
    ServiceMetrics,
    observer_index,
)
from repro.scenario.spec import ScenarioSpec
from repro.sharding import build_router
from repro.ws.adapter import WsAdapter, collecting_executor_factory


class ThreadedRuntime(Runtime):
    """Executes scenarios on real threads with racy interleavings."""

    name = "threaded"

    def __init__(self, debug_locks: bool = False) -> None:
        #: Lock sanitizer (repro.runtime.sanitizer): wrap the cluster's
        #: shared structures in assert-owner proxies so the static
        #: guarded-by annotations are checked on every mutation.
        self.debug_locks = debug_locks
        self.cluster: ThreadedCluster | None = None
        self._spec: ScenarioSpec | None = None
        self._groups: dict[str, ServiceGroup] = {}
        self._adapters: dict[str, list[WsAdapter]] = {}
        self._probes: dict[str, Callable[[], dict] | None] = {}
        self._epoch = 0.0
        self._metrics_base: dict[str, int] = {}
        self._router = None

    def _ws_factory(self, service: str, built: BuiltApp):
        return collecting_executor_factory(
            service, built.factory, self._adapters[service]
        )

    def _make_cluster(self):
        """Substrate hook: AsyncioRuntime deploys the same way onto an
        AioCluster (same add_node/drop_node/timers surface)."""
        return ThreadedCluster(debug_locks=self.debug_locks)

    def deploy(self, spec: ScenarioSpec) -> "ThreadedRuntime":
        spec.validate()
        require_supported_kinds(spec, ("link",), self.name)
        fault_plan = FaultPlan.from_spec(spec)
        # Sharded specs deploy every group onto this one cluster: each
        # node already owns a thread, so the groups' worker sets run
        # concurrently, and cross-group calls travel the same mailboxes
        # as local ones — routed, because every driver gets the router.
        router = build_router(spec)
        # Cold wire caches per deployment, as on every substrate.
        clear_wire_caches()
        cluster = self._make_cluster()
        topology = Topology()
        for decl in spec.all_services():
            topology.add(decl.name, decl.n)
        keys = KeyStore.for_deployment(spec.name)
        for decl in spec.all_services():
            built = build_app(decl.app)
            self._adapters[decl.name] = []
            self._probes[decl.name] = built.probe
            self._groups[decl.name] = deploy_threaded_service(
                cluster,
                topology,
                keys,
                decl.name,
                self._ws_factory(decl.name, built),
                cost_model=scenario_cost_model(spec, decl),
                clbft_overrides=decl.clbft,
                fault_plan=None if fault_plan.empty else fault_plan,
                batching=spec.batching,
                router=router,
                home_group=(
                    router.group_for_service(decl.name)
                    if router is not None else None
                ),
            )
        for fault in spec.all_faults():
            if fault.kind == "crash":
                cluster.drop_node(voter_name(fault.service, fault.index))
                cluster.drop_node(driver_name(fault.service, fault.index))
        self.cluster = cluster
        self._spec = spec
        self._router = router
        self._metrics_base = METRICS.snapshot()
        return self

    def _live_drivers(self):
        dropped = self.cluster.dropped
        for name, group in self._groups.items():
            for index, drv in enumerate(group.drivers):
                if driver_name(name, index) not in dropped:
                    yield drv

    def _settled(self) -> bool:
        """No in-flight out-calls and no armed timers.

        Mailbox quiescence alone is not completion: a crashed primary
        leaves progress waiting on view-change timers, and timer-driven
        workloads (TPC-W think times) idle between self-scheduled events
        — both with empty mailboxes for seconds. A scenario is settled
        only when the workload reports nothing outstanding *and* nothing
        is scheduled to wake up.
        """
        if self.cluster.timers_armed():
            return False
        return all(drv.in_flight_calls == 0 for drv in self._live_drivers())

    def run(self, until_s: float | None = None) -> None:
        self._epoch = time.monotonic()
        self.cluster.start()
        budget = self._spec.duration_s if until_s is None else until_s
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            if time.monotonic() - self._epoch < 0.3:
                # Warm-up: on_start traffic may not have been enqueued yet.
                time.sleep(0.02)
                continue
            remaining = max(deadline - time.monotonic(), 0.05)
            quiescent = self.cluster.await_quiescent(
                timeout_s=min(remaining, 1.0)
            )
            if not (quiescent and self._settled()):
                continue
            # Confirm over a second look: a handler may have been mid-run
            # (mailbox drained, state not yet updated) on the first.
            time.sleep(0.1)
            if self.cluster.mailboxes_empty() and self._settled():
                return

    def errors(self) -> list[BaseException]:
        """Exceptions raised inside node handler threads."""
        return self.cluster.errors()

    def metrics(self) -> ScenarioMetrics:
        services: dict[str, ServiceMetrics] = {}
        for name, group in self._groups.items():
            observer = observer_index(self._spec, name)
            driver = group.drivers[observer]
            voter = group.voters[observer]
            adapters = self._adapters[name]
            probe = self._probes.get(name)
            services[name] = ServiceMetrics(
                n=group.n,
                completed_calls=driver.completed_calls,
                aborted_calls=driver.aborted_calls,
                delivered_requests=voter.delivered_requests,
                requests_served=(
                    adapters[observer].requests_served
                    if len(adapters) > observer else voter.delivered_requests
                ),
                first_issue_us=driver.first_issue_us or 0,
                last_completion_us=driver.last_completion_us,
                view_changes=max(
                    v.replica.view_changes_completed for v in group.voters
                ),
                reply_cache_size=voter.reply_cache_size,
                app=probe() if probe is not None else {},
                group=self._spec.group_of(name) or (
                    self._router.group_for_service(name)
                    if self._router is not None else None
                ),
            )
        elapsed_us = int((time.monotonic() - self._epoch) * 1_000_000)
        snapshot = METRICS.snapshot()
        return ScenarioMetrics(
            scenario=self._spec.name,
            runtime=self.name,
            services=services,
            now_us=max(elapsed_us, 0),
            processes=1,
            counters={
                key: value - self._metrics_base.get(key, 0)
                for key, value in snapshot.items()
            },
        )

    def shutdown(self) -> None:
        if self.cluster is not None:
            self.cluster.shutdown()
            self.cluster = None
