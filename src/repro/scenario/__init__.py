"""One scenario API, three substrates.

``repro.scenario`` is the single deployment entry point of the
reproduction: a declarative, JSON-round-trippable
:class:`~repro.scenario.spec.ScenarioSpec` describes services, workload,
network model, crypto cost model, and fault injections once, and any
:class:`~repro.scenario.runtime.Runtime` substrate executes it:

- ``sim``      — the deterministic discrete-event kernel (all figures);
- ``threaded`` — one OS thread per protocol node, racy interleavings;
- ``process``  — one OS process per voter/driver pair, fused-codec
  envelopes over pipes (real parallelism).

Typical use::

    from repro.scenario import ScenarioBuilder, run_scenario

    spec = (
        ScenarioBuilder("demo")
        .service("target", n=4, app="echo")
        .service("caller", n=4, app="sync_caller",
                 target="target", total_calls=10)
        .build()
    )
    metrics = run_scenario(spec, runtime="process")

The figure generators, the TPC-W harness, the demos, and
``python -m repro.experiments run`` are all thin consumers of the presets
in :mod:`repro.scenario.presets`.

The spec schema, presets, fault kinds, and the ``batching`` knob are
documented in ``docs/scenarios.md``; substrate placement in the layer
map of ``docs/architecture.md``.
"""

from repro.scenario.apps import (
    BuiltApp,
    app_kinds,
    build_app,
    register_app,
    register_cost_model,
    resolve_cost_model,
)
from repro.scenario.runtime import (
    RUNTIME_NAMES,
    Runtime,
    ScenarioMetrics,
    ServiceMetrics,
    get_runtime,
    run_scenario,
)
from repro.scenario.spec import (
    AppSpec,
    FaultSpec,
    GroupSpec,
    NetworkSpec,
    RoutingSpec,
    ScenarioBuilder,
    ScenarioSpec,
    ServiceDecl,
)

__all__ = [
    "AppSpec",
    "BuiltApp",
    "FaultSpec",
    "GroupSpec",
    "NetworkSpec",
    "RoutingSpec",
    "RUNTIME_NAMES",
    "Runtime",
    "ScenarioBuilder",
    "ScenarioMetrics",
    "ScenarioSpec",
    "ServiceDecl",
    "ServiceMetrics",
    "app_kinds",
    "build_app",
    "get_runtime",
    "register_app",
    "register_cost_model",
    "resolve_cost_model",
    "run_scenario",
]
