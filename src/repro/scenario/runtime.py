"""The substrate-agnostic Runtime protocol.

A :class:`Runtime` executes a :class:`~repro.scenario.spec.ScenarioSpec`:

- ``deploy(spec)``  — construct every service's voter/driver replicas on
  the substrate (and arm fault injections);
- ``run(until_s)``  — drive the scenario (simulated seconds on the
  simulator; a wall-clock cap elsewhere — every substrate stops early at
  quiescence);
- ``metrics()``     — substrate-independent observation: per-service
  protocol counters plus application probe output;
- ``shutdown()``    — release threads/processes (idempotent).

Four implementations ship: :class:`repro.scenario.sim.SimRuntime`
(deterministic discrete-event kernel), :class:`repro.scenario.threaded
.ThreadedRuntime` (one OS thread per node), :class:`repro.scenario
.process.ProcessRuntime` (one OS process per voter/driver pair,
fused-codec envelopes over pipes or localhost TCP sockets), and
:class:`repro.scenario.aio.AsyncioRuntime` (every node a task on one
asyncio event loop). ``run_scenario`` is the one-call entry point the
figure generators, the TPC-W harness, and the CLI all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.scenario.spec import ScenarioSpec

RUNTIME_NAMES = ("sim", "threaded", "process", "asyncio")


def observer_index(spec: ScenarioSpec, service: str) -> int:
    """The replica whose driver reports a service's metrics.

    Replica 0 everywhere (the paper records at replica 0), unless a
    crash fault took it out — then the lowest live index observes, on
    every substrate identically.
    """
    crashed = {
        f.index for f in spec.all_faults()
        if f.kind == "crash" and f.service == service
    }
    n = spec.service(service).n
    for index in range(n):
        if index not in crashed:
            return index
    return 0


@dataclass
class ServiceMetrics:
    """Per-service observation, identical in shape on every substrate."""

    n: int = 0
    completed_calls: int = 0
    aborted_calls: int = 0
    delivered_requests: int = 0
    requests_served: int = 0
    first_issue_us: int = 0
    last_completion_us: int = 0
    #: CLBFT view changes completed (max over the group's live replicas).
    view_changes: int = 0
    #: Observer voter's reply-store size (bounded by checkpoint GC).
    reply_cache_size: int = 0
    #: Application probe output (workload counters, TPC-W stats, ...).
    app: dict = field(default_factory=dict)
    #: Home group in a sharded scenario (None on classic single-group
    #: runs, so unsharded metrics keep their exact pre-sharding shape).
    group: str | None = None


@dataclass
class ScenarioMetrics:
    """One scenario run's observation across all services."""

    scenario: str
    runtime: str
    services: dict[str, ServiceMetrics] = field(default_factory=dict)
    now_us: int = 0
    events_processed: int = 0
    #: OS processes hosting protocol nodes (1 for in-process substrates).
    processes: int = 1
    #: Delta of :data:`repro.common.metrics.METRICS` over this run
    #: (retransmissions, view_changes, faults_injected, cache_evictions,
    #: and the wire/kernel counters). Process runtimes sum their workers'
    #: snapshots.
    counters: dict = field(default_factory=dict)

    def total_completed(self) -> int:
        return sum(s.completed_calls for s in self.services.values())

    def total_aborted(self) -> int:
        return sum(s.aborted_calls for s in self.services.values())

    def by_group(self) -> dict[str | None, dict]:
        """Per-group aggregation, keyed by group name in first-seen
        (declaration) order; classic runs yield one ``None`` bucket."""
        out: dict[str | None, dict] = {}
        for name, svc in self.services.items():
            bucket = out.setdefault(
                svc.group,
                {"services": [], "completed_calls": 0, "aborted_calls": 0},
            )
            bucket["services"].append(name)
            bucket["completed_calls"] += svc.completed_calls
            bucket["aborted_calls"] += svc.aborted_calls
        return out


class Runtime:
    """Base class every scenario substrate implements."""

    name = "abstract"

    def deploy(self, spec: ScenarioSpec) -> "Runtime":
        raise NotImplementedError

    def run(self, until_s: float | None = None) -> None:
        raise NotImplementedError

    def metrics(self) -> ScenarioMetrics:
        raise NotImplementedError

    def shutdown(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def get_runtime(name: str) -> Runtime:
    """Construct a runtime by name: one of :data:`RUNTIME_NAMES`."""
    if name == "sim":
        from repro.scenario.sim import SimRuntime

        return SimRuntime()
    if name == "threaded":
        from repro.scenario.threaded import ThreadedRuntime

        return ThreadedRuntime()
    if name == "process":
        from repro.scenario.process import ProcessRuntime

        return ProcessRuntime()
    if name == "asyncio":
        from repro.scenario.aio import AsyncioRuntime

        return AsyncioRuntime()
    raise ConfigurationError(
        f"unknown runtime {name!r} (known: {', '.join(RUNTIME_NAMES)})"
    )


def run_scenario(
    spec: ScenarioSpec,
    runtime: str | Runtime = "sim",
    until_s: float | None = None,
) -> ScenarioMetrics:
    """Deploy, run, observe, and tear down one scenario on one substrate."""
    rt = get_runtime(runtime) if isinstance(runtime, str) else runtime
    rt.deploy(spec)
    try:
        rt.run(until_s)
        return rt.metrics()
    finally:
        rt.shutdown()
