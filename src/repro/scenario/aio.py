"""The asyncio substrate: scenarios as task groups on one event loop.

``AsyncioRuntime`` executes the same :class:`~repro.scenario.spec
.ScenarioSpec` as every other substrate, but on the
:class:`~repro.runtime.aio.AioCluster`: every voter and driver is a
consumer task with an ``asyncio.Queue`` inbox, and timers are
cancellable ``call_later`` handles that post back into the owning
node's inbox — the single-loop replica design (see the flexible-BFT
excerpt in SNIPPETS.md) that scales past the thread-per-node substrate
at high node counts.

Deployment is byte-for-byte the threaded substrate's: this class
subclasses :class:`~repro.scenario.threaded.ThreadedRuntime` and swaps
the cluster (``_make_cluster``) and the drive loop (``run``). Faults,
batching flush hooks, and sharded multi-group specs therefore work
identically — ``link`` faults stay rejected (no modelled network), and
``crash`` faults map to ``drop_node`` on the replica's voter/driver
pair.

``run`` owns the event loop: ``asyncio.run`` binds the cluster to the
fresh loop, spawns every consumer into an :class:`asyncio.TaskGroup`,
and a monitor coroutine parks until quiescence (no unprocessed events,
no armed timers, no in-flight out-calls) or the wall-clock budget
elapses, then stops the cluster. Because the loop is single threaded,
the quiescence check is exact — no handler can be mid-run while the
monitor holds the loop.
"""

from __future__ import annotations

import asyncio
import time

from repro.runtime.aio import AioCluster
from repro.scenario.threaded import ThreadedRuntime


class AsyncioRuntime(ThreadedRuntime):
    """Executes scenarios as node tasks on one asyncio event loop."""

    name = "asyncio"

    def __init__(self) -> None:
        # No lock sanitizer here: the loop is single threaded, so there
        # is nothing for assert-owner proxies to catch.
        super().__init__(debug_locks=False)

    def _make_cluster(self) -> AioCluster:
        return AioCluster()

    def run(self, until_s: float | None = None) -> None:
        self._epoch = time.monotonic()
        budget = self._spec.duration_s if until_s is None else until_s
        asyncio.run(self._drive(budget))

    async def _drive(self, budget: float) -> None:
        cluster = self.cluster
        cluster.bind_running_loop()
        async with asyncio.TaskGroup() as task_group:
            cluster.spawn(task_group)
            try:
                await self._monitor(budget)
            finally:
                # Reached quiescence, ran out of budget, or the monitor
                # failed: either way every consumer must be told to exit
                # or the task group would wait forever.
                cluster.request_stop()

    async def _monitor(self, budget: float) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + budget
        cluster = self.cluster
        while loop.time() < deadline:
            if not cluster.all_started():
                # Warm-up: consumer tasks have not all run on_start yet.
                await asyncio.sleep(0.01)
                continue
            if cluster.mailboxes_empty() and self._settled():
                # One short look back: a timer callback scheduled at the
                # exact boundary may land an event right after the check.
                await asyncio.sleep(0.05)
                if cluster.mailboxes_empty() and self._settled():
                    return
            else:
                await asyncio.sleep(0.01)
