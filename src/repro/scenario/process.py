"""The multi-process substrate: one OS process per voter/driver pair.

``ProcessRuntime`` places each replica's co-located voter/driver pair in
its own ``multiprocessing`` process, exactly the paper's placement of
both halves on one machine. Everything that crosses a process boundary
is a fused-codec :class:`~repro.transport.wire.WireEnvelope` — PR 1 made
that codec the full serialisation boundary, so protocol code runs
unchanged; local voter<->driver traffic stays inside the worker.

Wiring:

- the parent owns one duplex pipe per worker and runs two threads: a
  *router* that drains every worker's outbound frames (so worker sends
  never block) and an *egress* writer that owns all pipe writes (so a
  slow worker can stall only the egress queue, never the router — the
  classic pipe-buffer deadlock cannot form);
- protocol frames are ``b"net\\0" + src + b"\\0" + dst + b"\\0" +
  <canonical envelope bytes>`` — the router reads only the NUL-separated
  header and forwards the payload opaquely, so routing cost is O(header)
  rather than a full decode per hop; control frames (``ready`` / ``go``
  / ``poll`` / ``stats`` / ``stop`` / ``bye``) are small canonical-codec
  tuples;
- each worker bootstrap zeroes METRICS and then calls
  :func:`repro.common.encoding.clear_wire_caches` before touching any
  frame: the decode memos and blob caches are keyed on object identity
  and must never cross a process boundary (under the default ``fork``
  start method the parent's caches arrive in the child's memory
  otherwise). The clear bumps the ``wire_cache_clears`` counter, so the
  summed worker stats prove every start path ran the hook;
- the ``transport`` knob selects how workers rendezvous with the
  parent: ``"pipe"`` (the default — one duplex ``multiprocessing`` pipe
  per worker) or ``"tcp"``, where the parent listens on an ephemeral
  localhost port and every worker dials back and speaks the same frames
  through the length-prefixed :class:`~repro.transport.socket_frame
  .SocketConnection`. The router, egress writer, and worker loop are
  byte-for-byte shared between the two — tcp is the off-box stepping
  stone (swap ``127.0.0.1`` for real host addresses and the same
  scenarios run across machines);
- ``crash`` faults are expressed by never spawning the replica's worker:
  a crashed machine never speaks; ``byzantine``, ``delay``,
  ``partition``, and ``restart`` faults travel inside the spec JSON and
  are rebuilt into :class:`repro.faults.FaultInjector` hooks by each
  worker's bootstrap. ``link`` faults parameterise the modelled network
  and are rejected (simulator-only).

``run`` polls worker counters until they are stable (quiescence) or the
wall-clock budget elapses; ``metrics`` performs one fresh poll so the
numbers are current even after ``run`` returned early.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import queue
import socket
import threading
import time
from collections import deque
from multiprocessing.connection import Connection, wait as connection_wait

from repro.common.encoding import canonical_encode, clear_wire_caches, decode_payload
from repro.common.errors import ConfigurationError
from repro.faults import require_supported_kinds
from repro.scenario.runtime import (
    Runtime,
    ScenarioMetrics,
    ServiceMetrics,
    observer_index,
)
from repro.scenario.spec import ScenarioSpec
from repro.sharding import build_router
from repro.transport.socket_frame import FrameError, SocketConnection
from repro.transport.wire import (
    BatchEnvelope,
    WireEnvelope,
    envelope_from_wire,
    envelope_to_wire,
)

#: How long deploy() waits for every worker's ready frame.
READY_TIMEOUT_S = 30.0
#: Counter-poll cadence during run().
POLL_INTERVAL_S = 0.15
#: Consecutive identical counter snapshots that count as quiescence.
QUIESCENT_POLLS = 3


def _frame(*parts) -> bytes:
    """A control frame: a small canonical-codec tuple."""
    return canonical_encode(parts)


_NET = b"net\x00"


def _net_frame(src: str, dst: str, envelope) -> bytes:
    """A protocol frame: routing header + opaque canonical envelope."""
    return b"".join(
        (
            _NET,
            src.encode("utf-8"), b"\x00",
            dst.encode("utf-8"), b"\x00",
            canonical_encode(envelope_to_wire(envelope)),
        )
    )


def _split_net_frame(data: bytes) -> tuple[str, str, bytes]:
    _, src, dst, payload = data.split(b"\x00", 3)
    return src.decode("utf-8"), dst.decode("utf-8"), payload


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _WorkerEnv:
    """Per-node environment with the SimNodeEnv surface, pipe-backed."""

    def __init__(self, host: "_WorkerHost", node_id) -> None:
        self._host = host
        self.node_id = node_id
        self._key = str(node_id)

    def now_us(self) -> int:
        return int((time.monotonic() - self._host.epoch) * 1_000_000)

    def now_ms(self) -> int:
        return self.now_us() // 1000

    def charge(self, cpu_us: int) -> None:
        """No-op: on a real process, CPU time is consumed by running."""

    def send(self, dst, msg, size_bytes: int = 256) -> None:
        self._host.dispatch(self._key, str(dst), msg)

    def local_deliver(self, dst, msg) -> None:
        self._host.enqueue_local(self._key, str(dst), msg)

    def set_timer(self, tag, delay_us: int) -> None:
        self._host.set_timer(self._key, tag, delay_us)

    def cancel_timer(self, tag) -> None:
        self._host.cancel_timer(self._key, tag)

    def timer_armed(self, tag) -> bool:
        return (self._key, tag) in self._host.timer_entries


class _WorkerHost:
    """One worker process: a voter/driver pair plus its event loop."""

    def __init__(self, conn: Connection) -> None:
        self.conn = conn
        self.epoch = time.monotonic()
        self.nodes: dict[str, object] = {}
        self.local: deque[tuple[str, str, object]] = deque()
        self.timer_heap: list[tuple[float, int, str, object, dict]] = []
        self.timer_entries: dict[tuple[str, object], dict] = {}
        self._timer_seq = 0
        self.errors: list[str] = []
        self.flush_nodes: dict[str, object] = {}

    def add_node(self, node_id, node) -> _WorkerEnv:
        key = str(node_id)
        self.nodes[key] = node
        if getattr(node, "wants_flush", False):
            self.flush_nodes[key] = node
        return _WorkerEnv(self, node_id)

    # -- node-facing plumbing ------------------------------------------------

    def dispatch(self, src: str, dst: str, msg) -> None:
        if dst in self.nodes:
            self.local.append((src, dst, msg))
            return
        if not isinstance(msg, (WireEnvelope, BatchEnvelope)):
            raise ConfigurationError(
                f"only wire envelopes may cross process boundaries, "
                f"got {type(msg).__name__} for {dst!r}"
            )
        self.conn.send_bytes(_net_frame(src, dst, msg))

    def enqueue_local(self, src: str, dst: str, msg) -> None:
        self.local.append((src, dst, msg))

    def set_timer(self, node_key: str, tag, delay_us: int) -> None:
        self.cancel_timer(node_key, tag)
        entry = {"cancelled": False}
        self.timer_entries[(node_key, tag)] = entry
        self._timer_seq += 1
        heapq.heappush(
            self.timer_heap,
            (
                time.monotonic() + delay_us / 1_000_000.0,
                self._timer_seq,
                node_key,
                tag,
                entry,
            ),
        )

    def cancel_timer(self, node_key: str, tag) -> None:
        entry = self.timer_entries.pop((node_key, tag), None)
        if entry is not None:
            entry["cancelled"] = True

    # -- event loop ----------------------------------------------------------

    def _deliver_local(self) -> None:
        # Tick batching: buffered channel output departs when the handler
        # that produced it returns, mirroring the simulator's kernel tick.
        flush_nodes = self.flush_nodes
        while self.local:
            src, dst, msg = self.local.popleft()
            node = self.nodes.get(dst)
            if node is None:
                continue
            try:
                node.on_message(src, msg)
                flusher = flush_nodes.get(dst)
                if flusher is not None:
                    flusher.on_flush()
            except Exception as exc:  # a faulty node must not kill the loop
                self.errors.append(repr(exc))
        now = time.monotonic()
        while self.timer_heap and self.timer_heap[0][0] <= now:
            _, _, node_key, tag, entry = heapq.heappop(self.timer_heap)
            if entry["cancelled"]:
                continue
            self.timer_entries.pop((node_key, tag), None)
            try:
                self.nodes[node_key].on_timer(tag)
                flusher = flush_nodes.get(node_key)
                if flusher is not None:
                    flusher.on_flush()
            except Exception as exc:
                self.errors.append(repr(exc))

    def loop(self, stats) -> None:
        """Serve frames and timers until the parent says stop."""
        while True:
            self._deliver_local()
            if self.local:
                timeout = 0.0
            elif self.timer_heap:
                timeout = min(
                    max(self.timer_heap[0][0] - time.monotonic(), 0.0), 0.05
                )
            else:
                timeout = 0.05
            if not self.conn.poll(timeout):
                continue
            # Drain every pending frame before handling, so inbound pipe
            # pressure is released promptly.
            frames = []
            try:
                while True:
                    frames.append(self.conn.recv_bytes())
                    if not self.conn.poll(0):
                        break
            except (EOFError, OSError, FrameError):
                return
            for data in frames:
                if data.startswith(_NET):
                    src, dst, payload = _split_net_frame(data)
                    self.local.append(
                        (src, dst, envelope_from_wire(decode_payload(payload)))
                    )
                    continue
                frame = decode_payload(data)
                kind = frame[0]
                if kind == "go":
                    self.epoch = time.monotonic()
                    for key, node in self.nodes.items():
                        try:
                            node.on_start()
                            flusher = self.flush_nodes.get(key)
                            if flusher is not None:
                                flusher.on_flush()
                        except Exception as exc:
                            self.errors.append(repr(exc))
                elif kind == "poll":
                    self.conn.send_bytes(_frame("stats", stats()))
                elif kind == "stop":
                    self.conn.send_bytes(_frame("stats", stats()))
                    self.conn.send_bytes(_frame("bye"))
                    return
            self._deliver_local()


def _worker_main(
    spec_json: str,
    service: str,
    index: int,
    conn: Connection | None,
    address: tuple[str, int] | None = None,
) -> None:
    """Bootstrap one voter/driver pair and serve its event loop.

    On the tcp transport ``conn`` is ``None`` and the worker dials
    ``address`` back to the parent's listener; the framed socket then
    speaks the exact pipe protocol. Bootstrap order matters: zero the
    fork-inherited METRICS first, then run :func:`clear_wire_caches` —
    the documented process-start hook — before touching any frame.
    Identity-keyed decode memos and blob caches inherited over ``fork``
    reference the parent's object graph and must never serve lookups in
    the child; clearing after the reset lets the hook's
    ``wire_cache_clears`` bump survive into this worker's stats frames,
    which is how tests pin the hook onto every start path.
    """
    from repro.common.metrics import METRICS

    # Forked counters arrive pre-incremented from the parent; zero them
    # so this worker's stats frames report only its own activity.
    METRICS.reset()
    clear_wire_caches()

    from repro.crypto.keys import KeyStore
    from repro.faults import FaultPlan
    from repro.perpetual.group import Topology, build_replica
    from repro.perpetual.voter import driver_name, voter_name
    from repro.scenario.apps import build_app, scenario_cost_model
    from repro.ws.adapter import WsAdapter, collecting_executor_factory

    if conn is None:
        conn = SocketConnection(socket.create_connection(address))

    spec = ScenarioSpec.from_json(spec_json)
    decl = spec.service(service)
    # Sharded specs rebuild the full routing table here: the topology
    # spans every group (the flat principal namespace routes cross-group
    # frames through the parent exactly like local ones), and the driver
    # gets the router handle plus its home group.
    from repro.sharding import build_router

    router = build_router(spec)
    topology = Topology()
    for s in spec.all_services():
        topology.add(s.name, s.n)
    keys = KeyStore.for_deployment(spec.name)
    built = build_app(decl.app)

    # The fault script rides inside the spec JSON: rebuild the plan here
    # so the adversary layer is identical to the in-process substrates.
    fault_plan = FaultPlan.from_spec(spec)

    host = _WorkerHost(conn)
    adapters: list[WsAdapter] = []
    voter, driver = build_replica(
        topology=topology,
        service=service,
        index=index,
        keys=keys,
        app_factory=collecting_executor_factory(service, built.factory, adapters),
        cost_model=scenario_cost_model(spec, decl),
        clbft_overrides=decl.clbft,
        fault_script=fault_plan.script_for(service, index),
        batching=spec.batching,
        router=router,
        home_group=(
            router.group_for_service(service) if router is not None else None
        ),
    )
    voter.attach(host.add_node(voter_name(service, index), voter))
    driver.attach(host.add_node(driver_name(service, index), driver))

    def stats() -> dict:
        data = {
            "pid": os.getpid(),
            "in_flight": driver.in_flight_calls,
            "timers_armed": len(host.timer_entries),
            "completed_calls": driver.completed_calls,
            "aborted_calls": driver.aborted_calls,
            "delivered_requests": voter.delivered_requests,
            "requests_served": adapters[0].requests_served if adapters else 0,
            "first_issue_us": driver.first_issue_us or 0,
            "last_completion_us": driver.last_completion_us,
            "view_changes": voter.replica.view_changes_completed,
            "reply_cache_size": voter.reply_cache_size,
            "counters": METRICS.snapshot(),
            "errors": list(host.errors),
        }
        if built.probe is not None:
            data["app"] = built.probe()
        return data

    conn.send_bytes(_frame("ready", service, index))
    try:
        host.loop(stats)
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class ProcessRuntime(Runtime):
    """Executes scenarios across real OS processes."""

    name = "process"

    def __init__(
        self,
        poll_interval_s: float = POLL_INTERVAL_S,
        transport: str = "pipe",
    ) -> None:
        if transport not in ("pipe", "tcp"):
            raise ConfigurationError(
                f"unknown transport {transport!r} (known: pipe, tcp)"
            )
        self.transport = transport
        self._poll_interval_s = poll_interval_s
        self._spec: ScenarioSpec | None = None
        self._procs: dict[tuple[str, int], multiprocessing.Process] = {}
        self._conns: dict[tuple[str, int], Connection] = {}
        self._alive: dict[Connection, tuple[str, int]] = {}
        #: Workers that were spawned and must report ready. On the pipe
        #: transport this mirrors ``self._conns`` (registered at spawn);
        #: on tcp, connections only appear when workers dial back, so
        #: readiness is tracked against the spawn set.
        self._expected: set[tuple[str, int]] = set()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stats: dict[tuple[str, int], dict] = {}
        self._stats_seq: dict[tuple[str, int], int] = {}
        self._byes: set[tuple[str, int]] = set()
        self._ready: set[tuple[str, int]] = set()
        self._lock = threading.Lock()
        self._egress: "queue.Queue" = queue.Queue()
        self._stopping = threading.Event()
        self._router_thread: threading.Thread | None = None
        self._egress_thread: threading.Thread | None = None
        self._epoch = 0.0
        #: Sharding routing table (None on classic single-group specs).
        self._router = None

    # -- deployment ----------------------------------------------------------

    def deploy(self, spec: ScenarioSpec) -> "ProcessRuntime":
        spec.validate()
        require_supported_kinds(spec, ("link",), self.name)
        # Fail fast on anything a worker could not rebuild from the spec
        # document alone, with the real error — a worker dying during
        # bootstrap would otherwise surface only as a ready-timeout 30
        # seconds later. The build_app results are deliberately discarded
        # (construction is the thorough parameter check).
        from repro.scenario.apps import (
            BUILTIN_COST_MODELS,
            build_app,
            scenario_cost_model,
        )

        for decl in spec.all_services():
            build_app(decl.app)
            scenario_cost_model(spec, decl)
            name = decl.crypto if decl.crypto is not None else spec.crypto
            self_describing = decl.crypto is None and spec.crypto_params is not None
            if name not in BUILTIN_COST_MODELS and not self_describing:
                raise ConfigurationError(
                    f"cost model {name!r} exists only in this process's "
                    "registry; worker processes cannot rebuild it — carry "
                    "it in the spec via crypto_params instead"
                )
        crashed = {
            (f.service, f.index) for f in spec.all_faults() if f.kind == "crash"
        }
        self._spec = spec
        self._router = build_router(spec)
        ctx = multiprocessing.get_context()
        spec_json = spec.to_json()
        # The router/egress threads start before the first spawn (they
        # idle happily on an empty connection table), so a spawn failure
        # part-way through the loop still leaves a fully functional
        # teardown path: shutdown() can broadcast stop, drain the pipes,
        # and join both threads — no orphans on partial startup.
        self._router_thread = threading.Thread(target=self._route, daemon=True)
        self._egress_thread = threading.Thread(target=self._drain_egress, daemon=True)
        self._router_thread.start()
        self._egress_thread.start()
        if self.transport == "tcp":
            # Ephemeral localhost rendezvous: workers dial back and their
            # first frame (ready) identifies them to the acceptor.
            self._listener = socket.create_server(("127.0.0.1", 0))
            self._listener.settimeout(0.2)
            self._accept_thread = threading.Thread(
                target=self._accept, daemon=True
            )
            self._accept_thread.start()
        try:
            for decl in spec.all_services():
                for index in range(decl.n):
                    if (decl.name, index) in crashed:
                        continue  # a crashed machine is simply never started
                    self._start_worker(ctx, spec_json, decl.name, index)

            deadline = time.monotonic() + READY_TIMEOUT_S
            while time.monotonic() < deadline:
                with self._lock:
                    if self._ready == self._expected:
                        break
                time.sleep(0.01)
            else:
                missing = sorted(self._expected - self._ready)
                raise ConfigurationError(
                    f"workers never became ready: {missing}"
                )
        except BaseException:
            self.shutdown()
            raise
        self._epoch = time.monotonic()
        self._broadcast("go")
        return self

    def _start_worker(
        self, ctx, spec_json: str, service: str, index: int
    ) -> None:
        """Spawn one replica's worker process and register its channel.

        Pipe transport: the duplex pipe exists before the child does, so
        the connection registers here. Tcp transport: the worker gets the
        listener's address and the acceptor thread registers the
        connection when the worker dials back with its ready frame.
        """
        if self.transport == "tcp":
            address = self._listener.getsockname()
            proc = ctx.Process(
                target=_worker_main,
                args=(spec_json, service, index, None, address),
                daemon=True,
                name=f"repro-{service}-{index}",
            )
            proc.start()
            with self._lock:
                self._procs[(service, index)] = proc
                self._expected.add((service, index))
            return
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(spec_json, service, index, child_conn),
            daemon=True,
            name=f"repro-{service}-{index}",
        )
        proc.start()
        child_conn.close()
        # The router/egress threads read these maps under self._lock;
        # writing under the same lock keeps the discipline local instead
        # of relying on thread start order.
        with self._lock:
            self._procs[(service, index)] = proc
            self._conns[(service, index)] = parent_conn
            self._alive[parent_conn] = (service, index)
            self._expected.add((service, index))

    def _accept(self) -> None:
        """Tcp transport only: register dial-back workers as they arrive.

        The worker's first frame is its ready tuple — reading it here
        (before the connection joins the router's alive set) doubles as
        the identification handshake, so the router never has to treat a
        half-known connection.
        """
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            sock.settimeout(READY_TIMEOUT_S)
            conn = SocketConnection(sock)
            try:
                hello = decode_payload(conn.recv_bytes())
            except (EOFError, OSError, TimeoutError, FrameError):
                conn.close()
                continue
            if hello[0] != "ready":
                conn.close()
                continue
            sock.settimeout(None)
            key = (hello[1], hello[2])
            with self._lock:
                self._conns[key] = conn
                self._alive[conn] = key
                self._ready.add(key)

    def worker_pids(self) -> list[int]:
        """PIDs of the worker processes (one per live voter/driver pair)."""
        return sorted(p.pid for p in self._procs.values())

    # -- parent threads ------------------------------------------------------

    def _owner(self, principal: str) -> tuple[str, int] | None:
        service, _, tail = principal.rpartition("/")
        if len(tail) >= 2 and tail[0] in ("v", "d") and tail[1:].isdigit():
            return (service, int(tail[1:]))
        return None

    def _route(self) -> None:
        """Drain every worker's outbound pipe; forward or record frames."""
        while not self._stopping.is_set():
            with self._lock:
                conns = list(self._alive)
            if not conns:
                time.sleep(0.02)
                continue
            for conn in connection_wait(conns, timeout=0.1):
                key = self._alive.get(conn)
                # Drain every frame this wakeup made available: a framed
                # socket read may decode several frames from one chunk,
                # after which the fd is no longer readable — frames left
                # in the decoder would otherwise never wake the selector.
                while True:
                    try:
                        data = conn.recv_bytes()
                    except (EOFError, OSError, FrameError):
                        with self._lock:
                            self._alive.pop(conn, None)
                        break
                    if data.startswith(_NET):
                        # O(header) routing: the envelope bytes stay opaque.
                        _, dst, _ = _split_net_frame(data)
                        owner = self._owner(dst)
                        if owner in self._conns and owner not in self._byes:
                            self._egress.put((owner, data))
                    else:
                        frame = decode_payload(data)
                        kind = frame[0]
                        if kind == "stats":
                            with self._lock:
                                self._stats[key] = frame[1]
                                self._stats_seq[key] = (
                                    self._stats_seq.get(key, 0) + 1
                                )
                        elif kind == "ready":
                            with self._lock:
                                self._ready.add((frame[1], frame[2]))
                        elif kind == "bye":
                            with self._lock:
                                self._byes.add(key)
                                self._alive.pop(conn, None)
                            break
                    if not conn.poll(0):
                        break

    def _drain_egress(self) -> None:
        """Single writer for every worker pipe (see module docstring)."""
        while True:
            item = self._egress.get()
            if item is None:
                return
            key, data = item
            conn = self._conns.get(key)
            if conn is None:
                continue
            try:
                conn.send_bytes(data)
            except (BrokenPipeError, OSError):
                pass

    def _broadcast(self, kind: str) -> None:
        data = _frame(kind)
        for key in self._conns:
            if key not in self._byes:
                self._egress.put((key, data))

    # -- running -------------------------------------------------------------

    def run(self, until_s: float | None = None) -> None:
        budget = self._spec.duration_s if until_s is None else until_s
        deadline = time.monotonic() + budget
        previous: dict | None = None
        stable = 0
        while time.monotonic() < deadline:
            # No worker exits before the stop broadcast: a dead process
            # here is a crash, and waiting out the budget on its frozen
            # counters would mask it.
            dead = sorted(
                key for key, proc in self._procs.items()
                if not proc.is_alive() and key not in self._byes
            )
            if dead:
                raise RuntimeError(f"worker processes died mid-run: {dead}")
            self._broadcast("poll")
            time.sleep(self._poll_interval_s)
            with self._lock:
                # "counters" is excluded from the stability comparison:
                # serving the poll itself runs the wire codec, so the
                # worker's METRICS snapshot moves on every poll and would
                # keep an idle cluster looking busy forever.
                snapshot = {
                    key: {k: v for k, v in stats.items()
                          if k not in ("pid", "counters")}
                    for key, stats in self._stats.items()
                }
            complete = len(snapshot) == len(self._conns)
            # Settled = counters stable over consecutive polls AND no
            # worker reports in-flight out-calls or armed timers (a
            # crashed primary idles the counters for seconds while view
            # changes pend; TPC-W think times idle between self-scheduled
            # events — neither is completion).
            settled = complete and all(
                stats.get("in_flight", 0) == 0
                and stats.get("timers_armed", 0) == 0
                for stats in snapshot.values()
            )
            if settled and snapshot == previous:
                stable += 1
                warmed = time.monotonic() - self._epoch >= 1.0
                if stable >= QUIESCENT_POLLS and warmed:
                    return
            else:
                stable = 0
            previous = snapshot

    # -- observation ---------------------------------------------------------

    def _refresh_stats(self, timeout_s: float = 2.0) -> None:
        with self._lock:
            alive = {self._alive[c] for c in self._alive}
            baseline = dict(self._stats_seq)
        if not alive:
            return
        self._broadcast("poll")
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if all(
                    self._stats_seq.get(key, 0) > baseline.get(key, 0)
                    for key in alive
                ):
                    return
            time.sleep(0.01)

    def metrics(self) -> ScenarioMetrics:
        self._refresh_stats()
        with self._lock:
            stats = {key: dict(value) for key, value in self._stats.items()}
        services: dict[str, ServiceMetrics] = {}
        for decl in self._spec.all_services():
            group = self._spec.group_of(decl.name) or (
                self._router.group_for_service(decl.name)
                if self._router is not None else None
            )
            # The same observer rule as every substrate (lowest live
            # replica); fall back to any reporting replica if the
            # observer's worker has no stats yet.
            observer = observer_index(self._spec, decl.name)
            data = stats.get((decl.name, observer))
            if data is None:
                indices = [i for (name, i) in stats if name == decl.name]
                if not indices:
                    services[decl.name] = ServiceMetrics(n=decl.n, group=group)
                    continue
                data = stats[(decl.name, min(indices))]
            services[decl.name] = ServiceMetrics(
                n=decl.n,
                completed_calls=data.get("completed_calls", 0),
                aborted_calls=data.get("aborted_calls", 0),
                delivered_requests=data.get("delivered_requests", 0),
                requests_served=data.get("requests_served", 0),
                first_issue_us=data.get("first_issue_us", 0),
                last_completion_us=data.get("last_completion_us", 0),
                view_changes=max(
                    (
                        value.get("view_changes", 0)
                        for (name, _i), value in stats.items()
                        if name == decl.name
                    ),
                    default=0,
                ),
                reply_cache_size=data.get("reply_cache_size", 0),
                app=dict(data.get("app") or {}),
                group=group,
            )
        # Counters sum across workers: each zeroes METRICS at bootstrap,
        # so the sum is exactly this run's activity.
        counters: dict[str, int] = {}
        for data in stats.values():
            for key, value in (data.get("counters") or {}).items():
                counters[key] = counters.get(key, 0) + value
        elapsed_us = int((time.monotonic() - self._epoch) * 1_000_000)
        return ScenarioMetrics(
            scenario=self._spec.name,
            runtime=self.name,
            services=services,
            now_us=max(elapsed_us, 0),
            processes=len(self._procs),
            counters=counters,
        )

    def worker_errors(self) -> dict[tuple[str, int], list[str]]:
        """Handler exceptions recorded inside each worker (diagnostics)."""
        with self._lock:
            return {
                key: list(stats.get("errors", ()))
                for key, stats in self._stats.items()
                if stats.get("errors")
            }

    # -- teardown ------------------------------------------------------------

    def shutdown(self) -> None:
        if self._stopping.is_set():
            return  # idempotent
        if self._procs:
            self._broadcast("stop")
            # Workers acknowledge with a final stats frame, a bye, and a
            # pipe close; the router drops closed pipes from the alive set.
            deadline = time.monotonic() + 3.0
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._alive:
                        break
                time.sleep(0.02)
            for proc in self._procs.values():
                proc.join(timeout=2.0)
            for proc in self._procs.values():
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
        # Always stop the parent threads — deploy() starts them even for
        # a scenario whose crash faults left zero workers to spawn.
        self._stopping.set()
        self._egress.put(None)
        if self._router_thread is not None:
            self._router_thread.join(timeout=2.0)
        if self._egress_thread is not None:
            self._egress_thread.join(timeout=2.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._procs = {}
