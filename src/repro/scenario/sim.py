"""The simulator substrate: ``SimRuntime`` and its deployment machinery.

This module owns the wiring that used to live in ``repro.ws.deployment``:
a :class:`Deployment` binds the discrete-event kernel, the key store, the
topology (the ``replicas.xml`` model), and the registry together, and
deploys services as :class:`~repro.perpetual.group.ServiceGroup`\\ s of
co-located voter/driver pairs. :class:`SimRuntime` executes a declarative
:class:`~repro.scenario.spec.ScenarioSpec` on top of it — the imperative
``Deployment`` surface remains available for tests and bespoke setups,
but every experiment entry point goes through scenarios.

The simulator is the only substrate with a modelled network, so it is
also the only one honouring latency parameters and ``link`` faults;
``crash`` faults cut the replica's voter and driver off the network (a
crashed machine never speaks again).
"""

from __future__ import annotations

from typing import Callable

from repro.common.encoding import clear_wire_caches
from repro.common.errors import ConfigurationError
from repro.common.metrics import METRICS
from repro.faults import FaultPlan
from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.crypto.keys import KeyStore
from repro.perpetual.executor import AppFactory
from repro.perpetual.group import ServiceGroup, Topology, deploy_service
from repro.perpetual.voter import driver_name, voter_name
from repro.scenario.apps import build_app, scenario_cost_model
from repro.scenario.runtime import (
    Runtime,
    ScenarioMetrics,
    ServiceMetrics,
    observer_index,
)
from repro.scenario.spec import ScenarioSpec
from repro.sim.kernel import Simulator, US_PER_S
from repro.sim.network import (
    FaultyLink,
    LanModel,
    NetworkModel,
    PartitionModel,
    UniformLatency,
)
from repro.soap.engine import SoapEngine
from repro.ws.adapter import (
    WsAdapter,
    WsAppFactory,
    collecting_executor_factory,
)
from repro.ws.descriptor import parse_replicas_xml
from repro.ws.registry import ServiceRegistry


class ServiceDeployment:
    """One deployed service: the replica group plus per-replica adapters."""

    def __init__(
        self,
        name: str,
        group: ServiceGroup,
        adapters: list[WsAdapter] | None = None,
    ) -> None:
        self.name = name
        self.group = group
        self.adapters = adapters or []

    @property
    def n(self) -> int:
        return self.group.n

    def completed_calls(self) -> int:
        return self.group.completed_calls()

    def aborted_calls(self) -> int:
        return self.group.aborted_calls()

    def requests_served(self) -> int:
        if self.adapters:
            return self.adapters[0].requests_served
        return self.group.delivered_requests()

    def engines(self) -> list[SoapEngine]:
        return [adapter.engine for adapter in self.adapters]


class Deployment:
    """A whole multi-tier Perpetual-WS system on one simulator."""

    def __init__(
        self,
        name: str = "deployment",
        network: NetworkModel | None = None,
        sim: Simulator | None = None,
    ) -> None:
        self.name = name
        self.sim = sim or Simulator()
        self.sim.set_network(network or LanModel())
        self.keys = KeyStore.for_deployment(name)
        self.topology = Topology()
        self.registry = ServiceRegistry()
        self.services: dict[str, ServiceDeployment] = {}
        self._declared: set[str] = set()

    # ------------------------------------------------------------------
    # Topology declaration
    # ------------------------------------------------------------------

    def declare(self, name: str, n: int) -> None:
        """Declare a service's replication degree before deploying it.

        All services must be declared before any is deployed, because
        every node needs the complete topology for quorum arithmetic
        (exactly the role of ``replicas.xml``).
        """
        spec = self.topology.add(name, n)
        self.registry.register(spec)
        self._declared.add(name)

    def declare_from_xml(self, replicas_xml: str | bytes) -> None:
        """Declare every service listed in a replicas.xml document."""
        for spec in parse_replicas_xml(replicas_xml):
            self.topology.specs[str(spec.service)] = spec
            self.registry.register(spec)
            self._declared.add(str(spec.service))

    # ------------------------------------------------------------------
    # Service deployment
    # ------------------------------------------------------------------

    def add_service(
        self,
        name: str,
        app: WsAppFactory,
        n: int | None = None,
        cost_model: CryptoCostModel = MAC_COST_MODEL,
        clbft_overrides: dict | None = None,
        engine_factory: Callable[[], SoapEngine] | None = None,
        hosts: list[str] | None = None,
        fault_plan=None,
        batching: str | int = "off",
        router=None,
        home_group: str | None = None,
    ) -> ServiceDeployment:
        """Deploy a WS-level application as a replicated service."""
        self._ensure_declared(name, n)
        adapters: list[WsAdapter] = []
        group = deploy_service(
            sim=self.sim,
            topology=self.topology,
            keys=self.keys,
            service=name,
            app_factory=collecting_executor_factory(
                name, app, adapters,
                engine_factory=engine_factory,
                resolve=self.registry.service_name,
            ),
            cost_model=cost_model,
            clbft_overrides=clbft_overrides,
            hosts=hosts,
            fault_plan=fault_plan,
            batching=batching,
            router=router,
            home_group=home_group,
        )
        deployed = ServiceDeployment(name=name, group=group, adapters=adapters)
        self.services[name] = deployed
        return deployed

    def add_raw_service(
        self,
        name: str,
        app_factory: AppFactory,
        n: int | None = None,
        cost_model: CryptoCostModel = MAC_COST_MODEL,
        clbft_overrides: dict | None = None,
    ) -> ServiceDeployment:
        """Deploy an executor-level application (no SOAP layer)."""
        self._ensure_declared(name, n)
        group = deploy_service(
            sim=self.sim,
            topology=self.topology,
            keys=self.keys,
            service=name,
            app_factory=app_factory,
            cost_model=cost_model,
            clbft_overrides=clbft_overrides,
        )
        deployed = ServiceDeployment(name=name, group=group)
        self.services[name] = deployed
        return deployed

    def _ensure_declared(self, name: str, n: int | None) -> None:
        if name not in self._declared:
            if n is None:
                raise ConfigurationError(
                    f"service {name!r} was never declared and no replication "
                    "degree was given"
                )
            self.declare(name, n)
        elif n is not None and self.topology.spec(name).n != n:
            raise ConfigurationError(
                f"service {name!r} declared with n={self.topology.spec(name).n} "
                f"but deployed with n={n}"
            )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, seconds: float | None = None, max_events: int | None = None) -> int:
        """Run the simulation (bounded by time and/or event count)."""
        until_us = None
        if seconds is not None:
            until_us = self.sim.now_us + int(seconds * US_PER_S)
        return self.sim.run(until_us=until_us, max_events=max_events)

    @property
    def now_us(self) -> int:
        return self.sim.now_us


# ---------------------------------------------------------------------------
# The scenario runtime on the simulator substrate
# ---------------------------------------------------------------------------


def build_network(spec: ScenarioSpec) -> tuple[NetworkModel, PartitionModel | None]:
    """The network model a spec describes, with fault wrappers applied.

    Returns the outermost model plus the partition layer (present only
    when the spec injects crash faults).
    """
    params = dict(spec.network.params)
    if spec.network.kind == "lan":
        model: NetworkModel = LanModel(**params)
    elif spec.network.kind == "uniform":
        model = UniformLatency(**params)
    else:
        raise ConfigurationError(f"unknown network kind {spec.network.kind!r}")

    link_faults = [f for f in spec.faults if f.kind == "link"]
    if link_faults:
        faulty = FaultyLink(model)
        for fault in link_faults:
            rule = dict(fault.params)
            src = rule.pop("src", "*")
            dst = rule.pop("dst", "*")
            faulty.add_rule(src, dst, **rule)
        model = faulty

    partition: PartitionModel | None = None
    if any(f.kind == "crash" for f in spec.faults):
        partition = PartitionModel(model)
        model = partition
    return model, partition


class SimRuntime(Runtime):
    """Executes scenarios on the deterministic discrete-event kernel.

    A sharded spec (``spec.groups`` non-empty) runs as one sub-kernel
    per group: ``run()`` deploys, runs, and observes each group's
    single-group slice (see :func:`repro.sharding.group_subspec`) on a
    fresh child ``SimRuntime`` in declaration order — sequential, so the
    METRICS counter windows of the groups never overlap — and
    ``metrics()`` merges the per-group observations deterministically.
    Single-group scenarios take the classic path below, untouched and
    bit-identical to previous releases. Cross-group calls cannot be
    simulated (each sub-kernel is a closed world); the live substrates
    execute them for real.
    """

    name = "sim"

    def __init__(self) -> None:
        self.deployment: Deployment | None = None
        self._spec: ScenarioSpec | None = None
        self._probes: dict[str, Callable[[], dict] | None] = {}
        self._metrics_base: dict[str, int] = {}
        #: Router injected into drivers (sharded sub-kernels only).
        self._router = None
        #: Sharded parent state: per-group (name, metrics) observations.
        self._group_parts: list[tuple[str, ScenarioMetrics]] | None = None

    def deploy(self, spec: ScenarioSpec) -> "SimRuntime":
        spec.validate()
        if spec.groups:
            # Sharded: plan only — each group's sub-kernel is deployed
            # lazily by run(), immediately before it runs.
            from repro.sharding import build_router

            self._spec = spec
            self._router = build_router(spec)
            self._group_parts = []
            return self
        # Every scenario starts with cold wire caches: runs measure equal
        # cache state and dead message graphs from earlier runs are freed.
        clear_wire_caches()
        network, partition = build_network(spec)
        fault_plan = FaultPlan.from_spec(spec)
        deployment = Deployment(name=spec.name, network=network)
        for decl in spec.services:
            deployment.declare(decl.name, decl.n)
        for decl in spec.services:
            built = build_app(decl.app)
            deployment.add_service(
                decl.name,
                built.factory,
                cost_model=scenario_cost_model(spec, decl),
                clbft_overrides=decl.clbft,
                hosts=list(decl.hosts) if decl.hosts is not None else None,
                fault_plan=None if fault_plan.empty else fault_plan,
                batching=spec.batching,
                router=self._router,
                home_group=(
                    self._router.group_for_service(decl.name)
                    if self._router is not None else None
                ),
            )
            self._probes[decl.name] = built.probe
        for fault in spec.faults:
            if fault.kind == "crash":
                partition.kill(voter_name(fault.service, fault.index))
                partition.kill(driver_name(fault.service, fault.index))
        self.deployment = deployment
        self._spec = spec
        self._metrics_base = METRICS.snapshot()
        return self

    def run(self, until_s: float | None = None) -> None:
        if self._group_parts is not None:
            from repro.sharding import group_subspec

            for group in self._spec.groups:
                child = SimRuntime()
                child._router = self._router
                child.deploy(group_subspec(self._spec, group, self._router))
                child.run(until_s)
                self._group_parts.append((group.name, child.metrics()))
            return
        self.deployment.run(
            seconds=self._spec.duration_s if until_s is None else until_s,
            max_events=self._spec.max_events,
        )

    def metrics(self) -> ScenarioMetrics:
        if self._group_parts is not None:
            from repro.sharding import merge_group_metrics

            return merge_group_metrics(
                self._spec.name, self.name, self._group_parts
            )
        services: dict[str, ServiceMetrics] = {}
        for name, deployed in self.deployment.services.items():
            observer = observer_index(self._spec, name)
            driver = deployed.group.drivers[observer]
            voter = deployed.group.voters[observer]
            probe = self._probes.get(name)
            services[name] = ServiceMetrics(
                n=deployed.n,
                completed_calls=driver.completed_calls,
                aborted_calls=driver.aborted_calls,
                delivered_requests=voter.delivered_requests,
                requests_served=(
                    deployed.adapters[observer].requests_served
                    if deployed.adapters else voter.delivered_requests
                ),
                first_issue_us=driver.first_issue_us or 0,
                last_completion_us=driver.last_completion_us,
                view_changes=max(
                    v.replica.view_changes_completed
                    for v in deployed.group.voters
                ),
                reply_cache_size=voter.reply_cache_size,
                app=probe() if probe is not None else {},
            )
        snapshot = METRICS.snapshot()
        return ScenarioMetrics(
            scenario=self._spec.name,
            runtime=self.name,
            services=services,
            now_us=self.deployment.now_us,
            events_processed=self.deployment.sim.events_processed,
            processes=1,
            counters={
                key: value - self._metrics_base.get(key, 0)
                for key, value in snapshot.items()
            },
        )

    def shutdown(self) -> None:
        """Nothing to release: the simulator is plain in-process state."""
