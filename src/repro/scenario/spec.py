"""Declarative scenario descriptions: one spec, any substrate.

A :class:`ScenarioSpec` is the deployment-wide description the paper keeps
in ``replicas.xml`` (section 5.2), extended with everything our
experiments used to hand-wire: services with replication degrees and
application factories (referenced *by name* through the registry in
:mod:`repro.scenario.apps`, so a spec stays JSON-serialisable), the
network model, the crypto cost model, fault injections, and a run budget.

Every runtime substrate — the deterministic simulator, the threaded
cluster, and the multi-process cluster — executes the same spec through
the :class:`repro.scenario.runtime.Runtime` protocol; nothing in a spec
names a substrate.

Specs round-trip through JSON (``to_json`` / ``from_json``), which is what
``python -m repro.experiments run --scenario file.json`` consumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.common.errors import ConfigurationError

FAULT_KINDS = ("crash", "link", "byzantine", "delay", "partition", "restart")
NETWORK_KINDS = ("lan", "uniform")

#: Client-routing policies accepted by ``RoutingSpec.policy`` (sharded
#: scenarios only): ``service_name`` pins every service to its declaring
#: group; ``consistent_hash`` additionally places top-level (ungrouped)
#: client services on a hash ring over the group names.
ROUTING_POLICIES = ("service_name", "consistent_hash")

#: Byzantine behaviours accepted by ``FaultSpec(kind="byzantine")``.
BYZANTINE_MODES = ("equivocate", "corrupt", "mute")

_LINK_PARAM_KEYS = frozenset({"src", "dst", "drop", "extra_delay_us"})


def _service_to_dict(s: "ServiceDecl") -> dict:
    return {
        "name": s.name,
        "n": s.n,
        "app": {"kind": s.app.kind, "params": s.app.params},
        "crypto": s.crypto,
        "hosts": list(s.hosts) if s.hosts is not None else None,
        "clbft": s.clbft,
    }


def _service_from_dict(s: dict) -> "ServiceDecl":
    return ServiceDecl(
        name=s["name"],
        n=s["n"],
        app=AppSpec(
            kind=s["app"]["kind"],
            params=dict(s["app"].get("params") or {}),
        ),
        crypto=s.get("crypto"),
        hosts=tuple(s["hosts"]) if s.get("hosts") is not None else None,
        clbft=s.get("clbft"),
    )


def _fault_to_dict(f: "FaultSpec") -> dict:
    return {
        "kind": f.kind,
        "service": f.service,
        "index": f.index,
        "params": f.params,
    }


def _fault_from_dict(f: dict) -> "FaultSpec":
    return FaultSpec(
        kind=f["kind"],
        service=f.get("service", ""),
        index=f.get("index", 0),
        params=dict(f.get("params") or {}),
    )


def _is_principal_of(name: str, services: tuple) -> bool:
    """True iff ``name`` is ``service/vN`` or ``service/dN`` with a
    declared service and in-range replica index."""
    service, sep, tail = name.rpartition("/")
    if (not sep or len(tail) < 2 or tail[0] not in ("v", "d")
            or not tail[1:].isdigit()):
        return False
    for decl in services:
        if decl.name == service:
            return int(tail[1:]) < decl.n
    return False


@dataclass(frozen=True)
class AppSpec:
    """An application factory reference: registry name plus parameters.

    ``params`` must stay JSON-safe; the registry builder receives it
    verbatim (in a worker process it is all the builder gets).
    """

    kind: str
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ServiceDecl:
    """One replicated service in a scenario."""

    name: str
    n: int
    app: AppSpec
    #: Per-service crypto cost model override (None = scenario-wide model).
    crypto: str | None = None
    #: Simulated host placement override (one entry per replica); the
    #: TPC-W setup runs every RBE on one host. Substrates without host
    #: modelling ignore it.
    hosts: tuple[str, ...] | None = None
    #: CLBFT configuration overrides passed to every replica's voter.
    clbft: dict | None = None


@dataclass(frozen=True)
class NetworkSpec:
    """The network model: ``lan`` (paper testbed) or ``uniform``.

    ``params`` feed the model constructor (``propagation_us``,
    ``ns_per_byte``, ``jitter_us`` for lan; ``latency_us`` for uniform).
    Real-parallelism substrates ignore latency parameters — their network
    is the actual machine.
    """

    kind: str = "lan"
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class FaultSpec:
    """One fault injection.

    Enforced on every substrate (sim, threaded, process — workers on the
    process substrate receive the fault script in their spawn payload):

    - ``crash``: replica ``index`` of ``service`` never speaks (its
      voter/driver pair is cut off — or, on the process substrate, never
      spawned);
    - ``byzantine``: replica ``index`` of ``service`` runs the scripted
      Byzantine behaviour in ``params["mode"]`` — ``"equivocate"``
      (conflicting pre-prepares to disjoint replica halves while
      primary), ``"corrupt"`` (garbled execution replies), or ``"mute"``
      (a slow-drip primary that stalls ordering until the CLBFT
      view-change timer fires); requires a group with f >= 1 (n >= 4);
    - ``delay``: replica ``index`` of ``service`` defers every outbound
      message by ``params["delay_us"]`` (+ optional deterministic
      ``jitter_us``);
    - ``partition``: splits ``service`` into ``params["side"]`` (replica
      indices) vs the rest from ``start_after_us`` (default 0) until the
      ``heal_after_us`` deadline;
    - ``restart``: replica ``index`` of ``service`` crashes at
      ``params["down_after_us"]`` (default 0) and rejoins at
      ``params["up_after_us"]``, catching up from retransmissions and
      stable checkpoints.

    **Simulator only** (the other substrates' network is the actual
    machine, so per-link shaping cannot be enforced; ThreadedRuntime and
    ProcessRuntime reject it with a ConfigurationError):

    - ``link``: per-link drop/delay rules, ``params`` holding ``src``,
      ``dst`` (principal names like ``"svc/v0"``/``"svc/d0"`` or ``"*"``
      wildcards), ``drop`` probability in [0, 1] and/or a non-negative
      ``extra_delay_us``.
    """

    kind: str
    service: str = ""
    index: int = 0
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class GroupSpec:
    """One independent BFT group in a sharded scenario.

    A group owns its services and its faults; nothing inside a group may
    address a principal of another group directly — cross-group traffic
    goes through the :class:`repro.sharding.Router` tier (rule SHARD001).
    Service names stay globally unique across the whole scenario, so the
    flat principal namespace (``svc/vN``/``svc/dN``) is unchanged.
    """

    name: str
    services: tuple[ServiceDecl, ...] = ()
    faults: tuple[FaultSpec, ...] = ()


@dataclass(frozen=True)
class RoutingSpec:
    """The client-routing policy of a sharded scenario.

    ``service_name`` (default): every service lives in the group that
    declares it; top-level services are not allowed. ``consistent_hash``:
    top-level services are clients assigned to a home group by a
    consistent-hash ring over the group names (``params["vnodes"]``
    virtual points per group, default 64, keyed by the client's service
    name).
    """

    policy: str = "service_name"
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, substrate-agnostic scenario description."""

    name: str
    services: tuple[ServiceDecl, ...] = ()
    network: NetworkSpec = field(default_factory=NetworkSpec)
    #: Scenario-wide crypto cost model name (see repro.scenario.apps).
    crypto: str = "mac"
    #: Explicit cost-model parameters (``sign_us``, ``verify_us``,
    #: ``per_receiver_us``). When set, the model is constructed from the
    #: spec itself rather than looked up in the process-local registry —
    #: required for custom models to reach spawned worker processes.
    crypto_params: dict | None = None
    faults: tuple[FaultSpec, ...] = ()
    #: Run budget: simulated seconds on the simulator, a wall-clock cap
    #: on real-parallelism substrates (both stop earlier at quiescence).
    duration_s: float = 60.0
    seed: int = 11
    #: Optional simulator event budget (None = unbounded).
    max_events: int | None = None
    #: Channel-layer batching: ``"off"`` (one envelope per message),
    #: ``"tick"`` (aggregate per destination within one kernel tick /
    #: handler invocation), or a positive integer flush window in µs
    #: (buffered messages flush when the window timer fires). See
    #: ``docs/scenarios.md``.
    batching: str | int = "off"
    #: Sharding: independent BFT groups, each with its own services and
    #: faults. Empty = classic single-group scenario (every existing
    #: spec; execution paths are untouched and stay bit-identical).
    groups: tuple[GroupSpec, ...] = ()
    #: Client-routing policy; required iff ``groups`` is non-empty.
    routing: RoutingSpec | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_sharded(self) -> bool:
        return bool(self.groups)

    def all_services(self) -> tuple[ServiceDecl, ...]:
        """Every service in declaration order: top-level, then groups."""
        return self.services + tuple(
            decl for group in self.groups for decl in group.services
        )

    def all_faults(self) -> tuple[FaultSpec, ...]:
        """Every fault in declaration order: top-level, then groups."""
        return self.faults + tuple(
            fault for group in self.groups for fault in group.faults
        )

    def group_of(self, service_name: str) -> str | None:
        """The declaring group's name, or None for top-level services."""
        for group in self.groups:
            for decl in group.services:
                if decl.name == service_name:
                    return group.name
        return None

    def service(self, name: str) -> ServiceDecl:
        for decl in self.all_services():
            if decl.name == name:
                return decl
        raise ConfigurationError(f"scenario {self.name!r} has no service {name!r}")

    def validate(self) -> "ScenarioSpec":
        """Check internal consistency; returns self for chaining."""
        seen: set[str] = set()
        for decl in self.all_services():
            if (not decl.name or "/" in decl.name or "\x00" in decl.name):
                # "/" delimits principal names (svc/vN), NUL delimits the
                # process runtime's wire-frame routing header.
                raise ConfigurationError(
                    f"invalid service name {decl.name!r}"
                )
            if decl.name in seen:
                # Also catches the same name declared in two groups: the
                # principal namespace (svc/vN) is scenario-global.
                raise ConfigurationError(f"duplicate service {decl.name!r}")
            seen.add(decl.name)
            if decl.n < 1:
                raise ConfigurationError(
                    f"service {decl.name!r} has replication degree {decl.n}"
                )
            if decl.hosts is not None and len(decl.hosts) != decl.n:
                raise ConfigurationError(
                    f"service {decl.name!r}: {len(decl.hosts)} hosts for "
                    f"{decl.n} replicas"
                )
        self._validate_sharding()
        if self.batching not in ("off", "tick") and not (
            isinstance(self.batching, int)
            and not isinstance(self.batching, bool)
            and self.batching > 0
        ):
            raise ConfigurationError(
                f"batching must be 'off', 'tick', or a positive flush "
                f"window in microseconds (got {self.batching!r})"
            )
        if self.network.kind not in NETWORK_KINDS:
            raise ConfigurationError(
                f"unknown network kind {self.network.kind!r} "
                f"(known: {', '.join(NETWORK_KINDS)})"
            )
        scoped_faults = [(fault, None) for fault in self.faults] + [
            (fault, group) for group in self.groups for fault in group.faults
        ]
        for fault, group in scoped_faults:
            if fault.kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {fault.kind!r} "
                    f"(known: {', '.join(FAULT_KINDS)})"
                )
            if fault.kind == "link":
                if group is None and self.groups:
                    # Each group runs its own (sub-)network; a link rule
                    # that is not group-scoped has no single network to
                    # attach to.
                    raise ConfigurationError(
                        "sharded scenarios must declare link faults "
                        "inside a group"
                    )
                self._validate_link_fault(
                    fault,
                    group.services if group is not None else self.services,
                )
                continue
            if group is not None and all(
                decl.name != fault.service for decl in group.services
            ):
                raise ConfigurationError(
                    f"{fault.kind} fault in group {group.name!r} names "
                    f"service {fault.service!r}, which the group does "
                    f"not declare"
                )
            # Every remaining kind names a (service, index) replica;
            # partition uses the service but addresses replicas via
            # params["side"].
            decl = self.service(fault.service)
            if fault.kind != "partition" and not 0 <= fault.index < decl.n:
                raise ConfigurationError(
                    f"{fault.kind} fault index {fault.index} out of range "
                    f"for service {fault.service!r} (n={decl.n})"
                )
            if fault.kind == "byzantine":
                mode = fault.params.get("mode", "equivocate")
                if mode not in BYZANTINE_MODES:
                    raise ConfigurationError(
                        f"unknown byzantine mode {mode!r} "
                        f"(known: {', '.join(BYZANTINE_MODES)})"
                    )
                if decl.n < 4:
                    raise ConfigurationError(
                        f"byzantine fault on service {fault.service!r} "
                        f"needs a group tolerating at least one fault "
                        f"(n >= 4, got n={decl.n})"
                    )
            elif fault.kind == "delay":
                delay_us = fault.params.get("delay_us")
                if not isinstance(delay_us, int) or delay_us < 1:
                    raise ConfigurationError(
                        f"delay fault on {fault.service!r}/{fault.index} "
                        f"needs a positive integer delay_us "
                        f"(got {delay_us!r})"
                    )
                jitter = fault.params.get("jitter_us", 0)
                if not isinstance(jitter, int) or jitter < 0:
                    raise ConfigurationError(
                        f"delay fault jitter_us must be a non-negative "
                        f"integer (got {jitter!r})"
                    )
            elif fault.kind == "partition":
                side = fault.params.get("side")
                if (not isinstance(side, (list, tuple)) or not side
                        or not all(isinstance(i, int) for i in side)):
                    raise ConfigurationError(
                        f"partition fault on service {fault.service!r} "
                        f"needs a non-empty integer list in params['side']"
                    )
                if not all(0 <= i < decl.n for i in side):
                    raise ConfigurationError(
                        f"partition side {list(side)} out of range for "
                        f"service {fault.service!r} (n={decl.n})"
                    )
                if len(set(side)) >= decl.n:
                    raise ConfigurationError(
                        f"partition side must be a proper subset of "
                        f"service {fault.service!r}'s replicas"
                    )
                start = fault.params.get("start_after_us", 0)
                heal = fault.params.get("heal_after_us")
                if (not isinstance(start, int) or start < 0
                        or not isinstance(heal, int) or heal <= start):
                    raise ConfigurationError(
                        f"partition fault on {fault.service!r} needs "
                        f"0 <= start_after_us < heal_after_us "
                        f"(got {start!r}, {heal!r})"
                    )
            elif fault.kind == "restart":
                down = fault.params.get("down_after_us", 0)
                up = fault.params.get("up_after_us")
                if (not isinstance(down, int) or down < 0
                        or not isinstance(up, int) or up <= down):
                    raise ConfigurationError(
                        f"restart fault on {fault.service!r}/{fault.index} "
                        f"needs 0 <= down_after_us < up_after_us "
                        f"(got {down!r}, {up!r})"
                    )
        return self

    def _validate_sharding(self) -> None:
        if not self.groups:
            if self.routing is not None:
                raise ConfigurationError(
                    "routing policy declared but the scenario has no groups"
                )
            return
        if self.routing is None:
            raise ConfigurationError(
                f"sharded scenario {self.name!r} needs a routing policy "
                f"(known: {', '.join(ROUTING_POLICIES)})"
            )
        if self.routing.policy not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {self.routing.policy!r} "
                f"(known: {', '.join(ROUTING_POLICIES)})"
            )
        vnodes = self.routing.params.get("vnodes", 64)
        if not isinstance(vnodes, int) or isinstance(vnodes, bool) or vnodes < 1:
            raise ConfigurationError(
                f"routing vnodes must be a positive integer (got {vnodes!r})"
            )
        seen_groups: set[str] = set()
        for group in self.groups:
            if not group.name or "/" in group.name or "\x00" in group.name:
                raise ConfigurationError(f"invalid group name {group.name!r}")
            if group.name in seen_groups:
                raise ConfigurationError(f"duplicate group {group.name!r}")
            seen_groups.add(group.name)
            if not group.services:
                raise ConfigurationError(
                    f"group {group.name!r} declares no services"
                )
        if self.services and self.routing.policy != "consistent_hash":
            raise ConfigurationError(
                f"top-level services {[s.name for s in self.services]} in a "
                f"sharded scenario need the consistent_hash routing policy "
                f"(service_name pins every service to a declaring group)"
            )

    def _validate_link_fault(
        self, fault: "FaultSpec", services: tuple[ServiceDecl, ...]
    ) -> None:
        unknown = set(fault.params) - _LINK_PARAM_KEYS
        if unknown:
            raise ConfigurationError(
                f"link fault has unknown params {sorted(unknown)} "
                f"(known: {sorted(_LINK_PARAM_KEYS)})"
            )
        for role in ("src", "dst"):
            endpoint = fault.params.get(role)
            if endpoint == "*":
                continue
            if not isinstance(endpoint, str) or not _is_principal_of(
                endpoint, services
            ):
                raise ConfigurationError(
                    f"link fault {role} {endpoint!r} names no principal: "
                    f"expected '*' or 'service/vN'/'service/dN' with a "
                    f"declared service and in-range replica index"
                )
        drop = fault.params.get("drop", 0.0)
        if not isinstance(drop, (int, float)) or not 0.0 <= drop <= 1.0:
            raise ConfigurationError(
                f"link fault drop probability must lie in [0, 1] "
                f"(got {drop!r})"
            )
        extra = fault.params.get("extra_delay_us", 0)
        if not isinstance(extra, int) or extra < 0:
            raise ConfigurationError(
                f"link fault extra_delay_us must be a non-negative "
                f"integer (got {extra!r})"
            )

    def _is_principal(self, name: str) -> bool:
        return _is_principal_of(name, self.all_services())

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "services": [_service_to_dict(s) for s in self.services],
            "network": {"kind": self.network.kind, "params": self.network.params},
            "crypto": self.crypto,
            "crypto_params": self.crypto_params,
            "faults": [_fault_to_dict(f) for f in self.faults],
            "duration_s": self.duration_s,
            "seed": self.seed,
            "max_events": self.max_events,
            "batching": self.batching,
            "groups": [
                {
                    "name": g.name,
                    "services": [_service_to_dict(s) for s in g.services],
                    "faults": [_fault_to_dict(f) for f in g.faults],
                }
                for g in self.groups
            ],
            "routing": (
                {"policy": self.routing.policy, "params": self.routing.params}
                if self.routing is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        try:
            network_data = data.get("network") or {}
            routing_data = data.get("routing")
            return cls(
                name=data["name"],
                services=tuple(
                    _service_from_dict(s) for s in data.get("services", ())
                ),
                network=NetworkSpec(
                    kind=network_data.get("kind", "lan"),
                    params=dict(network_data.get("params") or {}),
                ),
                crypto=data.get("crypto", "mac"),
                crypto_params=(
                    dict(data["crypto_params"])
                    if data.get("crypto_params") is not None else None
                ),
                faults=tuple(
                    _fault_from_dict(f) for f in data.get("faults", ())
                ),
                duration_s=data.get("duration_s", 60.0),
                seed=data.get("seed", 11),
                max_events=data.get("max_events"),
                batching=data.get("batching", "off"),
                groups=tuple(
                    GroupSpec(
                        name=g["name"],
                        services=tuple(
                            _service_from_dict(s) for s in g.get("services", ())
                        ),
                        faults=tuple(
                            _fault_from_dict(f) for f in g.get("faults", ())
                        ),
                    )
                    for g in data.get("groups", ())
                ),
                routing=(
                    RoutingSpec(
                        policy=routing_data.get("policy", "service_name"),
                        params=dict(routing_data.get("params") or {}),
                    )
                    if routing_data is not None else None
                ),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed scenario document: {exc}") from exc

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str | bytes) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"scenario is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A copy with the given top-level fields replaced."""
        return replace(self, **changes)


class ScenarioBuilder:
    """Fluent constructor for :class:`ScenarioSpec`.

    Example::

        spec = (
            ScenarioBuilder("two-tier")
            .network("lan", propagation_us=170)
            .crypto("mac")
            .service("target", n=4, app="counter")
            .service("caller", n=4, app="sync_caller",
                     target="target", total_calls=50)
            .crash("target", 2)
            .duration(60)
            .build()
        )
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._services: list[ServiceDecl] = []
        self._network = NetworkSpec()
        self._crypto = "mac"
        self._crypto_params: dict | None = None
        self._faults: list[FaultSpec] = []
        self._duration_s = 60.0
        self._seed = 11
        self._max_events: int | None = None
        self._batching: str | int = "off"
        #: group name -> declared services, in first-appearance order.
        self._group_services: dict[str, list[ServiceDecl]] = {}
        self._routing: RoutingSpec | None = None

    def service(
        self,
        name: str,
        n: int,
        app: str,
        crypto: str | None = None,
        hosts: list[str] | None = None,
        clbft: dict | None = None,
        group: str | None = None,
        **params: Any,
    ) -> "ScenarioBuilder":
        """Add a replicated service; ``params`` go to the app builder.

        ``group`` places the service in a named BFT group (creating the
        group on first use); None keeps it top-level.
        """
        decl = ServiceDecl(
            name=name,
            n=n,
            app=AppSpec(kind=app, params=params),
            crypto=crypto,
            hosts=tuple(hosts) if hosts is not None else None,
            clbft=clbft,
        )
        if group is None:
            self._services.append(decl)
        else:
            self._group_services.setdefault(group, []).append(decl)
        return self

    def routing(self, policy: str, **params: Any) -> "ScenarioBuilder":
        """Select the client-routing policy of a sharded scenario."""
        self._routing = RoutingSpec(policy=policy, params=params)
        return self

    def network(self, kind: str, **params: Any) -> "ScenarioBuilder":
        self._network = NetworkSpec(kind=kind, params=params)
        return self

    def crypto(self, model: str, **params: Any) -> "ScenarioBuilder":
        """Select the cost model by registry name, or define it inline
        (``sign_us`` / ``verify_us`` / ``per_receiver_us``)."""
        self._crypto = model
        self._crypto_params = params or None
        return self

    def crash(self, service: str, index: int) -> "ScenarioBuilder":
        """Crash replica ``index`` of ``service`` from the start."""
        self._faults.append(FaultSpec(kind="crash", service=service, index=index))
        return self

    def link_fault(self, src: str, dst: str, **params: Any) -> "ScenarioBuilder":
        """Inject per-link faults (``drop``, ``extra_delay_us``); sim only."""
        self._faults.append(
            FaultSpec(kind="link", params=dict(params, src=src, dst=dst))
        )
        return self

    def byzantine(
        self, service: str, index: int, mode: str = "equivocate"
    ) -> "ScenarioBuilder":
        """Script replica ``index`` of ``service`` as Byzantine
        (``equivocate`` / ``corrupt`` / ``mute``)."""
        self._faults.append(
            FaultSpec(kind="byzantine", service=service, index=index,
                      params={"mode": mode})
        )
        return self

    def delay(
        self, service: str, index: int, delay_us: int, jitter_us: int = 0
    ) -> "ScenarioBuilder":
        """Defer every message replica ``index`` of ``service`` sends."""
        params: dict = {"delay_us": delay_us}
        if jitter_us:
            params["jitter_us"] = jitter_us
        self._faults.append(
            FaultSpec(kind="delay", service=service, index=index, params=params)
        )
        return self

    def partition(
        self,
        service: str,
        side: list[int],
        heal_after_us: int,
        start_after_us: int = 0,
    ) -> "ScenarioBuilder":
        """Split ``service`` into ``side`` vs the rest until the heal
        deadline."""
        params: dict = {"side": list(side), "heal_after_us": heal_after_us}
        if start_after_us:
            params["start_after_us"] = start_after_us
        self._faults.append(
            FaultSpec(kind="partition", service=service, params=params)
        )
        return self

    def restart(
        self, service: str, index: int, up_after_us: int, down_after_us: int = 0
    ) -> "ScenarioBuilder":
        """Crash replica ``index`` of ``service`` at ``down_after_us``
        and bring it back at ``up_after_us``."""
        params: dict = {"up_after_us": up_after_us}
        if down_after_us:
            params["down_after_us"] = down_after_us
        self._faults.append(
            FaultSpec(kind="restart", service=service, index=index, params=params)
        )
        return self

    def duration(self, seconds: float) -> "ScenarioBuilder":
        self._duration_s = float(seconds)
        return self

    def seed(self, seed: int) -> "ScenarioBuilder":
        self._seed = seed
        return self

    def max_events(self, budget: int | None) -> "ScenarioBuilder":
        self._max_events = budget
        return self

    def batching(self, mode: str | int) -> "ScenarioBuilder":
        """Channel batching: ``"off"``, ``"tick"``, or a window in µs."""
        self._batching = mode
        return self

    def build(self) -> ScenarioSpec:
        groups, faults = self._partition_groups()
        routing = self._routing
        if groups and routing is None:
            routing = RoutingSpec()
        return ScenarioSpec(
            name=self._name,
            services=tuple(self._services),
            network=self._network,
            crypto=self._crypto,
            crypto_params=self._crypto_params,
            faults=faults,
            duration_s=self._duration_s,
            seed=self._seed,
            max_events=self._max_events,
            batching=self._batching,
            groups=groups,
            routing=routing,
        ).validate()

    def _partition_groups(self) -> tuple[tuple[GroupSpec, ...], tuple[FaultSpec, ...]]:
        """Assemble GroupSpecs and assign each declared fault to the
        group that owns its service (link faults: the group owning a
        concrete src/dst principal); the rest stay top-level."""
        if not self._group_services:
            return (), tuple(self._faults)
        owner = {
            decl.name: group
            for group, decls in self._group_services.items()
            for decl in decls
        }
        group_faults: dict[str, list[FaultSpec]] = {
            group: [] for group in self._group_services
        }
        top_level: list[FaultSpec] = []
        for fault in self._faults:
            group = None
            if fault.kind == "link":
                for role in ("src", "dst"):
                    endpoint = fault.params.get(role)
                    if isinstance(endpoint, str) and "/" in endpoint:
                        group = owner.get(endpoint.rpartition("/")[0])
                        if group is not None:
                            break
            else:
                group = owner.get(fault.service)
            if group is None:
                top_level.append(fault)
            else:
                group_faults[group].append(fault)
        groups = tuple(
            GroupSpec(
                name=group,
                services=tuple(decls),
                faults=tuple(group_faults[group]),
            )
            for group, decls in self._group_services.items()
        )
        return groups, tuple(top_level)
