"""Canonical scenario presets: every experiment as a ScenarioSpec.

These builders replace the hand-wiring the figure generators, the TPC-W
harness, and the demos used to do against the simulator directly. Each
returns a plain :class:`~repro.scenario.spec.ScenarioSpec`, so any preset
runs on any substrate (``sim`` / ``threaded`` / ``process``) and can be
dumped to JSON for ``python -m repro.experiments run --scenario``.

``PRESETS`` maps short names to zero-argument builders for the CLI.
"""

from __future__ import annotations

from typing import Callable

from repro.scenario.spec import FaultSpec, ScenarioBuilder, ScenarioSpec

#: Simulated-time budget of the micro-benchmarks (they end at quiescence).
MICROBENCH_DURATION_S = 600.0

#: The saga batch of the orchestration demo (examples/soa_orchestration.py).
DEMO_ORDERS = [
    {"order_id": 101, "item": "laptop", "qty": 1, "card": "4-alice",
     "amount_cents": 120_000},
    {"order_id": 102, "item": "laptop", "qty": 5, "card": "4-bob",
     "amount_cents": 600_000},   # not enough stock
    {"order_id": 103, "item": "phone", "qty": 1, "card": "4-carol",
     "amount_cents": 80_000_00},  # card limit exceeded -> compensation
    {"order_id": 104, "item": "phone", "qty": 1, "card": "4-dave",
     "amount_cents": 70_000},
]


def two_tier_scenario(
    n_calling: int,
    n_target: int,
    total_calls: int = 150,
    window: int = 1,
    cpu_ms: int = 0,
    crypto: str = "mac",
    crypto_params: dict | None = None,
    duration_s: float = MICROBENCH_DURATION_S,
    asynchronous: bool | None = None,
    batching: str | int = "off",
    name: str | None = None,
) -> ScenarioSpec:
    """The section 6.2 micro-benchmark pair (Figures 7, 8, and 9).

    ``cpu_ms == 0`` targets the increment null-operation service, positive
    values the digest service burning that much CPU per request.
    ``asynchronous`` selects the windowed caller of Figure 9 explicitly —
    the Figure 9 sweep uses it even at window=1, so its baseline exercises
    the same send/receive pattern as the rest of the series; the default
    picks it whenever ``window > 1``. ``batching`` is the channel-layer
    batching knob (``"off"`` | ``"tick"`` | window µs) — see
    ``docs/scenarios.md``.
    """
    if asynchronous is None:
        asynchronous = window > 1
    body = {"cpu_us": cpu_ms * 1000} if cpu_ms > 0 else {}
    builder = (
        ScenarioBuilder(name or f"micro-{n_calling}-{n_target}-{window}-{cpu_ms}")
        .crypto(crypto, **(crypto_params or {}))
        .duration(duration_s)
        .batching(batching)
        .service("target", n=n_target, app="digest" if cpu_ms > 0 else "counter")
    )
    if asynchronous:
        builder.service(
            "caller", n=n_calling, app="async_caller",
            target="target", total_calls=total_calls, window=window, body=body,
        )
    else:
        builder.service(
            "caller", n=n_calling, app="sync_caller",
            target="target", total_calls=total_calls, body=body,
        )
    return builder.build()


def echo_parity_scenario(
    n: int = 4,
    total_calls: int = 6,
    name: str | None = None,
    duration_s: float = 60.0,
    batching: str | int = "off",
) -> ScenarioSpec:
    """A small echo scenario used to assert substrate parity (n=4, f=1)."""
    return (
        ScenarioBuilder(name or f"echo-parity-{n}-{total_calls}")
        .duration(duration_s)
        .batching(batching)
        .service("target", n=n, app="echo")
        .service("caller", n=n, app="sync_caller",
                 target="target", total_calls=total_calls)
        .build()
    )


def tpcw_scenario(
    rbe_count: int,
    n_pge: int,
    n_bank: int | None = None,
    duration_s: float = 60.0,
    synchronous_pge: bool = False,
    synchronous_bookstore_pge_calls: bool | None = None,
    think_time_mean_us: int = 7_000_000,
    seed: int = 11,
    mix: dict | None = None,
    name: str | None = None,
) -> ScenarioSpec:
    """The Figure 5 / Figure 6 chain: RBEs -> bookstore -> PGE -> bank.

    ``n_bank`` defaults to ``n_pge`` (the paper replicates both tiers
    equally); ``mix`` optionally overrides the TPC-W interaction mix as
    ``{"name": ..., "weights": [[page, weight], ...]}``.
    """
    if n_bank is None:
        n_bank = n_pge
    if synchronous_bookstore_pge_calls is None:
        synchronous_bookstore_pge_calls = synchronous_pge
    builder = (
        ScenarioBuilder(
            name or f"tpcw-{rbe_count}-{n_pge}-{n_bank}-{synchronous_pge}"
        )
        .duration(duration_s)
        .seed(seed)
        .service("bank", n=n_bank, app="bank")
        .service("pge", n=n_pge, app="pge",
                 bank_endpoint="bank", synchronous=synchronous_pge)
        .service("bookstore", n=1, app="bookstore",
                 seed=seed, pge_endpoint="pge",
                 synchronous_pge=synchronous_bookstore_pge_calls)
    )
    # "All the RBEs were executed within a single host."
    for i in range(rbe_count):
        rbe_params = {
            "rbe_index": i,
            "bookstore_endpoint": "bookstore",
            "seed": seed,
            "think_time_mean_us": think_time_mean_us,
        }
        if mix is not None:
            rbe_params["mix"] = mix
        builder.service(f"rbe{i}", n=1, app="rbe",
                        hosts=["rbe-host"], **rbe_params)
    return builder.build()


def sharded_echo_scenario(
    group_count: int = 2,
    n: int = 4,
    total_calls: int = 6,
    duration_s: float = 60.0,
    name: str | None = None,
) -> ScenarioSpec:
    """Echo parity, sharded: one closed echo/caller pair per group.

    Group-closed (no cross-group calls), so the same workload runs on
    all three substrates — the simulator executes each group in its own
    sub-kernel. The 2-group flavour is the fig10 representative cell.
    """
    builder = ScenarioBuilder(
        name or f"sharded-echo-{group_count}-{n}-{total_calls}"
    ).duration(duration_s)
    for g in range(group_count):
        group = f"g{g}"
        builder.service(f"{group}-target", n=n, app="echo", group=group)
        builder.service(
            f"{group}-caller", n=n, app="sync_caller",
            target=f"{group}-target", total_calls=total_calls, group=group,
        )
    return builder.build()


#: The TPC-W interaction classes the sharded preset partitions traffic
#: by: each class becomes one group's mix (page weights sum to 100).
#: Page names match repro.tpcw.interactions (string literals here to keep
#: presets importable from the tpcw harness without a cycle).
TPCW_INTERACTION_CLASSES: tuple[dict, ...] = (
    {
        "name": "browse",
        "weights": [
            ["home", 30],
            ["new_products", 20],
            ["best_sellers", 15],
            ["product_detail", 35],
        ],
    },
    {
        "name": "search",
        "weights": [
            ["search_request", 35],
            ["search_results", 35],
            ["shopping_cart", 20],
            ["customer_registration", 10],
        ],
    },
    {
        "name": "order",
        "weights": [
            ["buy_request", 30],
            ["buy_confirm", 30],
            ["order_inquiry", 20],
            ["order_display", 20],
        ],
    },
)


def sharded_tpcw_scenario(
    group_count: int = 3,
    rbes_per_group: int = 3,
    n_pge: int = 4,
    n_bank: int | None = None,
    duration_s: float = 40.0,
    think_time_mean_us: int = 7_000_000,
    seed: int = 11,
    name: str = "sharded-tpcw",
) -> ScenarioSpec:
    """TPC-W split by interaction class across independent BFT groups.

    Each group runs its own bank -> PGE -> bookstore chain plus an RBE
    population driving one interaction class (browse / search / order,
    cycled when ``group_count`` exceeds the classes) — the
    millions-of-users shape: aggregate throughput scales with the number
    of groups because every group orders, executes, and thinks
    independently. ``service_name`` routing pins every service to its
    group, so the preset runs on all three substrates.
    """
    if n_bank is None:
        n_bank = n_pge
    builder = (
        ScenarioBuilder(name)
        .duration(duration_s)
        .seed(seed)
        .routing("service_name")
    )
    classes = TPCW_INTERACTION_CLASSES
    for g in range(group_count):
        group = f"g{g}"
        mix = classes[g % len(classes)]
        builder.service(f"{group}-bank", n=n_bank, app="bank", group=group)
        builder.service(
            f"{group}-pge", n=n_pge, app="pge", group=group,
            bank_endpoint=f"{group}-bank", synchronous=False,
        )
        builder.service(
            f"{group}-bookstore", n=1, app="bookstore", group=group,
            seed=seed + g, pge_endpoint=f"{group}-pge", synchronous_pge=False,
        )
        # One host per group's RBE population, as in the flat preset.
        for i in range(rbes_per_group):
            builder.service(
                f"{group}-rbe{i}", n=1, app="rbe", group=group,
                hosts=[f"{group}-rbe-host"],
                rbe_index=g * rbes_per_group + i,
                bookstore_endpoint=f"{group}-bookstore",
                seed=seed,
                think_time_mean_us=think_time_mean_us,
                mix=mix,
            )
    return builder.build()


def orchestration_scenario(
    orders: list[dict] | None = None,
    stock: dict[str, int] | None = None,
    card_limit_cents: int = 500_000,
    n: int = 4,
    duration_s: float = 180.0,
    name: str = "soa-orchestration",
) -> ScenarioSpec:
    """The SOA saga demo: replicated orchestrator over three services."""
    return (
        ScenarioBuilder(name)
        .duration(duration_s)
        .service("inventory", n=n, app="inventory",
                 stock=dict(stock if stock is not None
                            else {"laptop": 2, "phone": 1}))
        .service("payment", n=n, app="bank", card_limit_cents=card_limit_cents)
        .service("shipping", n=1, app="shipping")
        .service("orchestrator", n=n, app="orchestrator",
                 orders=list(orders if orders is not None else DEMO_ORDERS))
        .build()
    )


def chaos_equivocating_primary(
    rbe_count: int = 4,
    n_pge: int = 4,
    duration_s: float = 120.0,
    seed: int = 11,
    name: str = "chaos-equivocating-primary",
) -> ScenarioSpec:
    """TPC-W buy-heavy load with an equivocating PGE primary.

    Replica 0 of the PGE group sends conflicting pre-prepares to
    disjoint replica halves while it is primary: no digest can gather a
    prepared certificate, ordering stalls, the view-change timer fires,
    and the group completes a view change before serving the buy
    traffic. Every correct request still completes — the adversary costs
    latency, never safety.
    """
    buy_heavy = {
        "name": "buy-heavy",
        "weights": [["buy_request", 1], ["buy_confirm", 3]],
    }
    spec = tpcw_scenario(
        rbe_count=rbe_count,
        n_pge=n_pge,
        duration_s=duration_s,
        think_time_mean_us=200_000,
        seed=seed,
        mix=buy_heavy,
        name=name,
    )
    equivocate = FaultSpec(
        kind="byzantine", service="pge", index=0,
        params={"mode": "equivocate"},
    )
    return spec.with_(faults=spec.faults + (equivocate,)).validate()


def chaos_partition_heal(
    n: int = 4,
    total_calls: int = 12,
    heal_after_us: int = 2_000_000,
    duration_s: float = 120.0,
    name: str = "chaos-partition-heal",
) -> ScenarioSpec:
    """A minority partition that heals mid-run.

    Replica ``n - 1`` of the target group is cut off from its peers for
    the first ``heal_after_us``; the majority keeps ordering (quorums
    survive losing f replicas) and the isolated replica catches up from
    retransmissions and checkpoints after the heal.
    """
    return (
        ScenarioBuilder(name)
        .duration(duration_s)
        .service("target", n=n, app="echo")
        .service("caller", n=n, app="sync_caller",
                 target="target", total_calls=total_calls)
        .partition("target", [n - 1], heal_after_us=heal_after_us)
        .build()
    )


def chaos_slow_drip(
    n: int = 4,
    total_calls: int = 8,
    duration_s: float = 120.0,
    name: str = "chaos-slow-drip",
) -> ScenarioSpec:
    """A mute primary that forces at least one view change.

    Replica 0 of the target group swallows its own pre-prepares while
    primary, so no request is ordered until the backups' view-change
    timers expire and view 1 takes over.
    """
    return (
        ScenarioBuilder(name)
        .duration(duration_s)
        .service("target", n=n, app="echo")
        .service("caller", n=n, app="sync_caller",
                 target="target", total_calls=total_calls)
        .byzantine("target", 0, mode="mute")
        .build()
    )


def chaos_soak(
    n: int = 4,
    total_calls: int = 400,
    checkpoint_interval: int = 16,
    duration_s: float = 900.0,
    name: str = "chaos-soak",
) -> ScenarioSpec:
    """A bounded-memory soak: many requests over a small checkpoint K.

    Runs at least 10x ``checkpoint_interval`` requests through one
    group so checkpoint-driven GC must evict continuously; the voter's
    reply cache staying near K (instead of growing with the request
    count) is the assertable outcome.
    """
    return (
        ScenarioBuilder(name)
        .duration(duration_s)
        .service("target", n=n, app="echo",
                 clbft={"checkpoint_interval": checkpoint_interval})
        .service("caller", n=n, app="sync_caller",
                 target="target", total_calls=total_calls)
        .build()
    )


PRESETS: dict[str, Callable[[], ScenarioSpec]] = {
    "two-tier": lambda: two_tier_scenario(4, 4, total_calls=30, duration_s=120.0),
    "async-window": lambda: two_tier_scenario(
        4, 4, total_calls=40, window=10, duration_s=120.0
    ),
    "echo-parity": lambda: echo_parity_scenario(),
    "tpcw-small": lambda: tpcw_scenario(rbe_count=8, n_pge=4, duration_s=40.0),
    "sharded-echo": lambda: sharded_echo_scenario(),
    "sharded-tpcw": lambda: sharded_tpcw_scenario(),
    "orchestration": lambda: orchestration_scenario(),
    "chaos-equivocating-primary": chaos_equivocating_primary,
    "chaos-partition-heal": chaos_partition_heal,
    "chaos-slow-drip": chaos_slow_drip,
    "chaos-soak": chaos_soak,
}


def preset(name: str) -> ScenarioSpec:
    """Build the named preset scenario."""
    from repro.common.errors import ConfigurationError

    builder = PRESETS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown scenario preset {name!r} (known: {', '.join(sorted(PRESETS))})"
        )
    return builder()
