"""Exception hierarchy for the Perpetual-WS reproduction.

All library exceptions derive from :class:`ReproError` so a downstream
application can catch everything the middleware may raise with a single
``except`` clause while still distinguishing the failure classes the paper
cares about (authentication failures, protocol violations by faulty
replicas, and deterministic request aborts).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(ReproError):
    """Raised for invalid deployment or replication configuration.

    Examples: a replica group whose size is not ``3f + 1``, a service name
    that is not registered in the deployment descriptor, or duplicate
    replica endpoints.
    """


class ProtocolError(ReproError):
    """Raised when a message violates the CLBFT or Perpetual protocol.

    Correct replicas raise (and then discard the offending message) rather
    than acting on protocol-violating input; a :class:`ProtocolError`
    escaping to the caller indicates a local logic bug, not a remote fault.
    """


class AuthenticationError(ReproError):
    """Raised when a MAC authenticator or reply bundle fails verification."""


class TransportError(ReproError):
    """Raised by Connection/ChannelAdapter modules on delivery failure."""


class RequestAborted(ReproError):
    """Raised to the application when an outgoing request was aborted.

    The Perpetual voter group agrees deterministically on aborts (paper
    section 4.2), so every correct calling replica raises this for the same
    request at the same logical point.
    """

    def __init__(self, request_id: str, reason: str = "timeout") -> None:
        super().__init__(f"request {request_id} aborted: {reason}")
        self.request_id = request_id
        self.reason = reason


class SimulationError(ReproError):
    """Raised by the discrete-event kernel on scheduling misuse."""


class ExecutorViolation(ReproError):
    """Raised when an application executor breaks the deterministic model.

    The Perpetual-WS programming model (paper section 4.1) requires a
    single deterministic thread of computation; this error flags effects
    that the middleware cannot serve deterministically (e.g. consuming a
    reply for a request that was never sent).
    """
