"""Quorum arithmetic for Byzantine fault tolerance.

The paper uses the standard state-machine-replication bounds: a group of
``n = 3f + 1`` replicas tolerates ``f`` Byzantine faults (footnote 1), with

- CLBFT agreement quorums of ``2f + 1`` (Castro & Liskov),
- ``f + 1`` *weak certificates* (at least one correct replica attests),
- the target primary waiting for ``fc + 1`` matching requests from calling
  drivers before starting agreement (Figure 1, stage 2),
- the responder collecting ``ft + 1`` matching replies into the reply
  bundle (stage 6).

All the arithmetic lives here so protocol modules never hand-roll it.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError


def group_size(f: int) -> int:
    """Number of replicas needed to tolerate ``f`` Byzantine faults."""
    if f < 0:
        raise ConfigurationError(f"fault bound must be non-negative, got {f}")
    return 3 * f + 1


def fault_bound(n: int) -> int:
    """Maximum Byzantine faults tolerated by a group of ``n`` replicas.

    Accepts any ``n >= 1``; a group of 1..3 tolerates zero faults, matching
    the paper's use of unreplicated (n=1) endpoints as the baseline.
    """
    if n < 1:
        raise ConfigurationError(f"group size must be positive, got {n}")
    return (n - 1) // 3


def agreement_quorum(n: int) -> int:
    """CLBFT prepared/committed certificate size.

    For the canonical ``n = 3f + 1`` groups this is exactly ``2f + 1``;
    for over-provisioned or non-aligned sizes the generalised form
    ``ceil((n + f + 1) / 2)`` keeps the two invariants safety and
    liveness rest on: any two quorums intersect in at least ``f + 1``
    replicas, and a quorum exists among the ``n - f`` correct ones.
    """
    f = fault_bound(n)
    return (n + f + 2) // 2


def weak_certificate(n: int) -> int:
    """Smallest set guaranteed to contain a correct replica: ``f + 1``."""
    return fault_bound(n) + 1


def matching_request_quorum(n_calling: int) -> int:
    """Matching requests the target primary needs before agreement.

    ``fc + 1`` matching requests guarantee at least one came from a correct
    calling replica, so the request really was issued by the calling
    service's deterministic application (stage 2 of Figure 1).
    """
    return weak_certificate(n_calling)


def reply_bundle_quorum(n_target: int) -> int:
    """Matching replies the responder bundles for the caller: ``ft + 1``."""
    return weak_certificate(n_target)


def validate_group(n: int, f: int) -> None:
    """Check that ``n`` replicas can actually tolerate ``f`` faults."""
    if n < group_size(f):
        raise ConfigurationError(
            f"{n} replicas cannot tolerate {f} Byzantine faults; "
            f"need at least {group_size(f)}"
        )
