"""Replication and deployment configuration.

Mirrors the paper's ``replicas.xml`` static mapping (section 5.2): because
UDDI does not resolve replicated endpoint references, each deployment
carries a static table from service name to the replica group description.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.ids import NodeId, ReplicaId, ServiceId
from repro.common.quorum import fault_bound, validate_group


@dataclass(frozen=True)
class ReplicationConfig:
    """Degree of replication of one service group.

    ``n`` is the replica count; ``f`` the tolerated Byzantine faults.
    Paper configurations use n in {1, 4, 7, 10} giving f in {0, 1, 2, 3}.
    """

    n: int
    f: int

    def __post_init__(self) -> None:
        validate_group(self.n, self.f)

    @classmethod
    def for_group_size(cls, n: int) -> "ReplicationConfig":
        """Config tolerating the maximum faults a group of ``n`` allows."""
        return cls(n=n, f=fault_bound(n))

    @classmethod
    def for_fault_bound(cls, f: int) -> "ReplicationConfig":
        """Minimal group (``3f + 1``) tolerating ``f`` faults."""
        return cls(n=3 * f + 1, f=f)

    @property
    def is_replicated(self) -> bool:
        return self.n > 1


@dataclass(frozen=True)
class ServiceSpec:
    """One entry of the ``replicas.xml`` stand-in.

    Carries the service name, its replication degree, and optional
    transport endpoints (host, port) per replica. Endpoints default to
    synthetic addresses for simulated deployments.
    """

    service: ServiceId
    replication: ReplicationConfig
    endpoints: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.endpoints and len(self.endpoints) != self.replication.n:
            raise ConfigurationError(
                f"service {self.service}: {len(self.endpoints)} endpoints "
                f"for {self.replication.n} replicas"
            )
        if len(set(self.endpoints)) != len(self.endpoints):
            raise ConfigurationError(
                f"service {self.service}: duplicate replica endpoints"
            )

    @property
    def n(self) -> int:
        return self.replication.n

    @property
    def f(self) -> int:
        return self.replication.f

    def replicas(self) -> list[ReplicaId]:
        return [ReplicaId(self.service, i) for i in range(self.n)]

    def voters(self) -> list[NodeId]:
        return [NodeId(r, NodeId.VOTER) for r in self.replicas()]

    def drivers(self) -> list[NodeId]:
        return [NodeId(r, NodeId.DRIVER) for r in self.replicas()]

    def endpoint_of(self, index: int) -> str:
        if self.endpoints:
            return self.endpoints[index]
        return f"perpetual://{self.service}/{index}"


def make_spec(name: str, n: int, endpoints: tuple[str, ...] = ()) -> ServiceSpec:
    """Shorthand used throughout tests, examples, and benchmarks."""
    return ServiceSpec(
        service=ServiceId(name),
        replication=ReplicationConfig.for_group_size(n),
        endpoints=endpoints,
    )
