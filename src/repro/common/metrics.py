"""Hot-path performance counters.

The wire fast path (encode-once multicast, memoized digests, batched MAC
vectors, the tuple-heap kernel) exists to make the simulated hot path
fast; these counters make the savings *assertable* rather than anecdotal.
Tests reset the global :data:`METRICS` object, run a scenario, and assert
the operation counts — e.g. that a multicast to ``n`` receivers performs
exactly one canonical encode and one payload digest, where the seed
implementation performed ``n`` of each.

Counting is deliberately cheap (plain integer bumps on a module-global)
so leaving it enabled in benchmarks does not distort what it measures.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Metrics:
    """Operation counters for the serialization/crypto/kernel stack."""

    #: Full canonical encodes actually performed (JSON walk + dumps).
    encode_calls: int = 0
    #: Encodes answered from a :class:`~repro.common.encoding.WireBlob`.
    encode_cache_hits: int = 0
    #: SHA-256 payload digests actually computed.
    digest_calls: int = 0
    #: Digests answered from a blob's memoized value.
    digest_cache_hits: int = 0
    #: HMAC tag computations (signing and verifying sides both count).
    mac_computations: int = 0
    #: Authenticator verifications attempted.
    mac_verifications: int = 0
    #: Multicast operations (one authenticated payload, many receivers).
    multicasts: int = 0
    #: Wire envelopes handed to a connection for transmission.
    envelopes_sent: int = 0
    #: Events executed by the simulation kernel.
    events_processed: int = 0
    #: Heap rebuilds that dropped cancelled timer entries.
    heap_compactions: int = 0
    #: Driver-side request retransmissions (responder rotation + rearm).
    retransmissions: int = 0
    #: CLBFT view changes completed (new view entered) across replicas.
    view_changes: int = 0
    #: Fault-injection actions applied by the adversary layer (drops,
    #: deferrals, corruptions, equivocations, mutes).
    faults_injected: int = 0
    #: Cache entries evicted by checkpoint-driven garbage collection.
    cache_evictions: int = 0
    #: Batch envelopes flushed onto the wire (one MAC vector each).
    batches_sent: int = 0
    #: Protocol messages carried inside those batch envelopes.
    batch_messages: int = 0
    #: Driver requests issued through the sharding router tier.
    requests_routed: int = 0
    #: Routed requests whose target lived outside the caller's home
    #: group (they travel the nested-invocation path across groups).
    cross_group_calls: int = 0
    #: Invocations of :func:`repro.common.encoding.clear_wire_caches`.
    #: Every worker start path (process spawn, tcp rendezvous) must
    #: clear the identity-keyed caches exactly once before decoding its
    #: first frame; this counter makes that assertable end to end.
    wire_cache_clears: int = 0

    def reset(self) -> None:
        """Zero every counter (tests call this before a measured region)."""
        for f in fields(self):
            setattr(self, f.name, f.default)

    def snapshot(self) -> dict[str, int]:
        """Copy of all counters, convenient for asserting deltas."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Process-global counters. Single-threaded simulator semantics: the
#: threaded runtime only bumps integers, so races merely undercount.
METRICS = Metrics()
