"""Typed identifiers used across the middleware.

The paper's architecture names four kinds of principals:

- a *service* (a logical web service, e.g. ``"bank"``), replicated or not;
- a *replica* of a service (an index within the group);
- a *node* (a single voter or driver process on one host);
- a *request* (one logical operation, correlated via WS-Addressing
  ``wsa:messageID`` / ``wsa:relatesTo``).

Identifiers are plain frozen dataclasses so they hash, sort, and serialise
deterministically — determinism of every value that crosses a replica
boundary is a correctness requirement, not a style preference.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import ClassVar


@dataclass(frozen=True, order=True)
class ServiceId:
    """Logical name of a (possibly replicated) web service."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class ReplicaId:
    """A replica within a service group: ``service`` plus zero-based index."""

    service: ServiceId
    index: int

    def __str__(self) -> str:
        return f"{self.service}[{self.index}]"


@dataclass(frozen=True, order=True)
class NodeId:
    """A single process: the voter or the driver half of a replica.

    The paper co-locates the voter and driver of replica *i* on one host
    but treats them as distinct protocol participants (Figure 1), so the
    node identity carries the role.
    """

    VOTER: ClassVar[str] = "voter"
    DRIVER: ClassVar[str] = "driver"

    replica: ReplicaId
    role: str

    def __post_init__(self) -> None:
        if self.role not in (self.VOTER, self.DRIVER):
            raise ValueError(f"unknown node role: {self.role!r}")

    @property
    def service(self) -> ServiceId:
        return self.replica.service

    @property
    def index(self) -> int:
        return self.replica.index

    def peer(self) -> "NodeId":
        """The co-located node of the opposite role on the same host."""
        other = self.DRIVER if self.role == self.VOTER else self.VOTER
        return NodeId(self.replica, other)

    def __str__(self) -> str:
        return f"{self.replica}/{self.role}"


def voter(service: str | ServiceId, index: int) -> NodeId:
    """Convenience constructor for a voter node id."""
    sid = service if isinstance(service, ServiceId) else ServiceId(service)
    return NodeId(ReplicaId(sid, index), NodeId.VOTER)


def driver(service: str | ServiceId, index: int) -> NodeId:
    """Convenience constructor for a driver node id."""
    sid = service if isinstance(service, ServiceId) else ServiceId(service)
    return NodeId(ReplicaId(sid, index), NodeId.DRIVER)


@dataclass(frozen=True, order=True)
class RequestId:
    """Correlates one logical request across tiers.

    ``origin`` is the calling service; ``seqno`` is the caller's local,
    deterministic issue number. Because every correct calling replica runs
    the same deterministic application, all replicas assign the same
    ``seqno`` to the same logical request — this is what lets the target
    primary collect ``fc + 1`` *matching* requests (Figure 1, stage 2).
    """

    origin: ServiceId
    seqno: int

    def __str__(self) -> str:
        return f"{self.origin}#{self.seqno}"


class RequestIdAllocator:
    """Deterministic per-caller allocator of :class:`RequestId` values."""

    def __init__(self, origin: ServiceId, start: int = 0) -> None:
        self._origin = origin
        self._counter = itertools.count(start)

    def next_id(self) -> RequestId:
        return RequestId(self._origin, next(self._counter))


@dataclass(frozen=True, order=True)
class MessageId:
    """WS-Addressing ``wsa:messageID`` value (section 5.1).

    Layered above :class:`RequestId`: the SOAP layer correlates on message
    ids while the Perpetual layer correlates on request ids; keeping them
    distinct mirrors the paper's separation between the Axis2 engine and
    the Perpetual core.
    """

    value: str = field(default="")

    def __str__(self) -> str:
        return self.value
