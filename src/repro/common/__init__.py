"""Shared kernel: identifiers, errors, quorum arithmetic, configuration.

Everything in this package is dependency-free and usable by every other
subsystem (crypto, transport, CLBFT, Perpetual, the SOAP engine, and the
simulation substrate).

Contract: :mod:`repro.common.encoding` owns the canonical codec and the
encode-once blob cache (``docs/architecture.md``); everything else here
is pure, deterministic, and substrate-free.
"""

from repro.common.config import ReplicationConfig, ServiceSpec
from repro.common.encoding import canonical_encode, decode_payload, encode_payload
from repro.common.errors import (
    AuthenticationError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    RequestAborted,
    TransportError,
)
from repro.common.ids import NodeId, ReplicaId, RequestId, ServiceId
from repro.common.quorum import (
    agreement_quorum,
    fault_bound,
    group_size,
    matching_request_quorum,
    reply_bundle_quorum,
    weak_certificate,
)

__all__ = [
    "AuthenticationError",
    "ConfigurationError",
    "NodeId",
    "ProtocolError",
    "ReplicaId",
    "ReplicationConfig",
    "ReproError",
    "RequestAborted",
    "RequestId",
    "ServiceId",
    "ServiceSpec",
    "TransportError",
    "agreement_quorum",
    "canonical_encode",
    "decode_payload",
    "encode_payload",
    "fault_bound",
    "group_size",
    "matching_request_quorum",
    "reply_bundle_quorum",
    "weak_certificate",
]
