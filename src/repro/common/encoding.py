"""Canonical, deterministic serialisation.

Every byte string that is MAC'd, digested, or compared across replicas must
be produced identically on every host. We use a canonical subset of JSON
(sorted keys, no whitespace, UTF-8) plus a tagging scheme for the small set
of non-JSON types that cross replica boundaries (bytes, tuples, and the
typed identifiers from :mod:`repro.common.ids`).

This plays the role of the paper's wire marshaling: the Perpetual prototype
serialises Java objects, Axis2 serialises XML; here one canonical codec
serves both layers so that digests computed by different replicas agree.
"""

from __future__ import annotations

import base64
import json
from typing import Any

from repro.common.errors import ProtocolError
from repro.common.ids import MessageId, NodeId, ReplicaId, RequestId, ServiceId

_TAG = "__repro__"


def _tagged(kind: str, value: Any) -> dict[str, Any]:
    return {_TAG: kind, "v": value}


def _to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into canonical-JSON-safe structures."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # Floats are forbidden in replica-visible payloads: IEEE formatting
        # and arithmetic reassociation are a determinism hazard. Applications
        # use integers (e.g. cents, milliseconds) instead.
        raise ProtocolError(f"floats are not canonically encodable: {obj!r}")
    if isinstance(obj, bytes):
        return _tagged("bytes", base64.b64encode(obj).decode("ascii"))
    if isinstance(obj, ServiceId):
        return _tagged("service", obj.name)
    if isinstance(obj, ReplicaId):
        return _tagged("replica", [obj.service.name, obj.index])
    if isinstance(obj, NodeId):
        return _tagged("node", [obj.service.name, obj.index, obj.role])
    if isinstance(obj, RequestId):
        return _tagged("request", [obj.origin.name, obj.seqno])
    if isinstance(obj, MessageId):
        return _tagged("msgid", obj.value)
    if isinstance(obj, tuple):
        return _tagged("tuple", [_to_jsonable(v) for v in obj])
    if isinstance(obj, list):
        return [_to_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ProtocolError(f"non-string dict key not encodable: {key!r}")
            out[key] = _to_jsonable(value)
        return out
    raise ProtocolError(f"type {type(obj).__name__} is not canonically encodable")


def _from_jsonable(obj: Any) -> Any:
    if isinstance(obj, list):
        return [_from_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        kind = obj.get(_TAG)
        if kind is None:
            return {k: _from_jsonable(v) for k, v in obj.items()}
        value = obj["v"]
        if kind == "bytes":
            return base64.b64decode(value)
        if kind == "service":
            return ServiceId(value)
        if kind == "replica":
            return ReplicaId(ServiceId(value[0]), value[1])
        if kind == "node":
            return NodeId(ReplicaId(ServiceId(value[0]), value[1]), value[2])
        if kind == "request":
            return RequestId(ServiceId(value[0]), value[1])
        if kind == "msgid":
            return MessageId(value)
        if kind == "tuple":
            return tuple(_from_jsonable(v) for v in value)
        raise ProtocolError(f"unknown canonical tag: {kind!r}")
    return obj


def canonical_encode(obj: Any) -> bytes:
    """Encode ``obj`` to canonical bytes (stable across hosts and runs)."""
    jsonable = _to_jsonable(obj)
    return json.dumps(
        jsonable, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def encode_payload(obj: Any) -> bytes:
    """Alias of :func:`canonical_encode` for application payloads."""
    return canonical_encode(obj)


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`canonical_encode`."""
    try:
        return _from_jsonable(json.loads(data.decode("ascii")))
    except (ValueError, KeyError, IndexError, TypeError) as exc:
        raise ProtocolError(f"malformed canonical payload: {exc}") from exc
