"""Canonical, deterministic serialisation.

Every byte string that is MAC'd, digested, or compared across replicas must
be produced identically on every host. We use a canonical subset of JSON
(sorted keys, no whitespace, UTF-8) plus a tagging scheme for the small set
of non-JSON types that cross replica boundaries (bytes, tuples, and the
typed identifiers from :mod:`repro.common.ids`).

This plays the role of the paper's wire marshaling: the Perpetual prototype
serialises Java objects, Axis2 serialises XML; here one canonical codec
serves both layers so that digests computed by different replicas agree.

The encoder is the hottest function in the simulator (every protocol
message crosses it at least once), so it is built for speed:

- :func:`_to_jsonable` walks containers iteratively with an explicit
  stack — no per-level call overhead — and dispatches on exact type
  through lookup tables instead of ``isinstance`` chains (note that
  ``json.dumps`` still bounds total nesting at the interpreter limit);
- :class:`WireBlob` carries ``(bytes, digest)`` for a message that was
  encoded exactly once, so multicast/sign/digest consumers share one
  encoding pass; :func:`wire_blob` memoizes blobs by object identity so
  re-sends (retransmissions, relays, stored replies) skip the encoder
  entirely.
"""

from __future__ import annotations

import base64
import hashlib
from collections import OrderedDict
from json import dumps as _json_dumps, loads as _json_loads
from typing import Any, Callable

from repro.common.errors import ProtocolError
from repro.common.ids import MessageId, NodeId, ReplicaId, RequestId, ServiceId
from repro.common.metrics import METRICS

_TAG = "__repro__"


def _tagged(kind: str, value: Any) -> dict[str, Any]:
    return {_TAG: kind, "v": value}


# Types that are already canonical-JSON-safe, by exact type. ``bool`` is
# listed separately from ``int`` because dispatch is on ``type(obj)``.
_SCALAR_TYPES = frozenset((type(None), bool, int, str))

# Non-container leaves, by exact type. Each encoder returns the tagged
# wire form in one call.
_LEAF_ENCODERS: dict[type, Callable[[Any], dict[str, Any]]] = {
    bytes: lambda o: _tagged("bytes", base64.b64encode(o).decode("ascii")),
    ServiceId: lambda o: _tagged("service", o.name),
    ReplicaId: lambda o: _tagged("replica", [o.service.name, o.index]),
    NodeId: lambda o: _tagged(
        "node", [o.replica.service.name, o.replica.index, o.role]
    ),
    RequestId: lambda o: _tagged("request", [o.origin.name, o.seqno]),
    MessageId: lambda o: _tagged("msgid", o.value),
}


def _to_jsonable_slow(obj: Any) -> Any:
    """Recursive fallback for subclassed scalar/container types.

    The fast path dispatches on exact type; values whose type is a
    *subclass* of a supported type (an IntEnum, a NamedTuple, ...) land
    here and keep the seed encoder's isinstance semantics.
    """
    # Normalise scalar subclasses to the base value so json sees plain
    # types; bool before int (it subclasses int), float always rejected.
    if isinstance(obj, bool):
        return bool(obj)
    if isinstance(obj, float):
        raise ProtocolError(f"floats are not canonically encodable: {obj!r}")
    if isinstance(obj, int):
        return int(obj)
    if isinstance(obj, str):
        return str(obj)
    for leaf_type, encoder in _LEAF_ENCODERS.items():
        if isinstance(obj, leaf_type):
            return encoder(obj)
    if isinstance(obj, tuple):
        return _tagged("tuple", [_to_jsonable(v) for v in obj])
    if isinstance(obj, list):
        return [_to_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ProtocolError(f"non-string dict key not encodable: {key!r}")
            out[key] = _to_jsonable(value)
        return out
    raise ProtocolError(f"type {type(obj).__name__} is not canonically encodable")


def _to_jsonable(obj: Any) -> Any:
    """Convert ``obj`` into canonical-JSON-safe structures, iteratively."""
    kind = type(obj)
    if kind in _SCALAR_TYPES:
        return obj
    leaf = _LEAF_ENCODERS.get(kind)
    if leaf is not None:
        return leaf(obj)
    # Containers: explicit-stack walk. Each work item writes its converted
    # value into ``dst[key]``; the root is slot 0 of a one-element list.
    root: list[Any] = [None]
    stack: list[tuple[Any, Any, Any]] = [(obj, root, 0)]
    push = stack.append
    pop = stack.pop
    leaf_encoders = _LEAF_ENCODERS
    scalar_types = _SCALAR_TYPES
    while stack:
        value, dst, key = pop()
        kind = type(value)
        if kind in scalar_types:
            dst[key] = value
            continue
        leaf = leaf_encoders.get(kind)
        if leaf is not None:
            dst[key] = leaf(value)
            continue
        if kind is dict:
            out: dict[str, Any] = {}
            dst[key] = out
            for k, v in value.items():
                if type(k) is not str and not isinstance(k, str):
                    raise ProtocolError(
                        f"non-string dict key not encodable: {k!r}"
                    )
                push((v, out, k))
        elif kind is list:
            items: list[Any] = [None] * len(value)
            dst[key] = items
            for i, v in enumerate(value):
                push((v, items, i))
        elif kind is tuple:
            items = [None] * len(value)
            dst[key] = _tagged("tuple", items)
            for i, v in enumerate(value):
                push((v, items, i))
        elif kind is float:
            raise ProtocolError(
                f"floats are not canonically encodable: {value!r}"
            )
        else:
            dst[key] = _to_jsonable_slow(value)
    return root[0]


def _from_jsonable(obj: Any) -> Any:
    kind = type(obj)
    if kind is list:
        return [_from_jsonable(v) for v in obj]
    if kind is dict:
        tag = obj.get(_TAG)
        if tag is None:
            return {k: _from_jsonable(v) for k, v in obj.items()}
        value = obj["v"]
        if tag == "bytes":
            return base64.b64decode(value)
        if tag == "tuple":
            return tuple(_from_jsonable(v) for v in value)
        if tag == "service":
            return ServiceId(value)
        if tag == "replica":
            return ReplicaId(ServiceId(value[0]), value[1])
        if tag == "node":
            return NodeId(ReplicaId(ServiceId(value[0]), value[1]), value[2])
        if tag == "request":
            return RequestId(ServiceId(value[0]), value[1])
        if tag == "msgid":
            return MessageId(value)
        raise ProtocolError(f"unknown canonical tag: {tag!r}")
    return obj


def canonical_encode(obj: Any) -> bytes:
    """Encode ``obj`` to canonical bytes (stable across hosts and runs).

    A :class:`WireBlob` passes straight through to its cached bytes.
    """
    if type(obj) is WireBlob:
        METRICS.encode_cache_hits += 1
        return obj.data
    METRICS.encode_calls += 1
    return _json_dumps(
        _to_jsonable(obj), sort_keys=True, separators=(",", ":"),
        ensure_ascii=True,
    ).encode("ascii")


def encode_payload(obj: Any) -> bytes:
    """Alias of :func:`canonical_encode` for application payloads."""
    return canonical_encode(obj)


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`canonical_encode`."""
    try:
        return _from_jsonable(_json_loads(data.decode("ascii")))
    except (ValueError, KeyError, IndexError, TypeError, RecursionError) as exc:
        raise ProtocolError(f"malformed canonical payload: {exc}") from exc


# ---------------------------------------------------------------------------
# Encode-once blobs
# ---------------------------------------------------------------------------


class WireBlob:
    """A message canonically encoded exactly once.

    Carries the source object, its canonical bytes, and (lazily) the
    SHA-256 digest of those bytes, so every consumer of the same logical
    message — the authenticator, the network size model, digest-keyed
    agreement state — shares one encoding pass and one digest pass.
    """

    __slots__ = ("obj", "data", "encoder", "_digest")

    def __init__(
        self,
        obj: Any,
        data: bytes | None = None,
        encoder: Callable[[Any], bytes] | None = None,
    ) -> None:
        self.obj = obj
        self.data = canonical_encode(obj) if data is None else data
        #: The codec that produced ``data`` (None = canonical_encode);
        #: the blob cache refuses to serve a blob to a different codec.
        self.encoder = encoder
        self._digest: bytes | None = None

    @property
    def digest(self) -> bytes:
        """Memoized SHA-256 digest of the canonical bytes."""
        d = self._digest
        if d is None:
            METRICS.digest_calls += 1
            d = self._digest = hashlib.sha256(self.data).digest()
        else:
            METRICS.digest_cache_hits += 1
        return d

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"WireBlob({len(self.data)} bytes)"


_BLOB_CACHE_LIMIT = 2048
# Identity-keyed, LRU-evicted. Entries hold a strong reference to the
# source object, so a live entry's id cannot be recycled out from under
# it; the ``blob.obj is obj`` check is defence in depth.
_blob_cache: "OrderedDict[int, WireBlob]" = OrderedDict()


def wire_blob(obj: Any, encode: Callable[[Any], bytes] | None = None) -> WireBlob:
    """The encode-once blob for ``obj``, memoized by object identity.

    Repeated calls with the same (still-referenced) object — a stored
    reply re-forwarded on retry, a retransmitted request, a relay of a
    received payload — reuse the cached bytes and digest instead of
    re-running the encoder. ``encode`` overrides the canonical encoder
    (the channel passes its injected wire codec); a cached blob is only
    served back to the codec that produced it, so the same object sent
    through differently-configured channels never aliases bytes.
    """
    if type(obj) is WireBlob:
        return obj
    key = id(obj)
    cache = _blob_cache
    blob = cache.get(key)
    if blob is not None and blob.obj is obj and blob.encoder is encode:
        METRICS.encode_cache_hits += 1
        cache.move_to_end(key)
        return blob
    if encode is None:
        blob = WireBlob(obj)
    else:
        blob = WireBlob(obj, encode(obj), encoder=encode)
    cache[key] = blob
    if len(cache) > _BLOB_CACHE_LIMIT:
        cache.popitem(last=False)
    return blob


# Every IdentityMemo registers here so one call can clear all wire-layer
# caches (blobs + derived-digest memos) between simulations or tests.
_MEMO_REGISTRY: list["IdentityMemo"] = []


def clear_blob_cache() -> None:
    """Drop all memoized blobs (test isolation hook)."""
    _blob_cache.clear()


def clear_wire_caches() -> None:
    """Drop the blob cache and every registered identity memo.

    Finished simulations otherwise pin up to one cache-limit of message
    objects per memo; call between runs when memory or test isolation
    matters.

    This is also the documented **process-start hook**: every cache here
    is keyed on object identity, so entries must never cross a process
    boundary. A worker forked while the parent's caches were warm would
    otherwise serve lookups against the parent's object graph —
    :mod:`repro.scenario.process` calls this in every worker bootstrap
    (after zeroing METRICS, before touching any frame), and any other
    multi-process host must do the same. The counter bump below is what
    lets tests assert that contract per worker, via the summed stats,
    instead of monkeypatching bootstrap internals.
    """
    METRICS.wire_cache_clears += 1
    _blob_cache.clear()
    for memo in _MEMO_REGISTRY:
        memo.clear()


class IdentityMemo:
    """A bounded memo keyed on object identity.

    For values derived deterministically from an immutable message (its
    match-key digest, its authenticated bytes): receivers of one multicast
    share the decoded message object, so a per-object memo computes the
    derivation once per *message* instead of once per *receiver*. Entries
    hold a strong reference to the key object, so a live entry's id cannot
    be recycled; eviction is LRU.
    """

    __slots__ = ("_cache", "_limit")

    def __init__(self, limit: int = 2048) -> None:
        self._cache: "OrderedDict[int, tuple[Any, Any]]" = OrderedDict()
        self._limit = limit
        _MEMO_REGISTRY.append(self)

    def get(self, obj: Any, compute: Callable[[Any], Any]) -> Any:
        key = id(obj)
        cache = self._cache
        hit = cache.get(key)
        if hit is not None and hit[0] is obj:
            cache.move_to_end(key)
            return hit[1]
        value = compute(obj)
        cache[key] = (obj, value)
        if len(cache) > self._limit:
            cache.popitem(last=False)
        return value

    def clear(self) -> None:
        self._cache.clear()
