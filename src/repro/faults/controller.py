"""Fault scripts, plans, and per-node injectors.

The flow is: ``ScenarioSpec.faults`` → :meth:`FaultPlan.from_spec` →
one :class:`ReplicaFaultScript` per faulted ``(service, index)`` →
two :class:`FaultInjector` instances per faulted replica (one for the
voter principal, one for the driver).  The injector is the only runtime
object; scripts and plans are pure data derived from the spec, so the
process substrate rebuilds the identical plan inside each worker from
the spec JSON it received in its spawn payload.

A node with no script pays nothing: the hosting node classes guard every
hook with ``if self._fault is not None`` and never wrap their
environment, so the fault machinery is zero-cost when no faults are
configured (the fig7/8/9 benchmark gate depends on this).

Fault kinds implemented here (``crash`` and ``link`` keep their existing
substrate-native mechanisms — partition kill / never-spawn and the sim
network's ``FaultyLink``):

``byzantine``
    ``mode="equivocate"``: while primary, send the true pre-prepare to
    *f* backups and a conflicting variant (same slot, different batch
    digest) to the remaining 2f — neither digest can gather a prepared
    certificate at 2f+1 replicas, so ordering stalls until the CLBFT
    view-change timer fires and a correct primary re-issues the prepared
    batch.  ``mode="mute"``: swallow the primary's pre-prepares (and any
    new-view it would lead), the paper's slow-drip primary.
    ``mode="corrupt"``: garble the executor's replies so the replica
    contributes non-matching result copies.
``delay``
    Defer every outbound message by ``delay_us`` (+ deterministic
    jitter), preserving send order per node.
``partition``
    Drop traffic crossing the declared group split until
    ``heal_after_us``.  Only the minority side is scripted: every
    crossing message has a scripted endpoint, so gating that side's
    sends *and* receives severs the cut completely.
``restart``
    A crash window: between ``down_after_us`` and ``up_after_us`` the
    replica drops all I/O and timer firings, then rejoins and catches up
    from its peers' retransmissions and stable checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.clbft.messages import NewView, PrePrepare
from repro.clbft.replica import batch_digest
from repro.common.errors import ConfigurationError
from repro.common.metrics import METRICS
from repro.perpetual.messages import LocalResult
from repro.sim.rng import DeterministicRng

#: Byzantine behaviours understood by ``FaultSpec(kind="byzantine")``.
BYZANTINE_MODES = ("equivocate", "corrupt", "mute")

#: First element of the timer tags the injector arms for deferred sends.
#: Hosting nodes route any tag consumed by :meth:`FaultInjector.on_timer`
#: away from their own timer dispatch.
FAULT_DEFER_TAG = "fault-defer"


@dataclass(frozen=True)
class ReplicaFaultScript:
    """Everything one replica's injectors need, derived from the spec.

    Multiple fault declarations targeting the same replica merge into one
    script (e.g. a delayed *and* equivocating primary).
    """

    service: str
    index: int
    #: One of :data:`BYZANTINE_MODES`, or ``None``.
    byzantine_mode: str | None = None
    #: Defer every outbound message by this much (0 = no delay fault).
    delay_us: int = 0
    #: Uniform extra jitter on top of ``delay_us`` (deterministic rng).
    delay_jitter_us: int = 0
    #: Peers (node names) unreachable during the partition window.
    blocked_peers: frozenset = frozenset()
    block_start_us: int = 0
    block_heal_us: int = 0
    #: Restart window; ``None`` means no restart fault.
    down_from_us: int | None = None
    down_until_us: int | None = None


class FaultPlan:
    """Per-replica fault scripts for one scenario."""

    def __init__(self, scripts: dict) -> None:
        self._scripts = scripts

    @property
    def empty(self) -> bool:
        return not self._scripts

    def script_for(self, service: str, index: int) -> ReplicaFaultScript | None:
        return self._scripts.get((service, index))

    @classmethod
    def from_spec(cls, spec: Any) -> "FaultPlan":
        """Build the plan from a validated :class:`ScenarioSpec`.

        ``crash`` and ``link`` faults are handled by substrate-native
        machinery and contribute nothing here.
        """
        merged: dict = {}

        def patch(service: str, index: int, **changes: Any) -> None:
            cur = merged.get((service, index))
            if cur is None:
                cur = ReplicaFaultScript(service=service, index=index)
            merged[(service, index)] = replace(cur, **changes)

        for fault in spec.all_faults():
            if fault.kind == "byzantine":
                patch(fault.service, fault.index,
                      byzantine_mode=fault.params.get("mode", "equivocate"))
            elif fault.kind == "delay":
                patch(fault.service, fault.index,
                      delay_us=int(fault.params["delay_us"]),
                      delay_jitter_us=int(fault.params.get("jitter_us", 0)))
            elif fault.kind == "partition":
                cls._add_partition(patch, spec, fault)
            elif fault.kind == "restart":
                patch(fault.service, fault.index,
                      down_from_us=int(fault.params.get("down_after_us", 0)),
                      down_until_us=int(fault.params["up_after_us"]))
        return cls(merged)

    @staticmethod
    def _add_partition(patch: Any, spec: Any, fault: Any) -> None:
        # Import here: voter.py never imports this package, so the naming
        # helpers living there are safe to use without a cycle.
        from repro.perpetual.voter import driver_name, voter_name

        decl = spec.service(fault.service)
        side = {int(i) for i in fault.params["side"]}
        others = [i for i in range(decl.n) if i not in side]
        blocked = frozenset(
            name
            for i in others
            for name in (voter_name(fault.service, i),
                         driver_name(fault.service, i))
        )
        start = int(fault.params.get("start_after_us", 0))
        heal = int(fault.params["heal_after_us"])
        for i in side:
            patch(fault.service, i, blocked_peers=blocked,
                  block_start_us=start, block_heal_us=heal)


class _FaultyEnv:
    """Environment wrapper interposing the injector on the send path.

    Everything except ``send``/``local_deliver`` passes straight through
    to the substrate's real environment, so the wrapped object still
    satisfies the shared node-environment surface (``set_timer``,
    ``now_us``, ``charge``, ``node_id``, ...).
    """

    __slots__ = ("_fault", "_env")

    def __init__(self, fault: "FaultInjector", env: Any) -> None:
        self._fault = fault
        self._env = env

    def send(self, dst: Any, msg: Any, size_bytes: int = 256) -> None:
        if not self._fault.intercept_send(dst, msg, size_bytes):
            self._env.send(dst, msg, size_bytes=size_bytes)

    def local_deliver(self, dst: Any, msg: Any) -> None:
        msg = self._fault.intercept_local(msg)
        if msg is not None:
            self._env.local_deliver(dst, msg)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._env, name)


class FaultInjector:
    """Runtime fault state for one protocol principal (voter or driver).

    Hosting nodes call four hooks:

    - :meth:`wrap_env` at attach time (send-side interposition);
    - :meth:`deliver_ok` at the top of ``on_message`` (receive gate);
    - :meth:`on_timer` at the top of ``on_timer`` (deferred-send release
      and down-window timer suppression);
    - :meth:`clbft_multicast_plan` from the voter's agreement multicast
      (equivocation / mute).
    """

    def __init__(self, script: ReplicaFaultScript, role: str) -> None:
        self.script = script
        self.role = role
        self._env: Any = None
        self._rng = DeterministicRng(
            0, f"fault/{script.service}/{script.index}/{role}")
        self._deferred: dict = {}
        self._defer_seq = 0

    # -- wiring -----------------------------------------------------------

    def wrap_env(self, env: Any) -> _FaultyEnv:
        self._env = env
        return _FaultyEnv(self, env)

    # -- window predicates ------------------------------------------------

    def _down(self, now_us: int) -> bool:
        s = self.script
        return (s.down_from_us is not None
                and s.down_from_us <= now_us < s.down_until_us)

    def _blocked(self, peer: Any, now_us: int) -> bool:
        s = self.script
        return (bool(s.blocked_peers)
                and s.block_start_us <= now_us < s.block_heal_us
                and str(peer) in s.blocked_peers)

    # -- send path --------------------------------------------------------

    def intercept_send(self, dst: Any, msg: Any, size_bytes: int) -> bool:
        """True if the injector consumed the send (dropped or deferred)."""
        now = self._env.now_us()
        if self._down(now) or self._blocked(dst, now):
            METRICS.faults_injected += 1
            return True
        if self.script.delay_us > 0:
            self._defer_seq += 1
            delay = self.script.delay_us
            if self.script.delay_jitter_us > 0:
                delay += self._rng.randint(0, self.script.delay_jitter_us)
            self._deferred[self._defer_seq] = (dst, msg, size_bytes)
            self._env.set_timer((FAULT_DEFER_TAG, self._defer_seq), delay)
            METRICS.faults_injected += 1
            return True
        return False

    def intercept_local(self, msg: Any) -> Any | None:
        """Pass, drop, or mutate a co-located local delivery."""
        if self._down(self._env.now_us()):
            METRICS.faults_injected += 1
            return None
        if (self.role == "driver"
                and self.script.byzantine_mode == "corrupt"
                and isinstance(msg, LocalResult)):
            METRICS.faults_injected += 1
            return LocalResult(request_id=msg.request_id,
                               result=["#garbled", str(msg.request_id)])
        return msg

    # -- receive path -----------------------------------------------------

    def deliver_ok(self, src: Any) -> bool:
        now = self._env.now_us()
        if self._down(now) or self._blocked(src, now):
            METRICS.faults_injected += 1
            return False
        return True

    # -- timers -----------------------------------------------------------

    def on_timer(self, tag: Any) -> bool:
        """True if the tag belonged to the fault layer (or the node is
        down and must not compute)."""
        if (isinstance(tag, tuple) and len(tag) == 2
                and tag[0] == FAULT_DEFER_TAG):
            item = self._deferred.pop(tag[1], None)
            if item is not None:
                dst, msg, size_bytes = item
                now = self._env.now_us()
                if not (self._down(now) or self._blocked(dst, now)):
                    self._env.send(dst, msg, size_bytes=size_bytes)
            return True
        if self._down(self._env.now_us()):
            METRICS.faults_injected += 1
            return True
        return False

    # -- agreement multicast ----------------------------------------------

    def clbft_multicast_plan(
        self, msg: Any, receivers: list, replica: Any
    ) -> list | None:
        """Byzantine rewrite of an agreement multicast.

        Returns ``None`` for the honest default, or a list of
        ``(recipients, message)`` sends (possibly empty = swallow).
        """
        mode = self.script.byzantine_mode
        if mode not in ("equivocate", "mute"):
            return None
        if isinstance(msg, PrePrepare) and msg.requests and replica.is_primary:
            if mode == "mute":
                METRICS.faults_injected += 1
                return []
            f = replica.config.f
            if f >= 1 and len(receivers) > f:
                ordered = sorted(receivers, key=str)
                variant_requests = msg.requests + (msg.requests[0],)
                variant = PrePrepare(
                    view=msg.view,
                    seqno=msg.seqno,
                    digest=batch_digest(variant_requests),
                    requests=variant_requests,
                )
                METRICS.faults_injected += 1
                # f backups see the true batch, 2f see the conflicting
                # variant: neither digest can reach a 2f-prepare
                # certificate, so every correct backup stalls into a view
                # change, which re-issues the variant's prepared batch.
                return [(ordered[:f], msg), (ordered[f:], variant)]
        if mode == "mute" and isinstance(msg, NewView):
            # A mute replica never helps lead a view either.
            METRICS.faults_injected += 1
            return []
        return None


def require_supported_kinds(spec: Any, unsupported: tuple, runtime: str) -> None:
    """Raise ConfigurationError if the spec declares fault kinds the
    named runtime cannot enforce (e.g. sim-only ``link`` faults)."""
    for fault in spec.all_faults():
        if fault.kind in unsupported:
            raise ConfigurationError(
                f"{runtime} runtime does not support {fault.kind!r} faults "
                f"(simulator-only); remove them from scenario "
                f"{spec.name!r} or run with --runtime sim"
            )
