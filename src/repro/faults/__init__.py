"""Scripted adversary layer: Byzantine, delay, partition, restart faults.

The paper's guarantee is stated against an adversary — up to *f* replicas
per group behaving arbitrarily — so the repo needs one too.  This package
turns the fault declarations carried by a :class:`ScenarioSpec` into
per-replica scripts and per-node injectors that wrap a node's send/
receive/timer hooks identically on every substrate (simulator, threaded
cluster, process cluster).

Contract: faults are per-message and deterministic — interception draws
from seeded rng streams, and channel-layer batching preserves message
granularity (a batched send defers/drops every inner message exactly as
unbatched sends on the same edge would; Byzantine rewrites act above
the channel). Fault kinds and builder syntax: ``docs/scenarios.md``.
"""

from repro.faults.controller import (
    BYZANTINE_MODES,
    FAULT_DEFER_TAG,
    FaultInjector,
    FaultPlan,
    ReplicaFaultScript,
    require_supported_kinds,
)

__all__ = [
    "BYZANTINE_MODES",
    "FAULT_DEFER_TAG",
    "FaultInjector",
    "FaultPlan",
    "ReplicaFaultScript",
    "require_supported_kinds",
]
