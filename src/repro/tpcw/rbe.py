"""The Remote Browser Emulator (RBE).

Each RBE emulates one end-user session: pick a page from the mix, send
the HTTP-analog request to the bookstore, read the reply, think, repeat.
RBEs are deployed as unreplicated (n=1) endpoints — the paper runs them
all on one host over plain HTTP, so one simulated host carries all of
them here and think time dominates their cycle.

TPC-W think times are exponential with a 7-second mean (capped); the mean
is configurable for faster test runs.
"""

from __future__ import annotations

from repro.perpetual.executor import Sleep
from repro.sim.rng import DeterministicRng
from repro.tpcw.interactions import (
    BUY_CONFIRM,
    BUY_REQUEST,
    Mix,
    PAPER_MIX,
    PRODUCT_DETAIL,
    SEARCH_RESULTS,
    SHOPPING_CART,
)
from repro.tpcw.model import SUBJECTS
from repro.ws.api import MessageContext, MessageHandler

THINK_TIME_MEAN_US = 7_000_000
THINK_TIME_CAP_US = 70_000_000


def rbe_app(
    rbe_index: int,
    bookstore_endpoint: str = "bookstore",
    mix: Mix = PAPER_MIX,
    seed: int = 11,
    think_time_mean_us: int = THINK_TIME_MEAN_US,
    item_count: int = 1000,
    customer_count: int = 288,
):
    """Build the emulator for browser session ``rbe_index``."""

    def app():
        rng = DeterministicRng(seed, f"rbe-{rbe_index}")
        pages = mix.pages()
        probabilities = mix.probabilities()
        session = rbe_index + 1
        customer_id = (rbe_index % customer_count) + 1
        # A browse -> cart -> buy session needs items in the cart before a
        # buy page makes sense; the emulator tracks that minimal state.
        cart_filled = False
        order_placed = False
        while True:
            page = rng.choices(pages, probabilities)[0]
            body = {"page": page, "session": session, "customer_id": customer_id}
            if page in (PRODUCT_DETAIL, SHOPPING_CART):
                body["item_id"] = rng.randint(1, item_count)
            if page == SEARCH_RESULTS:
                body["author"] = f"Author {rng.randint(1, item_count // 4)}"
            if page in ("new_products", "best_sellers"):
                body["subject"] = rng.choice(SUBJECTS)
            if page == BUY_REQUEST and not cart_filled:
                # Put something in the cart first so the order is real.
                yield MessageHandler.send_receive(
                    MessageContext(
                        to=bookstore_endpoint,
                        body={
                            "page": SHOPPING_CART,
                            "session": session,
                            "item_id": rng.randint(1, item_count),
                        },
                    )
                )
                cart_filled = True
            if page == BUY_CONFIRM and not order_placed:
                if not cart_filled:
                    yield MessageHandler.send_receive(
                        MessageContext(
                            to=bookstore_endpoint,
                            body={
                                "page": SHOPPING_CART,
                                "session": session,
                                "item_id": rng.randint(1, item_count),
                            },
                        )
                    )
                    cart_filled = True
                yield MessageHandler.send_receive(
                    MessageContext(
                        to=bookstore_endpoint,
                        body={
                            "page": BUY_REQUEST,
                            "session": session,
                            "customer_id": customer_id,
                        },
                    )
                )
                order_placed = True
            reply = yield MessageHandler.send_receive(
                MessageContext(to=bookstore_endpoint, body=body)
            )
            if page == BUY_REQUEST:
                order_placed = True
                cart_filled = False
            if page == BUY_CONFIRM:
                order_placed = False
            __ = reply  # page content is not interpreted further
            think_us = min(
                rng.sample_mean_us(think_time_mean_us), THINK_TIME_CAP_US
            )
            yield Sleep(think_us)

    return app
