"""The bookstore web service: the paper's Tomcat servlet tier.

Serves the twelve TPC-W pages against the in-memory database, charging
each page's CPU cost. Buy Confirm issues a payment authorisation to the
PGE; the bookstore keeps serving other pages while authorisations are in
flight (the Tomcat tier is multithreaded; here the fully-asynchronous
event loop models that). A ``synchronous`` variant — which blocks the
whole store on each PGE call — exists only to measure the paper's
async-vs-sync comparison (section 6.4: asynchronous PGE/Bank performed up
to ~4% better).
"""

from __future__ import annotations

from repro.tpcw.interactions import (
    BEST_SELLERS,
    BUY_CONFIRM,
    BUY_REQUEST,
    CPU_COST_US,
    CUSTOMER_REGISTRATION,
    HOME,
    NEW_PRODUCTS,
    ORDER_DISPLAY,
    ORDER_INQUIRY,
    PRODUCT_DETAIL,
    SEARCH_REQUEST,
    SEARCH_RESULTS,
    SHOPPING_CART,
)
from repro.tpcw.model import BookstoreDatabase
from repro.ws.api import MessageContext, MessageHandler


class BookstoreStats:
    """Interaction counts observed at the bookstore (WIPS numerator)."""

    def __init__(self) -> None:
        self.interactions = 0
        self.by_page: dict[str, int] = {}
        self.pge_calls = 0
        self.approved = 0
        self.declined = 0

    def record_page(self, page: str) -> None:
        self.interactions += 1
        self.by_page[page] = self.by_page.get(page, 0) + 1


def bookstore_app(
    db: BookstoreDatabase,
    stats: BookstoreStats,
    pge_endpoint: str = "pge",
    synchronous_pge: bool = False,
):
    """Build the bookstore application generator."""

    def handle_page(body: dict) -> dict:
        """Pure page logic (no payment): returns the page reply body."""
        page = body["page"]
        session = int(body.get("session", 0))
        if page == HOME:
            return {"page": page, "promos": 5}
        if page == NEW_PRODUCTS:
            items = db.new_products(body.get("subject", "ARTS"))
            return {"page": page, "count": len(items)}
        if page == BEST_SELLERS:
            items = db.best_sellers(body.get("subject", "ARTS"))
            return {"page": page, "count": len(items)}
        if page == PRODUCT_DETAIL:
            item = db.items.get(int(body.get("item_id", 1)))
            return {
                "page": page,
                "found": item is not None,
                "price_cents": item.price_cents if item else 0,
            }
        if page == SEARCH_REQUEST:
            return {"page": page}
        if page == SEARCH_RESULTS:
            items = db.search_by_author(body.get("author", "Author 1"))
            return {"page": page, "count": len(items)}
        if page == SHOPPING_CART:
            cart = db.add_to_cart(session, int(body.get("item_id", 1)))
            return {
                "page": page,
                "cart_size": len(cart.item_ids),
                "total_cents": cart.total_cents(db),
            }
        if page == CUSTOMER_REGISTRATION:
            return {"page": page, "ok": True}
        if page == BUY_REQUEST:
            order = db.create_order(int(body.get("customer_id", 1)), session)
            return {
                "page": page,
                "order_id": order.order_id if order else 0,
                "total_cents": order.total_cents if order else 0,
            }
        if page == ORDER_INQUIRY:
            return {"page": page}
        if page == ORDER_DISPLAY:
            order = db.last_order_of(int(body.get("customer_id", 1)))
            return {
                "page": page,
                "order_id": order.order_id if order else 0,
                "status": order.status if order else "none",
            }
        return {"page": page, "error": "unknown-page"}

    def start_payment(body: dict) -> tuple[MessageContext, int]:
        """Prepare the PGE authorisation for a Buy Confirm."""
        customer = db.customers.get(int(body.get("customer_id", 1)))
        order = db.last_order_of(customer.customer_id) if customer else None
        amount = order.total_cents if order and order.total_cents > 0 else 100
        order_id = order.order_id if order else 0
        context = MessageContext(
            to=pge_endpoint,
            body={
                "card": customer.card if customer else "unknown",
                "amount_cents": amount,
            },
        )
        return context, order_id

    def settle(order_id: int, pge_reply: MessageContext) -> dict:
        approved = (not pge_reply.is_fault) and bool(
            pge_reply.body.get("approved")
        )
        if approved:
            db.confirm_order(order_id, pge_reply.body.get("auth_code", ""))
            stats.approved += 1
        else:
            db.decline_order(order_id)
            stats.declined += 1
        return {"page": BUY_CONFIRM, "approved": approved, "order_id": order_id}

    def sync_app():
        while True:
            request = yield MessageHandler.receive_request()
            body = request.body or {}
            page = body.get("page", HOME)
            yield MessageHandler.compute(CPU_COST_US.get(page, 5_000))
            if page == BUY_CONFIRM:
                stats.pge_calls += 1
                payment, order_id = start_payment(body)
                pge_reply = yield MessageHandler.send_receive(payment)
                result = settle(order_id, pge_reply)
            else:
                result = handle_page(body)
            stats.record_page(page)
            yield MessageHandler.send_reply(MessageContext(body=result), request)

    def async_app():
        pending: dict[str, tuple[MessageContext, int]] = {}
        while True:
            event = yield MessageHandler.receive_any()
            if event.kind == "reply":
                original, order_id = pending.pop(event.relates_to)
                result = settle(order_id, event)
                stats.record_page(BUY_CONFIRM)
                yield MessageHandler.send_reply(
                    MessageContext(body=result), original
                )
                continue
            request = event
            body = request.body or {}
            page = body.get("page", HOME)
            yield MessageHandler.compute(CPU_COST_US.get(page, 5_000))
            if page == BUY_CONFIRM:
                stats.pge_calls += 1
                payment, order_id = start_payment(body)
                message_id = yield MessageHandler.send(payment)
                pending[message_id] = (request, order_id)
                continue
            result = handle_page(body)
            stats.record_page(page)
            yield MessageHandler.send_reply(MessageContext(body=result), request)

    return sync_app if synchronous_pge else async_app
