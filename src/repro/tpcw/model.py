"""Bookstore domain data: the MySQL-database stand-in.

The paper's bookstore runs on Tomcat against a co-located MySQL image
database. Figure 6 depends on the bookstore's per-interaction cost and
its payment out-calls, not on SQL semantics, so the database here is an
in-memory model with the TPC-W entities (items, customers, carts, orders)
and deterministic content generated from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.rng import DeterministicRng

SUBJECTS = (
    "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
    "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
    "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
    "ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
    "YOUTH", "TRAVEL",
)


@dataclass
class Item:
    item_id: int
    title: str
    author: str
    subject: str
    price_cents: int
    stock: int


@dataclass
class Customer:
    customer_id: int
    name: str
    card: str


@dataclass
class Order:
    order_id: int
    customer_id: int
    item_ids: list[int]
    total_cents: int
    status: str = "pending"
    auth_code: str = ""


@dataclass
class Cart:
    session_id: int
    item_ids: list[int] = field(default_factory=list)

    def total_cents(self, db: "BookstoreDatabase") -> int:
        return sum(db.items[i].price_cents for i in self.item_ids)


class BookstoreDatabase:
    """Deterministic in-memory TPC-W data set."""

    def __init__(self, item_count: int = 1000, customer_count: int = 288,
                 seed: int = 7) -> None:
        rng = DeterministicRng(seed, "tpcw-db")
        self.items: dict[int, Item] = {}
        for item_id in range(1, item_count + 1):
            self.items[item_id] = Item(
                item_id=item_id,
                title=f"Book {item_id:05d}",
                author=f"Author {rng.randint(1, item_count // 4)}",
                subject=rng.choice(SUBJECTS),
                price_cents=rng.randint(500, 9900),
                stock=rng.randint(10, 500),
            )
        self.customers: dict[int, Customer] = {}
        for customer_id in range(1, customer_count + 1):
            self.customers[customer_id] = Customer(
                customer_id=customer_id,
                name=f"Customer {customer_id:05d}",
                card=f"4{customer_id:015d}",
            )
        self.orders: dict[int, Order] = {}
        self.carts: dict[int, Cart] = {}
        self._next_order_id = 1

    # -- query paths used by the web interactions --------------------------

    def best_sellers(self, subject: str, limit: int = 50) -> list[Item]:
        matching = [i for i in self.items.values() if i.subject == subject]
        matching.sort(key=lambda i: (-i.stock, i.item_id))
        return matching[:limit]

    def new_products(self, subject: str, limit: int = 50) -> list[Item]:
        matching = [i for i in self.items.values() if i.subject == subject]
        matching.sort(key=lambda i: -i.item_id)
        return matching[:limit]

    def search_by_author(self, author: str) -> list[Item]:
        return [i for i in self.items.values() if i.author == author]

    def search_by_title(self, fragment: str) -> list[Item]:
        return [i for i in self.items.values() if fragment in i.title]

    # -- cart and order lifecycle -------------------------------------------

    def cart(self, session_id: int) -> Cart:
        if session_id not in self.carts:
            self.carts[session_id] = Cart(session_id=session_id)
        return self.carts[session_id]

    def add_to_cart(self, session_id: int, item_id: int) -> Cart:
        cart = self.cart(session_id)
        if item_id in self.items:
            cart.item_ids.append(item_id)
        return cart

    def create_order(self, customer_id: int, session_id: int) -> Order | None:
        cart = self.carts.get(session_id)
        if cart is None or not cart.item_ids:
            return None
        order = Order(
            order_id=self._next_order_id,
            customer_id=customer_id,
            item_ids=list(cart.item_ids),
            total_cents=cart.total_cents(self),
        )
        self._next_order_id += 1
        self.orders[order.order_id] = order
        cart.item_ids.clear()
        return order

    def confirm_order(self, order_id: int, auth_code: str) -> None:
        order = self.orders.get(order_id)
        if order is not None:
            order.status = "confirmed"
            order.auth_code = auth_code
            for item_id in order.item_ids:
                item = self.items[item_id]
                item.stock = max(item.stock - 1, 0)

    def decline_order(self, order_id: int) -> None:
        order = self.orders.get(order_id)
        if order is not None:
            order.status = "declined"

    def last_order_of(self, customer_id: int) -> Order | None:
        candidates = [
            o for o in self.orders.values() if o.customer_id == customer_id
        ]
        return candidates[-1] if candidates else None
