"""The TPC-W macro-benchmark (paper section 6.1, Figures 5 and 6).

The paper drives an online bookstore with Remote Browser Emulators (RBEs)
and measures Web Interactions Per Second (WIPS) while the bookstore's
payment path — a Payment Gateway Emulator (PGE) calling a credit-card
issuing bank, both built on Perpetual-WS — is replicated at degrees
{1, 4, 7, 10}.

This package supplies the pieces the paper's setup took from elsewhere:

- :mod:`repro.tpcw.model`        -- the bookstore domain data (items,
  customers, carts, orders) standing in for the MySQL image database;
- :mod:`repro.tpcw.interactions` -- the web-interaction set, per-page CPU
  costs, and the browsing/shopping/ordering mixes;
- :mod:`repro.tpcw.bookstore`    -- the bookstore web service (the paper's
  Tomcat servlet tier), which calls the PGE on payment traffic;
- :mod:`repro.tpcw.rbe`          -- the Remote Browser Emulator with TPC-W
  think times;
- :mod:`repro.tpcw.harness`      -- deploys the whole Figure 5 chain and
  measures WIPS (the Figure 6 series).

Runs as a declarative scenario (``docs/scenarios.md``, preset
``tpcw-small``); the Figure 6 series feeds the benchmark trajectory of
``docs/benchmarks.md``.
"""

from repro.tpcw.harness import TpcwResult, run_tpcw
from repro.tpcw.interactions import Mix, PAPER_MIX, SHOPPING_MIX
from repro.tpcw.model import BookstoreDatabase

__all__ = [
    "BookstoreDatabase",
    "Mix",
    "PAPER_MIX",
    "SHOPPING_MIX",
    "TpcwResult",
    "run_tpcw",
]
