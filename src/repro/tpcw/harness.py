"""The Figure 5 / Figure 6 harness: the full TPC-W chain as a scenario.

RBEs (all on one simulated host, over the n=1 fast path standing in for
plain HTTP) -> bookstore (n=1, Tomcat-tier stand-in) -> PGE -> bank, with
the PGE and bank replicated at the configured degrees, measuring Web
Interactions Per Second at the bookstore.

The chain is described declaratively by
:func:`repro.scenario.presets.tpcw_scenario` and executed through
:func:`repro.scenario.run_scenario`; pass ``runtime="threaded"`` or
``"process"`` to run the identical configuration on a real-parallelism
substrate (WIPS is then wall-clock-based and non-deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scenario.presets import tpcw_scenario
from repro.scenario.runtime import run_scenario
from repro.tpcw.interactions import Mix, PAPER_MIX

DEFAULT_DURATION_S = 60.0
DEFAULT_THINK_TIME_MEAN_US = 7_000_000


@dataclass(frozen=True)
class TpcwResult:
    """One Figure 6 data point."""

    rbe_count: int
    n_pge: int
    n_bank: int
    synchronous_pge: bool
    duration_s: float
    interactions: int
    wips: float
    pge_calls: int
    approved: int
    declined: int

    def row(self) -> str:
        mode = "sync " if self.synchronous_pge else "async"
        return (
            f"rbe={self.rbe_count:<3d} n_pge={self.n_pge:<3d} "
            f"n_bank={self.n_bank:<3d} {mode}  "
            f"{self.wips:6.2f} WIPS  ({self.interactions} interactions, "
            f"{self.pge_calls} payments)"
        )


def run_tpcw(
    rbe_count: int,
    n_pge: int,
    n_bank: int | None = None,
    duration_s: float = DEFAULT_DURATION_S,
    mix: Mix = PAPER_MIX,
    synchronous_pge: bool = False,
    synchronous_bookstore_pge_calls: bool | None = None,
    think_time_mean_us: int = DEFAULT_THINK_TIME_MEAN_US,
    seed: int = 11,
    runtime: str = "sim",
) -> TpcwResult:
    """Run one TPC-W configuration and return its WIPS measurement.

    ``synchronous_pge`` selects the synchronous PGE/Bank implementations
    *and* makes the bookstore block on payment calls — the section 6.4
    comparison configuration. ``n_bank`` defaults to ``n_pge`` (the paper
    always replicates both tiers equally).
    """
    if n_bank is None:
        n_bank = n_pge
    mix_data = (
        None
        if mix is PAPER_MIX
        else {"name": mix.name, "weights": [list(entry) for entry in mix.weights]}
    )
    spec = tpcw_scenario(
        rbe_count=rbe_count,
        n_pge=n_pge,
        n_bank=n_bank,
        duration_s=duration_s,
        synchronous_pge=synchronous_pge,
        synchronous_bookstore_pge_calls=synchronous_bookstore_pge_calls,
        think_time_mean_us=think_time_mean_us,
        seed=seed,
        mix=mix_data,
    )
    metrics = run_scenario(spec, runtime=runtime)
    stats = metrics.services["bookstore"].app
    interactions = stats.get("interactions", 0)
    wips = interactions / duration_s if duration_s > 0 else 0.0
    return TpcwResult(
        rbe_count=rbe_count,
        n_pge=n_pge,
        n_bank=n_bank,
        synchronous_pge=synchronous_pge,
        duration_s=duration_s,
        interactions=interactions,
        wips=wips,
        pge_calls=stats.get("pge_calls", 0),
        approved=stats.get("approved", 0),
        declined=stats.get("declined", 0),
    )


def figure6_series(
    rbe_counts: tuple[int, ...] = (7, 21, 42, 70),
    group_sizes: tuple[int, ...] = (1, 4, 7, 10),
    duration_s: float = DEFAULT_DURATION_S,
    think_time_mean_us: int = DEFAULT_THINK_TIME_MEAN_US,
    runtime: str = "sim",
) -> list[TpcwResult]:
    """The Figure 6 grid: WIPS vs RBE count for each replication degree."""
    results = []
    for n in group_sizes:
        for rbe_count in rbe_counts:
            results.append(
                run_tpcw(
                    rbe_count=rbe_count,
                    n_pge=n,
                    duration_s=duration_s,
                    think_time_mean_us=think_time_mean_us,
                    runtime=runtime,
                )
            )
    return results
