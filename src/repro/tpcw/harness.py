"""The Figure 5 / Figure 6 harness: the full TPC-W chain on one simulator.

Deploys RBEs (all on one simulated host, over the n=1 fast path standing
in for plain HTTP) -> bookstore (n=1, Tomcat-tier stand-in) -> PGE ->
bank, with the PGE and bank replicated at the configured degrees, and
measures Web Interactions Per Second at the bookstore.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.payment import bank_app, pge_app
from repro.sim.kernel import US_PER_S
from repro.tpcw.bookstore import BookstoreStats, bookstore_app
from repro.tpcw.interactions import BUY_CONFIRM, Mix, PAPER_MIX
from repro.tpcw.model import BookstoreDatabase
from repro.tpcw.rbe import rbe_app
from repro.ws.deployment import Deployment

DEFAULT_DURATION_S = 60.0
DEFAULT_THINK_TIME_MEAN_US = 7_000_000


@dataclass(frozen=True)
class TpcwResult:
    """One Figure 6 data point."""

    rbe_count: int
    n_pge: int
    n_bank: int
    synchronous_pge: bool
    duration_s: float
    interactions: int
    wips: float
    pge_calls: int
    approved: int
    declined: int

    def row(self) -> str:
        mode = "sync " if self.synchronous_pge else "async"
        return (
            f"rbe={self.rbe_count:<3d} n_pge={self.n_pge:<3d} "
            f"n_bank={self.n_bank:<3d} {mode}  "
            f"{self.wips:6.2f} WIPS  ({self.interactions} interactions, "
            f"{self.pge_calls} payments)"
        )


def run_tpcw(
    rbe_count: int,
    n_pge: int,
    n_bank: int | None = None,
    duration_s: float = DEFAULT_DURATION_S,
    mix: Mix = PAPER_MIX,
    synchronous_pge: bool = False,
    synchronous_bookstore_pge_calls: bool | None = None,
    think_time_mean_us: int = DEFAULT_THINK_TIME_MEAN_US,
    seed: int = 11,
) -> TpcwResult:
    """Run one TPC-W configuration and return its WIPS measurement.

    ``synchronous_pge`` selects the synchronous PGE/Bank implementations
    *and* makes the bookstore block on payment calls — the section 6.4
    comparison configuration. ``n_bank`` defaults to ``n_pge`` (the paper
    always replicates both tiers equally).
    """
    if n_bank is None:
        n_bank = n_pge
    if synchronous_bookstore_pge_calls is None:
        synchronous_bookstore_pge_calls = synchronous_pge

    deployment = Deployment(
        name=f"tpcw-{rbe_count}-{n_pge}-{n_bank}-{synchronous_pge}"
    )
    deployment.declare("bookstore", 1)
    deployment.declare("pge", n_pge)
    deployment.declare("bank", n_bank)
    for i in range(rbe_count):
        deployment.declare(f"rbe{i}", 1)

    deployment.add_service("bank", bank_app)
    deployment.add_service(
        "pge", pge_app(bank_endpoint="bank", synchronous=synchronous_pge)
    )
    db = BookstoreDatabase(seed=seed)
    stats = BookstoreStats()
    deployment.add_service(
        "bookstore",
        bookstore_app(
            db,
            stats,
            pge_endpoint="pge",
            synchronous_pge=synchronous_bookstore_pge_calls,
        ),
    )
    # "All the RBEs were executed within a single host."
    for i in range(rbe_count):
        deployment.add_service(
            f"rbe{i}",
            rbe_app(
                rbe_index=i,
                bookstore_endpoint="bookstore",
                mix=mix,
                seed=seed,
                think_time_mean_us=think_time_mean_us,
            ),
            hosts=["rbe-host"],
        )

    deployment.run(seconds=duration_s)
    wips = stats.interactions / duration_s if duration_s > 0 else 0.0
    return TpcwResult(
        rbe_count=rbe_count,
        n_pge=n_pge,
        n_bank=n_bank,
        synchronous_pge=synchronous_pge,
        duration_s=duration_s,
        interactions=stats.interactions,
        wips=wips,
        pge_calls=stats.pge_calls,
        approved=stats.approved,
        declined=stats.declined,
    )


def figure6_series(
    rbe_counts: tuple[int, ...] = (7, 21, 42, 70),
    group_sizes: tuple[int, ...] = (1, 4, 7, 10),
    duration_s: float = DEFAULT_DURATION_S,
    think_time_mean_us: int = DEFAULT_THINK_TIME_MEAN_US,
) -> list[TpcwResult]:
    """The Figure 6 grid: WIPS vs RBE count for each replication degree."""
    results = []
    for n in group_sizes:
        for rbe_count in rbe_counts:
            results.append(
                run_tpcw(
                    rbe_count=rbe_count,
                    n_pge=n,
                    duration_s=duration_s,
                    think_time_mean_us=think_time_mean_us,
                )
            )
    return results
