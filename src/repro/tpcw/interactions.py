"""The TPC-W web interactions, their CPU costs, and the traffic mixes.

TPC-W defines fourteen web interactions; the paper's open-source Java
implementation exposes them as "twelve distinct web pages" (admin pages
are typically excluded from the mix, as here). Per-interaction CPU costs
model servlet work plus the MySQL queries behind each page on the paper's
testbed class — browsing pages are cheap, search and best-sellers scan
more, and the buy pages write.

Mixes: the canonical TPC-W *shopping* mix sends ~1% of traffic through
Buy Confirm, but the paper states that "around 5-10% of the total traffic
received by the bookstore results in requests being issued to an external
Payment Gateway Emulator"; :data:`PAPER_MIX` therefore shifts weight
toward the ordering pages to land the payment fraction in that band
(documented substitution — see DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

HOME = "home"
NEW_PRODUCTS = "new_products"
BEST_SELLERS = "best_sellers"
PRODUCT_DETAIL = "product_detail"
SEARCH_REQUEST = "search_request"
SEARCH_RESULTS = "search_results"
SHOPPING_CART = "shopping_cart"
CUSTOMER_REGISTRATION = "customer_registration"
BUY_REQUEST = "buy_request"
BUY_CONFIRM = "buy_confirm"
ORDER_INQUIRY = "order_inquiry"
ORDER_DISPLAY = "order_display"

ALL_INTERACTIONS = (
    HOME, NEW_PRODUCTS, BEST_SELLERS, PRODUCT_DETAIL, SEARCH_REQUEST,
    SEARCH_RESULTS, SHOPPING_CART, CUSTOMER_REGISTRATION, BUY_REQUEST,
    BUY_CONFIRM, ORDER_INQUIRY, ORDER_DISPLAY,
)

#: Servlet + database CPU per page, microseconds (testbed-class model).
CPU_COST_US = {
    HOME: 8_000,
    NEW_PRODUCTS: 18_000,
    BEST_SELLERS: 22_000,
    PRODUCT_DETAIL: 6_000,
    SEARCH_REQUEST: 4_000,
    SEARCH_RESULTS: 20_000,
    SHOPPING_CART: 10_000,
    CUSTOMER_REGISTRATION: 6_000,
    BUY_REQUEST: 12_000,
    BUY_CONFIRM: 16_000,
    ORDER_INQUIRY: 5_000,
    ORDER_DISPLAY: 12_000,
}


@dataclass(frozen=True)
class Mix:
    """A static interaction mix: page -> probability weight."""

    name: str
    weights: tuple[tuple[str, float], ...]

    def pages(self) -> list[str]:
        return [page for page, _ in self.weights]

    def probabilities(self) -> list[float]:
        return [weight for _, weight in self.weights]

    def fraction_of(self, page: str) -> float:
        total = sum(w for _, w in self.weights)
        for p, w in self.weights:
            if p == page:
                return w / total
        return 0.0


#: The canonical TPC-W shopping mix (WIPS).
SHOPPING_MIX = Mix(
    name="shopping",
    weights=(
        (HOME, 16.00),
        (NEW_PRODUCTS, 5.00),
        (BEST_SELLERS, 5.00),
        (PRODUCT_DETAIL, 17.00),
        (SEARCH_REQUEST, 20.00),
        (SEARCH_RESULTS, 17.00),
        (SHOPPING_CART, 11.60),
        (CUSTOMER_REGISTRATION, 3.00),
        (BUY_REQUEST, 2.60),
        (BUY_CONFIRM, 1.20),
        (ORDER_INQUIRY, 0.75),
        (ORDER_DISPLAY, 0.85),
    ),
)

#: The paper's configuration: payment traffic in the 5-10% band.
PAPER_MIX = Mix(
    name="paper",
    weights=(
        (HOME, 14.00),
        (NEW_PRODUCTS, 5.00),
        (BEST_SELLERS, 5.00),
        (PRODUCT_DETAIL, 15.00),
        (SEARCH_REQUEST, 16.00),
        (SEARCH_RESULTS, 14.00),
        (SHOPPING_CART, 11.00),
        (CUSTOMER_REGISTRATION, 4.00),
        (BUY_REQUEST, 7.00),
        (BUY_CONFIRM, 7.00),
        (ORDER_INQUIRY, 1.00),
        (ORDER_DISPLAY, 1.00),
    ),
)

#: The canonical TPC-W ordering mix (WIPSo).
ORDERING_MIX = Mix(
    name="ordering",
    weights=(
        (HOME, 9.12),
        (NEW_PRODUCTS, 0.46),
        (BEST_SELLERS, 0.46),
        (PRODUCT_DETAIL, 12.35),
        (SEARCH_REQUEST, 14.53),
        (SEARCH_RESULTS, 13.08),
        (SHOPPING_CART, 13.53),
        (CUSTOMER_REGISTRATION, 12.86),
        (BUY_REQUEST, 12.73),
        (BUY_CONFIRM, 10.18),
        (ORDER_INQUIRY, 0.25),
        (ORDER_DISPLAY, 0.45),
    ),
)
