"""Design-choice ablations (DESIGN.md section 5).

Two measurable ablations back the paper's architectural arguments:

- **MAC vs digital signatures** (section 3, "Cryptographic overhead"):
  rerun the two-tier micro-benchmark with the signature cost model and
  show throughput collapsing as replica groups grow — the reason
  Perpetual-WS (like Thema) chose MACs.
- **Responder bundling vs all-to-all replies** (Figure 1, stages 5-6):
  count reply-path messages with the responder pattern versus the naive
  ``nt x nc`` full mesh the paper explicitly avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cost import MAC_COST_MODEL, SIGNATURE_COST_MODEL
from repro.experiments.microbench import MicrobenchResult, run_two_tier


@dataclass(frozen=True)
class CryptoAblationRow:
    n: int
    mac_rps: float
    signature_rps: float

    @property
    def slowdown(self) -> float:
        if self.signature_rps == 0:
            return float("inf")
        return self.mac_rps / self.signature_rps


def crypto_ablation(
    group_sizes: tuple[int, ...] = (1, 4, 7),
    total_calls: int = 60,
) -> list[CryptoAblationRow]:
    """Two-tier throughput under MAC vs signature authentication."""
    rows = []
    for n in group_sizes:
        mac = run_two_tier(n, n, total_calls=total_calls,
                           cost_model=MAC_COST_MODEL)
        sig = run_two_tier(n, n, total_calls=total_calls,
                           cost_model=SIGNATURE_COST_MODEL)
        rows.append(
            CryptoAblationRow(
                n=n,
                mac_rps=mac.throughput_rps,
                signature_rps=sig.throughput_rps,
            )
        )
    return rows


@dataclass(frozen=True)
class ReplyPathRow:
    n_target: int
    n_calling: int

    @property
    def responder_messages(self) -> int:
        """Stage 5 + stage 6: (nt - 1) forwards plus nc bundle sends."""
        return (self.n_target - 1) + self.n_calling

    @property
    def all_to_all_messages(self) -> int:
        """The nt x nc mesh the paper avoids (section 2.1.1)."""
        return self.n_target * self.n_calling

    @property
    def savings_factor(self) -> float:
        return self.all_to_all_messages / max(self.responder_messages, 1)


def reply_path_ablation(
    group_sizes: tuple[int, ...] = (1, 4, 7, 10),
) -> list[ReplyPathRow]:
    """Message counts for the reply path under both designs."""
    return [
        ReplyPathRow(n_target=nt, n_calling=nc)
        for nt in group_sizes
        for nc in group_sizes
    ]
