"""The two-tier micro-benchmarks of paper section 6.2.

One harness covers Figures 7, 8, and 9: a calling service and a target
service, both deployed with Perpetual-WS, with throughput and completion
time measured at the calling service (replica 0's driver, as the paper
records at the calling web service).

- Figure 7: ``run_two_tier`` with null requests over the
  {1,4,7,10} x {1,4,7,10} replication grid;
- Figure 8: ``run_two_tier`` with ``cpu_ms`` request processing time swept
  over 0..20 ms at n_t = n_c in {1,4,7,10};
- Figure 9: ``run_async_window`` sweeping the parallel-request window
  over {1,5,10,20,25} at n_t = n_c in {4,7,10}.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.counter import counter_app
from repro.apps.digest import digest_app
from repro.apps.workloads import (
    CompletionRecorder,
    async_window_caller,
    sync_closed_loop_caller,
)
from repro.common.encoding import clear_wire_caches
from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.sim.kernel import US_PER_S
from repro.ws.deployment import Deployment

# Replication degrees measured by the paper's micro-benchmarks.
PAPER_GROUP_SIZES = (1, 4, 7, 10)
PAPER_WINDOWS = (1, 5, 10, 20, 25)

DEFAULT_CALLS = 150
MAX_SIM_SECONDS = 600.0


@dataclass(frozen=True)
class MicrobenchResult:
    """One cell of a micro-benchmark sweep."""

    n_calling: int
    n_target: int
    window: int
    cpu_ms: int
    completed: int
    aborted: int
    duration_s: float
    throughput_rps: float
    ms_per_request: float

    def row(self) -> str:
        return (
            f"nc={self.n_calling:<3d} nt={self.n_target:<3d} "
            f"window={self.window:<3d} cpu={self.cpu_ms:>2d}ms  "
            f"{self.throughput_rps:8.1f} req/s  "
            f"{self.ms_per_request:7.3f} ms/req"
        )


def _run(
    n_calling: int,
    n_target: int,
    caller_factory,
    target_factory,
    total_calls: int,
    window: int,
    cpu_ms: int,
    cost_model: CryptoCostModel,
) -> MicrobenchResult:
    # Every cell starts with cold wire caches: sweeps measure each
    # configuration under equal cache state, and dead message graphs from
    # earlier cells are released instead of pinned by the global memos.
    clear_wire_caches()
    deployment = Deployment(name=f"micro-{n_calling}-{n_target}-{window}-{cpu_ms}")
    deployment.declare("caller", n_calling)
    deployment.declare("target", n_target)
    deployment.add_service("target", target_factory, cost_model=cost_model)
    caller = deployment.add_service("caller", caller_factory, cost_model=cost_model)
    deployment.run(seconds=MAX_SIM_SECONDS)

    driver = caller.group.drivers[0]
    completed = driver.completed_calls
    start_us = driver.first_issue_us or 0
    duration_us = max(driver.last_completion_us - start_us, 1)
    duration_s = duration_us / US_PER_S
    throughput = completed / duration_s if completed else 0.0
    ms_per_request = (duration_us / 1000.0 / completed) if completed else float("inf")
    return MicrobenchResult(
        n_calling=n_calling,
        n_target=n_target,
        window=window,
        cpu_ms=cpu_ms,
        completed=completed,
        aborted=driver.aborted_calls,
        duration_s=duration_s,
        throughput_rps=throughput,
        ms_per_request=ms_per_request,
    )


def run_two_tier(
    n_calling: int,
    n_target: int,
    total_calls: int = DEFAULT_CALLS,
    cpu_ms: int = 0,
    cost_model: CryptoCostModel = MAC_COST_MODEL,
) -> MicrobenchResult:
    """Closed-loop synchronous two-tier benchmark (Figures 7 and 8).

    ``cpu_ms == 0`` uses the increment null-operation service; positive
    values use the digest service burning that much CPU per request.
    """
    recorder = CompletionRecorder()
    if cpu_ms > 0:
        target_factory = digest_app
        body = {"cpu_us": cpu_ms * 1000}
    else:
        target_factory = counter_app
        body = {}
    caller_factory = sync_closed_loop_caller(
        target="target", total_calls=total_calls, recorder=recorder, body=body
    )
    return _run(
        n_calling=n_calling,
        n_target=n_target,
        caller_factory=caller_factory,
        target_factory=target_factory,
        total_calls=total_calls,
        window=1,
        cpu_ms=cpu_ms,
        cost_model=cost_model,
    )


def run_async_window(
    n_calling: int,
    n_target: int,
    window: int,
    total_calls: int = DEFAULT_CALLS,
    cpu_ms: int = 0,
    cost_model: CryptoCostModel = MAC_COST_MODEL,
) -> MicrobenchResult:
    """Windowed asynchronous two-tier benchmark (Figure 9)."""
    recorder = CompletionRecorder()
    if cpu_ms > 0:
        target_factory = digest_app
        body = {"cpu_us": cpu_ms * 1000}
    else:
        target_factory = counter_app
        body = {}
    caller_factory = async_window_caller(
        target="target",
        total_calls=total_calls,
        window=window,
        recorder=recorder,
        body=body,
    )
    return _run(
        n_calling=n_calling,
        n_target=n_target,
        caller_factory=caller_factory,
        target_factory=target_factory,
        total_calls=total_calls,
        window=window,
        cpu_ms=cpu_ms,
        cost_model=cost_model,
    )


def figure7_series(
    group_sizes: tuple[int, ...] = PAPER_GROUP_SIZES,
    total_calls: int = DEFAULT_CALLS,
) -> list[MicrobenchResult]:
    """The full Figure 7 grid: throughput vs n_c for each n_t."""
    results = []
    for n_target in group_sizes:
        for n_calling in group_sizes:
            results.append(
                run_two_tier(n_calling, n_target, total_calls=total_calls)
            )
    return results


def figure8_series(
    group_sizes: tuple[int, ...] = PAPER_GROUP_SIZES,
    cpu_points_ms: tuple[int, ...] = (0, 2, 4, 6, 8, 12, 16, 20),
    total_calls: int = DEFAULT_CALLS,
) -> list[MicrobenchResult]:
    """The Figure 8 sweep: completion time vs processing CPU time."""
    results = []
    for n in group_sizes:
        for cpu_ms in cpu_points_ms:
            results.append(
                run_two_tier(n, n, total_calls=total_calls, cpu_ms=cpu_ms)
            )
    return results


def figure9_series(
    group_sizes: tuple[int, ...] = (4, 7, 10),
    windows: tuple[int, ...] = PAPER_WINDOWS,
    total_calls: int = DEFAULT_CALLS,
) -> list[MicrobenchResult]:
    """The Figure 9 sweep: throughput vs parallel async window size."""
    results = []
    for n in group_sizes:
        for window in windows:
            results.append(
                run_async_window(n, n, window=window, total_calls=total_calls)
            )
    return results
