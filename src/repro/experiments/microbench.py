"""The two-tier micro-benchmarks of paper section 6.2.

One harness covers Figures 7, 8, and 9: a calling service and a target
service, both deployed with Perpetual-WS, with throughput and completion
time measured at the calling service (replica 0's driver, as the paper
records at the calling web service).

Every cell is a declarative scenario — built by
:func:`repro.scenario.presets.two_tier_scenario` and executed through the
substrate-agnostic :func:`repro.scenario.run_scenario` — so the same
sweep that runs deterministically on the simulator can be pointed at the
threaded or multi-process runtime with the ``runtime`` argument.

- Figure 7: ``run_two_tier`` with null requests over the
  {1,4,7,10} x {1,4,7,10} replication grid;
- Figure 8: ``run_two_tier`` with ``cpu_ms`` request processing time swept
  over 0..20 ms at n_t = n_c in {1,4,7,10};
- Figure 9: ``run_async_window`` sweeping the parallel-request window
  over {1,5,10,20,25} at n_t = n_c in {4,7,10}.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.scenario.presets import two_tier_scenario
from repro.scenario.runtime import run_scenario
from repro.sim.kernel import US_PER_S

# Replication degrees measured by the paper's micro-benchmarks.
PAPER_GROUP_SIZES = (1, 4, 7, 10)
PAPER_WINDOWS = (1, 5, 10, 20, 25)

DEFAULT_CALLS = 150
MAX_SIM_SECONDS = 600.0


@dataclass(frozen=True)
class MicrobenchResult:
    """One cell of a micro-benchmark sweep."""

    n_calling: int
    n_target: int
    window: int
    cpu_ms: int
    completed: int
    aborted: int
    duration_s: float
    throughput_rps: float
    ms_per_request: float

    def row(self) -> str:
        return (
            f"nc={self.n_calling:<3d} nt={self.n_target:<3d} "
            f"window={self.window:<3d} cpu={self.cpu_ms:>2d}ms  "
            f"{self.throughput_rps:8.1f} req/s  "
            f"{self.ms_per_request:7.3f} ms/req"
        )


def _run(
    n_calling: int,
    n_target: int,
    total_calls: int,
    window: int,
    cpu_ms: int,
    cost_model: CryptoCostModel,
    runtime: str = "sim",
    asynchronous: bool = False,
    batching: str | int = "off",
) -> MicrobenchResult:
    spec = two_tier_scenario(
        n_calling=n_calling,
        n_target=n_target,
        total_calls=total_calls,
        window=window,
        cpu_ms=cpu_ms,
        # Self-describing model parameters: the spec carries the full
        # cost model, so custom models reach spawned worker processes.
        crypto=cost_model.name,
        crypto_params={
            "sign_us": cost_model.sign_us,
            "verify_us": cost_model.verify_us,
            "per_receiver_us": cost_model.per_receiver_us,
        },
        duration_s=MAX_SIM_SECONDS,
        asynchronous=asynchronous,
        batching=batching,
    )
    metrics = run_scenario(spec, runtime=runtime)

    caller = metrics.services["caller"]
    completed = caller.completed_calls
    duration_us = max(caller.last_completion_us - caller.first_issue_us, 1)
    duration_s = duration_us / US_PER_S
    throughput = completed / duration_s if completed else 0.0
    ms_per_request = (duration_us / 1000.0 / completed) if completed else float("inf")
    return MicrobenchResult(
        n_calling=n_calling,
        n_target=n_target,
        window=window,
        cpu_ms=cpu_ms,
        completed=completed,
        aborted=caller.aborted_calls,
        duration_s=duration_s,
        throughput_rps=throughput,
        ms_per_request=ms_per_request,
    )


def run_two_tier(
    n_calling: int,
    n_target: int,
    total_calls: int = DEFAULT_CALLS,
    cpu_ms: int = 0,
    cost_model: CryptoCostModel = MAC_COST_MODEL,
    runtime: str = "sim",
    batching: str | int = "off",
) -> MicrobenchResult:
    """Closed-loop synchronous two-tier benchmark (Figures 7 and 8).

    ``cpu_ms == 0`` uses the increment null-operation service; positive
    values use the digest service burning that much CPU per request.
    """
    return _run(
        n_calling=n_calling,
        n_target=n_target,
        total_calls=total_calls,
        window=1,
        cpu_ms=cpu_ms,
        cost_model=cost_model,
        runtime=runtime,
        batching=batching,
    )


def run_async_window(
    n_calling: int,
    n_target: int,
    window: int,
    total_calls: int = DEFAULT_CALLS,
    cpu_ms: int = 0,
    cost_model: CryptoCostModel = MAC_COST_MODEL,
    runtime: str = "sim",
    batching: str | int = "off",
) -> MicrobenchResult:
    """Windowed asynchronous two-tier benchmark (Figure 9)."""
    return _run(
        n_calling=n_calling,
        n_target=n_target,
        total_calls=total_calls,
        window=window,
        cpu_ms=cpu_ms,
        cost_model=cost_model,
        runtime=runtime,
        asynchronous=True,
        batching=batching,
    )


def figure7_series(
    group_sizes: tuple[int, ...] = PAPER_GROUP_SIZES,
    total_calls: int = DEFAULT_CALLS,
    runtime: str = "sim",
) -> list[MicrobenchResult]:
    """The full Figure 7 grid: throughput vs n_c for each n_t."""
    results = []
    for n_target in group_sizes:
        for n_calling in group_sizes:
            results.append(
                run_two_tier(
                    n_calling, n_target, total_calls=total_calls, runtime=runtime
                )
            )
    return results


def figure8_series(
    group_sizes: tuple[int, ...] = PAPER_GROUP_SIZES,
    cpu_points_ms: tuple[int, ...] = (0, 2, 4, 6, 8, 12, 16, 20),
    total_calls: int = DEFAULT_CALLS,
    runtime: str = "sim",
) -> list[MicrobenchResult]:
    """The Figure 8 sweep: completion time vs processing CPU time."""
    results = []
    for n in group_sizes:
        for cpu_ms in cpu_points_ms:
            results.append(
                run_two_tier(
                    n, n, total_calls=total_calls, cpu_ms=cpu_ms, runtime=runtime
                )
            )
    return results


def figure9_series(
    group_sizes: tuple[int, ...] = (4, 7, 10),
    windows: tuple[int, ...] = PAPER_WINDOWS,
    total_calls: int = DEFAULT_CALLS,
    runtime: str = "sim",
) -> list[MicrobenchResult]:
    """The Figure 9 sweep: throughput vs parallel async window size."""
    results = []
    for n in group_sizes:
        for window in windows:
            results.append(
                run_async_window(
                    n, n, window=window, total_calls=total_calls, runtime=runtime
                )
            )
    return results
