"""Experiment harnesses: one per paper table/figure.

Each harness regenerates the series a figure plots and returns structured
rows; the benchmark suite prints them and asserts the paper's qualitative
shape. See DESIGN.md section 4 for the experiment index.

- :mod:`repro.experiments.microbench` -- the two-tier micro-benchmarks
  (Figures 7, 8, 9 and the section 6.4 textual claims);
- :mod:`repro.experiments.tpcw`       -- the TPC-W macro-benchmark
  (Figure 6 and the async-vs-sync PGE comparison);
- :mod:`repro.experiments.ablations`  -- design-choice ablations
  (MAC vs signatures, responder bundling vs all-to-all).

The representative cells double as the performance regression gate —
measurement protocol and baseline-refresh procedure in
``docs/benchmarks.md``; scenario presets in ``docs/scenarios.md``.
"""

from repro.experiments.microbench import (
    MicrobenchResult,
    run_async_window,
    run_two_tier,
)

__all__ = [
    "MicrobenchResult",
    "run_async_window",
    "run_two_tier",
]
