"""Command-line entry point: regenerate any paper figure.

Usage::

    python -m repro.experiments fig7          # full Figure 7 grid
    python -m repro.experiments fig8 --calls 40
    python -m repro.experiments fig9
    python -m repro.experiments fig6 --duration 30
    python -m repro.experiments fig2
    python -m repro.experiments ablations

Prints the same series the corresponding benchmark regenerates; useful
for quick sweeps without the pytest harness.
"""

from __future__ import annotations

import argparse


def _fig2(args) -> None:
    from repro.baselines.features import render_matrix

    print(render_matrix())


def _fig6(args) -> None:
    from repro.tpcw.harness import figure6_series

    for result in figure6_series(
        rbe_counts=tuple(args.rbes),
        group_sizes=tuple(args.groups),
        duration_s=args.duration,
    ):
        print(result.row())


def _fig7(args) -> None:
    from repro.experiments.microbench import figure7_series

    for result in figure7_series(
        group_sizes=tuple(args.groups), total_calls=args.calls
    ):
        print(result.row())


def _fig8(args) -> None:
    from repro.experiments.microbench import figure8_series

    for result in figure8_series(
        group_sizes=tuple(args.groups), total_calls=args.calls
    ):
        print(result.row())


def _fig9(args) -> None:
    from repro.experiments.microbench import figure9_series

    for result in figure9_series(total_calls=args.calls):
        print(result.row())


def _ablations(args) -> None:
    from repro.experiments.ablations import crypto_ablation, reply_path_ablation

    print("-- MAC vs signatures")
    for row in crypto_ablation(total_calls=args.calls):
        print(
            f"n={row.n}: MAC {row.mac_rps:.1f} rps, "
            f"signatures {row.signature_rps:.1f} rps "
            f"({row.slowdown:.2f}x slowdown)"
        )
    print("-- responder bundling vs all-to-all")
    for row in reply_path_ablation():
        print(
            f"nt={row.n_target} nc={row.n_calling}: "
            f"{row.responder_messages} vs {row.all_to_all_messages} msgs "
            f"({row.savings_factor:.1f}x saving)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate figures from the Perpetual-WS paper.",
    )
    sub = parser.add_subparsers(dest="figure", required=True)

    handlers = {
        "fig2": _fig2, "fig6": _fig6, "fig7": _fig7,
        "fig8": _fig8, "fig9": _fig9, "ablations": _ablations,
    }
    for name in handlers:
        p = sub.add_parser(name)
        p.add_argument("--calls", type=int, default=100,
                       help="logical calls per configuration")
        p.add_argument("--duration", type=float, default=45.0,
                       help="TPC-W simulated seconds (fig6)")
        p.add_argument("--groups", type=int, nargs="+",
                       default=[1, 4, 7, 10], help="replica group sizes")
        p.add_argument("--rbes", type=int, nargs="+",
                       default=[7, 21, 42], help="RBE counts (fig6)")

    args = parser.parse_args(argv)
    handlers[args.figure](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
