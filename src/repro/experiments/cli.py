"""Command-line entry point: regenerate figures, or run any scenario.

``python -m repro.experiments <figure>`` prints the series the
corresponding benchmark regenerates; ``run`` executes a declarative
scenario — a preset or a JSON file — on any substrate (``sim``,
``threaded``, or ``process``). See ``--help`` for one worked example per
figure.
"""

from __future__ import annotations

import argparse
import sys

_EXAMPLES = """\
examples (one per figure, plus the scenario runner):
  fig2:  python -m repro.experiments fig2
  fig6:  python -m repro.experiments fig6 --duration 30 --rbes 7 21
  fig7:  python -m repro.experiments fig7 --calls 80 --groups 1 4 7 10
  fig8:  python -m repro.experiments fig8 --calls 40 --groups 1 4
  fig9:  python -m repro.experiments fig9 --calls 120
  abl.:  python -m repro.experiments ablations --calls 60
  run:   python -m repro.experiments run --preset echo-parity --runtime process
         python -m repro.experiments run --preset tpcw-small --runtime sim
         python -m repro.experiments run --preset two-tier --dump > t.json
         python -m repro.experiments run --scenario t.json --runtime threaded
         python -m repro.experiments run --preset echo-parity --runtime asyncio
         python -m repro.experiments run --preset sharded-echo --runtime process --transport tcp

sharded presets (multi-group: consistent-hash or service_name routing;
each group is an independent BFT worker set — see docs/scenarios.md):
  shard: python -m repro.experiments run --preset sharded-echo --runtime process
         python -m repro.experiments run --preset sharded-tpcw --runtime sim

chaos presets (scripted adversaries; every kind runs on sim, threaded,
and process — except link, which shapes the modelled network, sim only):
  crash      replica never speaks:         .crash("svc", 2)
  byzantine  equivocate / corrupt / mute:  .byzantine("svc", 0, mode="mute")
  delay      defer every outbound message: .delay("svc", 1, delay_us=5000)
  partition  split until heal deadline:    .partition("svc", [3], heal_after_us=2_000_000)
  restart    crash then rejoin:            .restart("svc", 2, up_after_us=3_000_000)
  link       per-link drop/delay (sim):    .link_fault("a/d0", "b/v1", drop=0.3)
  chaos: python -m repro.experiments run --preset chaos-equivocating-primary
         python -m repro.experiments run --preset chaos-partition-heal --runtime threaded
         python -m repro.experiments run --preset chaos-slow-drip --runtime process
         python -m repro.experiments run --preset chaos-soak
"""


def _fig2(args) -> None:
    from repro.baselines.features import render_matrix

    print(render_matrix())


def _fig6(args) -> None:
    from repro.tpcw.harness import figure6_series

    for result in figure6_series(
        rbe_counts=tuple(args.rbes),
        group_sizes=tuple(args.groups),
        duration_s=args.duration,
    ):
        print(result.row())


def _fig7(args) -> None:
    from repro.experiments.microbench import figure7_series

    for result in figure7_series(
        group_sizes=tuple(args.groups), total_calls=args.calls
    ):
        print(result.row())


def _fig8(args) -> None:
    from repro.experiments.microbench import figure8_series

    for result in figure8_series(
        group_sizes=tuple(args.groups), total_calls=args.calls
    ):
        print(result.row())


def _fig9(args) -> None:
    from repro.experiments.microbench import figure9_series

    for result in figure9_series(total_calls=args.calls):
        print(result.row())


def _ablations(args) -> None:
    from repro.experiments.ablations import crypto_ablation, reply_path_ablation

    print("-- MAC vs signatures")
    for row in crypto_ablation(total_calls=args.calls):
        print(
            f"n={row.n}: MAC {row.mac_rps:.1f} rps, "
            f"signatures {row.signature_rps:.1f} rps "
            f"({row.slowdown:.2f}x slowdown)"
        )
    print("-- responder bundling vs all-to-all")
    for row in reply_path_ablation():
        print(
            f"nt={row.n_target} nc={row.n_calling}: "
            f"{row.responder_messages} vs {row.all_to_all_messages} msgs "
            f"({row.savings_factor:.1f}x saving)"
        )


def _run(args) -> None:
    from repro.scenario.presets import PRESETS, preset
    from repro.scenario.runtime import run_scenario
    from repro.scenario.spec import ScenarioSpec

    if args.scenario is not None:
        with open(args.scenario, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(handle.read())
    elif args.preset is not None:
        spec = preset(args.preset)
    else:
        raise SystemExit(
            "run: pass --scenario <file.json> or --preset "
            f"<{'|'.join(sorted(PRESETS))}>"
        )
    if args.duration is not None:
        spec = spec.with_(duration_s=args.duration)
    if args.dump:
        print(spec.to_json(indent=2))
        return

    runtime = args.runtime
    if getattr(args, "transport", "pipe") != "pipe":
        if args.runtime != "process":
            raise SystemExit("run: --transport applies only to "
                             "--runtime process")
        from repro.scenario.process import ProcessRuntime

        runtime = ProcessRuntime(transport=args.transport)
    print(f"scenario {spec.name!r} on runtime {args.runtime!r} ...",
          file=sys.stderr)
    metrics = run_scenario(spec, runtime=runtime)
    print(f"scenario={metrics.scenario} runtime={metrics.runtime} "
          f"processes={metrics.processes} now_us={metrics.now_us}")
    for name, svc in sorted(metrics.services.items()):
        group_label = f" group={svc.group}" if svc.group is not None else ""
        print(
            f"  {name:<12s} n={svc.n:<3d} completed={svc.completed_calls:<6d} "
            f"aborted={svc.aborted_calls:<4d} served={svc.requests_served:<6d} "
            f"delivered={svc.delivered_requests:<6d} "
            f"view_changes={svc.view_changes}{group_label}"
        )
        if svc.app:
            print(f"  {'':<12s} app={svc.app}")
    fault_counters = {
        key: metrics.counters.get(key, 0)
        for key in ("retransmissions", "view_changes", "faults_injected",
                    "cache_evictions")
    }
    if any(fault_counters.values()):
        print(f"  counters: {fault_counters}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate figures from the Perpetual-WS paper, or "
        "run a declarative scenario on any substrate.",
        epilog=_EXAMPLES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure_handlers = {
        "fig2": _fig2, "fig6": _fig6, "fig7": _fig7,
        "fig8": _fig8, "fig9": _fig9, "ablations": _ablations,
    }
    for name in figure_handlers:
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--calls", type=int, default=100,
                       help="logical calls per configuration")
        p.add_argument("--duration", type=float, default=45.0,
                       help="TPC-W simulated seconds (fig6)")
        p.add_argument("--groups", type=int, nargs="+",
                       default=[1, 4, 7, 10], help="replica group sizes")
        p.add_argument("--rbes", type=int, nargs="+",
                       default=[7, 21, 42], help="RBE counts (fig6)")

    run_parser = sub.add_parser(
        "run", help="run a ScenarioSpec on sim, threaded, process, or asyncio"
    )
    run_parser.add_argument("--scenario", metavar="FILE",
                            help="scenario JSON document to execute")
    run_parser.add_argument("--preset",
                            help="named preset scenario (see epilog)")
    run_parser.add_argument("--runtime", default="sim",
                            choices=("sim", "threaded", "process", "asyncio"),
                            help="substrate to execute on (default: sim)")
    run_parser.add_argument("--transport", default="pipe",
                            choices=("pipe", "tcp"),
                            help="process-substrate worker rendezvous: "
                            "duplex pipes or localhost TCP sockets "
                            "(default: pipe)")
    run_parser.add_argument("--duration", type=float, default=None,
                            help="override the scenario's run budget")
    run_parser.add_argument("--dump", action="store_true",
                            help="print the scenario JSON instead of running")

    args = parser.parse_args(argv)
    handlers = dict(figure_handlers, run=_run)
    handlers[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
