"""Figure 6 and the section 6.4 async-vs-sync claim (TXT-A).

Thin experiment-level wrappers over :mod:`repro.tpcw.harness` keeping the
per-figure entry points in one package.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tpcw.harness import TpcwResult, figure6_series, run_tpcw

__all__ = ["AsyncVsSyncResult", "async_vs_sync", "figure6_series", "run_tpcw"]


@dataclass(frozen=True)
class AsyncVsSyncResult:
    """The section 6.4 comparison: asynchronous vs synchronous PGE/Bank."""

    async_result: TpcwResult
    sync_result: TpcwResult

    @property
    def gain_percent(self) -> float:
        if self.sync_result.wips == 0:
            return 0.0
        return (
            (self.async_result.wips - self.sync_result.wips)
            / self.sync_result.wips
            * 100.0
        )


def async_vs_sync(
    rbe_count: int = 42,
    n_pge: int = 4,
    duration_s: float = 60.0,
    think_time_mean_us: int = 7_000_000,
) -> AsyncVsSyncResult:
    """Run the same TPC-W configuration with async and sync PGE/Bank."""
    async_result = run_tpcw(
        rbe_count=rbe_count,
        n_pge=n_pge,
        duration_s=duration_s,
        synchronous_pge=False,
        think_time_mean_us=think_time_mean_us,
    )
    sync_result = run_tpcw(
        rbe_count=rbe_count,
        n_pge=n_pge,
        duration_s=duration_s,
        synchronous_pge=True,
        think_time_mean_us=think_time_mean_us,
    )
    return AsyncVsSyncResult(async_result=async_result, sync_result=sync_result)
