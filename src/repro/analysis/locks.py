"""Lock-discipline race checker for the live substrates.

A two-pass, per-class analysis of the modules whose state real threads
share: :mod:`repro.runtime.cluster` (node workers + timer wheel),
:mod:`repro.scenario.process` (router/egress pair), and
:mod:`repro.scenario.threaded`.

Pass 1 infers the class's *thread entry points* — methods handed to
``threading.Thread(target=...)`` (directly or inside a lambda) — and
closes them over the intra-class call graph, so every method is tagged
with the set of execution contexts that can reach it (each spawned
thread is one context; all remaining methods form the ``main`` context;
``__init__`` is exempt, since construction happens-before thread
publication).

Pass 2 collects every write to ``self.<attr>`` — assignments, augmented
assignments, subscript stores, deletes, mutating method calls
(``append``/``add``/``pop``/...), and ``heapq`` operations on the
attribute — and reports any attribute written from two or more contexts
where the write is not lexically dominated by ``with self.<lock>:`` for
a lock attribute of the class. ``# analysis: guarded-by(<what>)``
documents the sanctioned exceptions (e.g. a write that is provably
single-threaded by protocol phase); attributes bound to inherently
thread-safe structures (``queue.Queue``, ``threading.Event``) are
exempt from mutating-call tracking.

The static pass is backed dynamically by
:mod:`repro.runtime.sanitizer`: ``ThreadedRuntime(debug_locks=True)``
wraps the same structures in assert-owner proxies, so every
``guarded-by`` claim is checked under the chaos presets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import Rule, SourceFile, Violation, register, self_attr

#: Modules the checker covers: where real threads mutate shared state.
LOCK_SCOPE = (
    "runtime/cluster.py",
    "runtime/sanitizer.py",
    "scenario/process.py",
    "scenario/threaded.py",
)

#: Constructors whose instances are lock-like: holding one is a guard.
_LOCK_TYPES = frozenset(("Lock", "RLock", "Condition", "Semaphore"))

#: Constructors whose instances serialise access internally.
_THREADSAFE_TYPES = frozenset(
    ("Queue", "SimpleQueue", "LifoQueue", "PriorityQueue", "Event")
)

#: Method calls on an attribute that mutate it.
_MUTATORS = frozenset(
    (
        "append", "appendleft", "extend", "insert",
        "add", "discard", "remove",
        "pop", "popleft", "popitem", "clear",
        "update", "setdefault",
        "put", "put_nowait", "push",
    )
)

#: Module-level functions that mutate their first argument.
_MUTATING_FUNCS = frozenset(
    ("heappush", "heappop", "heapify", "heapreplace", "heappushpop")
)


def _ctor_name(value: ast.expr) -> str | None:
    """The class name when ``value`` is ``Something(...)``."""
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


@dataclass
class _Write:
    attr: str
    node: ast.AST
    method: str
    guarded: bool  # lexically inside `with self.<lock>:`


@dataclass
class _ClassFacts:
    name: str
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    lock_attrs: set[str] = field(default_factory=set)
    threadsafe_attrs: set[str] = field(default_factory=set)
    thread_entries: set[str] = field(default_factory=set)
    calls: dict[str, set[str]] = field(default_factory=dict)
    writes: list[_Write] = field(default_factory=list)


class _MethodScanner(ast.NodeVisitor):
    """Collects calls and attribute writes in one method body."""

    def __init__(self, facts: _ClassFacts, method: str) -> None:
        self.facts = facts
        self.method = method
        self._lock_depth = 0

    def _record(self, attr: str | None, node: ast.AST) -> None:
        if attr is None or attr in self.facts.lock_attrs:
            return
        self.facts.writes.append(
            _Write(attr, node, self.method, self._lock_depth > 0)
        )

    def visit_With(self, node: ast.With) -> None:
        holds = any(
            self_attr(item.context_expr) in self.facts.lock_attrs
            for item in node.items
        )
        if holds:
            self._lock_depth += 1
        self.generic_visit(node)
        if holds:
            self._lock_depth -= 1

    def _target_attr(self, target: ast.expr) -> str | None:
        if isinstance(target, ast.Subscript):
            return self_attr(target.value)
        return self_attr(target)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(self._target_attr(target), node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(self._target_attr(node.target), node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(self._target_attr(node.target), node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record(self._target_attr(target), node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # self.method() -> call-graph edge; self.attr.mutator() -> write.
        if isinstance(func, ast.Attribute):
            owner = self_attr(func.value)
            if owner is not None:
                if func.attr in _MUTATORS:
                    if owner not in self.facts.threadsafe_attrs:
                        self._record(owner, node)
                elif owner in self.facts.methods:
                    self.facts.calls.setdefault(self.method, set()).add(owner)
            elif self_attr(func) in self.facts.methods:
                self.facts.calls.setdefault(self.method, set()).add(func.attr)
        name = _ctor_name(node)
        if name in _MUTATING_FUNCS and node.args:
            self._record(self_attr(node.args[0]), node)
        self.generic_visit(node)


def _collect_facts(cls: ast.ClassDef) -> _ClassFacts:
    facts = _ClassFacts(name=cls.name)
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.methods[stmt.name] = stmt

    # Attribute typing + thread entries, from every method body.
    for method in facts.methods.values():
        for node in ast.walk(method):
            attr = value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr, value = self_attr(node.targets[0]), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                attr, value = self_attr(node.target), node.value
            if attr is not None:
                ctor = _ctor_name(value)
                if ctor in _LOCK_TYPES:
                    facts.lock_attrs.add(attr)
                elif ctor in _THREADSAFE_TYPES:
                    facts.threadsafe_attrs.add(attr)
            if isinstance(node, ast.Call) and _ctor_name(node) == "Thread":
                for kw in node.keywords:
                    if kw.arg != "target":
                        continue
                    target = self_attr(kw.value)
                    if target is not None:
                        facts.thread_entries.add(target)
                    elif isinstance(kw.value, ast.Lambda):
                        for sub in ast.walk(kw.value.body):
                            attr = self_attr(sub)
                            if attr in facts.methods:
                                facts.thread_entries.add(attr)

    # Calls and writes, per method.
    for name, method in facts.methods.items():
        if name == "__init__":
            continue  # construction happens-before thread publication
        _MethodScanner(facts, name).visit(method)
    return facts


def _contexts(facts: _ClassFacts) -> dict[str, frozenset[str]]:
    """Execution contexts that can reach each method."""

    def closure(roots: set[str]) -> set[str]:
        seen: set[str] = set()
        stack = [root for root in roots if root in facts.methods]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(facts.calls.get(name, ()))
        return seen

    reach: dict[str, set[str]] = {name: set() for name in facts.methods}
    for entry in facts.thread_entries:
        for name in closure({entry}):
            reach[name].add(f"thread:{entry}")
    main_roots = {
        name
        for name in facts.methods
        if name not in facts.thread_entries and name != "__init__"
    }
    for name in closure(main_roots):
        reach[name].add("main")
    return {name: frozenset(ctxs) for name, ctxs in reach.items()}


@register
class LockDisciplineRule(Rule):
    id = "LOCK001"
    title = "shared-attribute writes must hold the class lock"
    rationale = (
        "An attribute written from two execution contexts (spawned "
        "thread targets and the caller-facing API) races unless every "
        "write holds a lock of the class. Writes the analysis cannot "
        "see as safe need a '# analysis: guarded-by(<what>)' annotation "
        "naming the discipline that protects them — which "
        "ThreadedRuntime(debug_locks=True) then checks dynamically."
    )

    def applies_to(self, module: str) -> bool:
        return any(
            module == entry or (entry.endswith("/") and module.startswith(entry))
            for entry in LOCK_SCOPE
        )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            facts = _collect_facts(node)
            if not facts.thread_entries:
                continue  # single-context class: nothing to race
            contexts = _contexts(facts)
            written_from: dict[str, set[str]] = {}
            for write in facts.writes:
                written_from.setdefault(write.attr, set()).update(
                    contexts.get(write.method, frozenset())
                )
            for write in facts.writes:
                if len(written_from.get(write.attr, ())) < 2:
                    continue
                if write.guarded:
                    continue
                if src.guard_annotation(write.node) is not None:
                    continue
                yield src.violation(
                    self,
                    write.node,
                    f"{facts.name}.{write.attr} is written from "
                    f"{len(written_from[write.attr])} thread contexts but "
                    f"this write (in {write.method}) holds no lock — wrap "
                    "in 'with <lock>:' or annotate "
                    "'# analysis: guarded-by(<what>)'",
                )
