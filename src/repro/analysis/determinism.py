"""Determinism rules: protocol and simulator code must replay bit-identically.

Scope: the modules whose behaviour the sim substrate's parity tests pin
(``sim/``, ``clbft/``, ``perpetual/``, ``ws/``, ``faults/``,
``scenario/sim.py``, ``sharding/``, and the asyncio substrate
``runtime/aio.py``). On this code, wall-clock reads, ambient
randomness, unordered iteration that reaches the wire, identity-keyed
match state, and bare asyncio sleeps/loop-clock reads are exactly the
constructs that break same-seed replay — each gets its own rule so
suppressions stay precise.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    ImportMap,
    Rule,
    SourceFile,
    Violation,
    call_name,
    register,
)

#: Module-key prefixes (or exact files) the determinism family covers.
DETERMINISM_SCOPE = (
    "sim/",
    "clbft/",
    "perpetual/",
    "ws/",
    "faults/",
    "scenario/sim.py",
    "sharding/",
    "runtime/aio.py",
)

#: The one module allowed to touch the ``random`` module: the seeded
#: wrapper every deterministic stream flows through.
RNG_WRAPPER = "sim/rng.py"


def in_scope(module: str) -> bool:
    return any(
        module == entry or (entry.endswith("/") and module.startswith(entry))
        for entry in DETERMINISM_SCOPE
    )


class DeterminismRule(Rule):
    def applies_to(self, module: str) -> bool:
        return in_scope(module)


#: Wall-clock and host-clock reads, by dotted origin.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class WallClockRule(DeterminismRule):
    id = "DET001"
    title = "no wall-clock reads in protocol/sim code"
    rationale = (
        "Replicas agree on time through voter utility agreement and the "
        "sim kernel's virtual clock (env.now_us/now_ms); any host clock "
        "read diverges across replicas and across replays."
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        imports = ImportMap(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.qualify(node.func)
            if origin in _CLOCK_CALLS:
                yield src.violation(
                    self,
                    node,
                    f"host clock read {origin}() — use env.now_us()/"
                    "now_ms() or agreed timestamps",
                )


@register
class AmbientRandomRule(DeterminismRule):
    id = "DET002"
    title = "no ambient random-module use outside sim/rng.py"
    rationale = (
        "The global random module draws from interpreter-wide state; "
        "all stochastic choices must flow through the seeded, labelled "
        "DeterministicRng streams so adding a consumer never perturbs "
        "existing draws."
    )

    def applies_to(self, module: str) -> bool:
        return in_scope(module) and module != RNG_WRAPPER

    def check(self, src: SourceFile) -> Iterator[Violation]:
        imports = ImportMap(src.tree)
        for node in ast.walk(src.tree):
            origin = None
            if isinstance(node, ast.Attribute):
                base = imports.qualify(node.value)
                if base == "random":
                    origin = f"random.{node.attr}"
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                qualified = imports.names.get(node.id)
                if qualified and qualified.startswith("random."):
                    origin = qualified
            if origin is not None:
                yield src.violation(
                    self,
                    node,
                    f"ambient randomness {origin} — use a seeded "
                    "repro.sim.rng.DeterministicRng stream",
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset") and isinstance(node.func, ast.Name)
    return False


@register
class SetIterationRule(DeterminismRule):
    id = "DET003"
    title = "no iteration over unordered sets"
    rationale = (
        "Set iteration order is hash-seed dependent; once it reaches a "
        "message, a timer schedule, or any encoded payload, same-seed "
        "replays diverge. Sort first (sorted(...)) or keep a list/dict."
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        message = (
            "iteration over an unordered set — wrap in sorted(...) or "
            "use an insertion-ordered container"
        )
        for node in ast.walk(src.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield src.violation(self, node.iter, message)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for comp in node.generators:
                    if _is_set_expr(comp.iter):
                        yield src.violation(self, comp.iter, message)
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if (
                    name in ("list", "tuple")
                    and isinstance(node.func, ast.Name)
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield src.violation(self, node, message)


def _is_id_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


@register
class IdentityKeyRule(DeterminismRule):
    id = "DET004"
    title = "no id()-keyed lookups in protocol state"
    rationale = (
        "id() values are allocation addresses: never stable across "
        "replicas, replays, or process boundaries. Match keys must be "
        "content-derived (digests); identity memoisation belongs in "
        "repro.common.encoding.IdentityMemo, which owns the lifetime "
        "hazards."
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        message = (
            "id()-keyed lookup — key on content (digest/match key) or "
            "use repro.common.encoding.IdentityMemo"
        )
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Subscript) and _is_id_call(node.slice):
                yield src.violation(self, node, message)
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and _is_id_call(key):
                        yield src.violation(self, key, message)
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if (
                    isinstance(node.func, ast.Attribute)
                    and name in ("get", "pop", "setdefault")
                    and node.args
                    and _is_id_call(node.args[0])
                ):
                    yield src.violation(self, node, message)


@register
class NaiveDatetimeRule(DeterminismRule):
    id = "DET005"
    title = "no fromtimestamp-based datetime construction"
    rationale = (
        "fromtimestamp goes through float seconds (rounding) and, "
        "without tz=, the host's local timezone — both host-dependent. "
        "Derive datetimes from the agreed epoch with integer timedelta "
        "arithmetic."
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        imports = ImportMap(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.qualify(node.func)
            if origin in (
                "datetime.datetime.fromtimestamp",
                "datetime.datetime.utcfromtimestamp",
                "datetime.date.fromtimestamp",
            ):
                yield src.violation(
                    self,
                    node,
                    f"{origin}() — construct as epoch + "
                    "datetime.timedelta(milliseconds=...) instead",
                )


#: Event-loop clock access and untracked suspensions, by dotted origin.
#: ``get_event_loop``/``get_running_loop`` are the gateways to
#: ``loop.time()`` (a host monotonic clock) and ``loop.call_later`` used
#: outside the timer table, so the rule flags the loop handle itself.
_ASYNC_CLOCK_CALLS = {
    "asyncio.sleep",
    "asyncio.get_event_loop",
    "asyncio.get_running_loop",
}


@register
class AsyncioClockRule(DeterminismRule):
    id = "DET006"
    title = "no bare asyncio sleeps or loop-clock reads in protocol code"
    rationale = (
        "asyncio.sleep suspends against the host event-loop clock and "
        "get_event_loop()/get_running_loop() hand out loop.time() and "
        "raw call_later — all invisible to the timer-hook seam, so "
        "timeouts stop replaying and never fire under the sim. Protocol "
        "code must arm timers through env.set_timer/cancel_timer and "
        "read env.now_us(); only the substrate boundary that *implements* "
        "that seam may touch the loop (documented allow() suppression)."
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        imports = ImportMap(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.qualify(node.func)
            if origin in _ASYNC_CLOCK_CALLS:
                yield src.violation(
                    self,
                    node,
                    f"{origin}() — arm timers via env.set_timer and read "
                    "env.now_us() instead of the event-loop clock",
                )
