"""Sharding-contract rule: cross-group addressing goes through the Router.

PR 9 split scenarios into independent BFT groups with a client-side
router tier (``repro.sharding``). The structural contract: protocol and
application code never decides group placement itself — it does not
construct rings or routers, and it does not ask one where a service
lives. The driver's ``_issue`` prologue calls the opaque
``Router.forward`` handle it was given at deploy time; everything else
(group assignment, consistent-hash points, pinning) is the scenario
layer's business. Code that reaches around that tier re-creates the
pre-sharding failure mode — a principal in one group hard-wired to a
principal in another — which the runtime cannot detect because the flat
namespace happily delivers the frame.

Suppressions follow the house style:
``# analysis: allow(SHARD001) -- reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Rule, SourceFile, Violation, register

#: Modules that *are* the routing tier or legitimately orchestrate it:
#: the sharding package itself, the scenario layer (substrates build the
#: router and stamp per-group metrics), and the linter's own fixtures.
ROUTER_MODULES = (
    "sharding/",
    "scenario/",
    "analysis/",
)

#: Constructors/factories protocol code must not call: building a ring
#: or router implies deciding placement locally.
_ROUTER_FACTORIES = frozenset(("Router", "HashRing", "build_router"))

#: Placement queries reserved for the scenario layer. ``forward`` is
#: deliberately absent — it is the sanctioned driver-side handle.
_PLACEMENT_QUERIES = frozenset(("group_for_service", "home_group_for"))


@register
class CrossGroupAddressingRule(Rule):
    id = "SHARD001"
    title = "no direct cross-group addressing outside the router tier"
    rationale = (
        "A principal that builds its own Router/HashRing or asks one "
        "where a service lives is deciding placement locally — the "
        "flat namespace will deliver the frame, so nothing at runtime "
        "catches a group boundary crossed without the router's "
        "counters or policy. Cross-group traffic flows through the "
        "Router.forward handle injected at deploy time; placement "
        "queries stay in the scenario layer."
    )

    def applies_to(self, module: str) -> bool:
        return not any(
            module == entry
            or (entry.endswith("/") and module.startswith(entry))
            for entry in ROUTER_MODULES
        )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _ROUTER_FACTORIES:
                yield src.violation(
                    self,
                    node,
                    f"{func.id}() constructed outside the routing tier — "
                    "accept the router the scenario layer injects "
                    "(build_replica(router=...)) instead of building one",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _PLACEMENT_QUERIES
            ):
                yield src.violation(
                    self,
                    node,
                    f".{func.attr}() placement query outside the scenario "
                    "layer — route the call through Router.forward and let "
                    "the routing tier resolve the group",
                )
