"""Walks paths, runs every registered rule, formats the findings.

The engine is the CLI's body (``python -m repro.analysis``) and the
library entry the tier-1 cleanliness test calls: parse each ``.py`` file
once, dispatch the rules whose scope covers the file's module key, drop
suppressed findings, and report the rest sorted by location.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, Iterator

# Importing the rule modules registers their rules.
from repro.analysis import determinism, locks, sharding, wire  # noqa: F401
from repro.analysis.core import RULES, SourceFile, Violation, rules_for

#: Rule id reported for files the parser rejects.
PARSE_RULE = "PARSE000"


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path


def check_file(path: Path) -> list[Violation]:
    """All unsuppressed findings in one file."""
    try:
        src = SourceFile(str(path), path.read_text())
    except SyntaxError as exc:
        return [
            Violation(
                path=str(path),
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule=PARSE_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: list[Violation] = []
    for rule in rules_for(src.module):
        for violation in rule.check(src):
            # An allow comment anywhere in the flagged node's line span
            # suppresses the finding (multi-line calls included).
            if not src.is_suppressed(violation.rule, _Span(violation)):
                findings.append(violation)
    return sorted(findings)


class _Span:
    """Adapter giving a Violation the node-span interface."""

    def __init__(self, violation: Violation) -> None:
        self.lineno = violation.line
        self.end_lineno = violation.end_line or violation.line


def check_paths(paths: Iterable[str]) -> tuple[list[Violation], int]:
    """(findings, files_checked) over every python file under ``paths``."""
    findings: list[Violation] = []
    count = 0
    for path in iter_python_files(paths):
        count += 1
        findings.extend(check_file(path))
    return sorted(findings), count


def to_document(findings: list[Violation], files_checked: int) -> dict:
    """The stable JSON output schema."""
    return {
        "version": 1,
        "files_checked": files_checked,
        "rules": [
            {"id": rule.id, "title": rule.title, "rationale": rule.rationale}
            for rule in RULES
        ],
        "violations": [violation.to_dict() for violation in findings],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant linter for the protocol stack: "
            "determinism (DET*), wire-contract (WIRE*), "
            "lock-discipline (LOCK*), and sharding-contract (SHARD*) "
            "rule families. Suppress a finding "
            "with '# analysis: allow(RULE-ID) -- reason'; document a "
            "lock exception with '# analysis: guarded-by(<what>)'."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    findings, files_checked = check_paths(args.paths)
    if args.format == "json":
        print(json.dumps(to_document(findings, files_checked), indent=2))
    else:
        for violation in findings:
            print(violation.format())
        print(
            f"{len(findings)} violation(s) in {files_checked} file(s)",
            file=sys.stderr,
        )
    return 1 if findings else 0
