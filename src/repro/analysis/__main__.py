"""CLI entry: ``python -m repro.analysis [--format text|json] [paths]``."""

import sys

from repro.analysis.engine import main

if __name__ == "__main__":
    sys.exit(main())
