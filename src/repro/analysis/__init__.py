"""Static analysis for the protocol stack's unenforced invariants.

Four rule families over the source tree, one suppression convention:

- determinism (``DET001``-``DET005``): protocol/sim code must replay
  bit-identically — no host clocks, no ambient randomness, no
  unordered-set iteration, no ``id()``-keyed state, no
  ``fromtimestamp`` datetimes;
- wire contract (``WIRE001``-``WIRE003``): encode once, digest once,
  sign through the channel — the PR 1 fast-path contract, structurally;
- lock discipline (``LOCK001``): attributes the live substrates' threads
  both write must hold a lock, or carry a ``guarded-by`` annotation that
  :mod:`repro.runtime.sanitizer` then checks dynamically;
- sharding contract (``SHARD001``): protocol/app code never addresses a
  principal in another group directly — cross-group traffic goes through
  the :class:`repro.sharding.Router` handle injected at deploy time.

Run ``python -m repro.analysis [--format text|json] [paths]``; the
tier-1 suite keeps ``src/`` violation-free via
``tests/unit/test_analysis_clean.py``.

The rule catalog, scopes, and suppression syntax are documented in
``docs/analysis.md`` — ``tools/check.sh`` keeps that page's tables in
lockstep with the live ``--rules`` output.
"""

from repro.analysis.core import RULES, Rule, SourceFile, Violation, rules_for
from repro.analysis.engine import check_file, check_paths, main, to_document

__all__ = [
    "RULES",
    "Rule",
    "SourceFile",
    "Violation",
    "check_file",
    "check_paths",
    "main",
    "rules_for",
    "to_document",
]
