"""Wire-contract rules: encode once, digest once, sign through the channel.

PR 1 made the fused codec + :class:`~repro.common.encoding.WireBlob` the
single serialisation boundary: a multicast encodes its payload exactly
once and digests it exactly once, which the METRICS counters can only
*observe* at runtime. These rules make the contract structural — protocol
code that encodes, digests, or builds envelopes by hand is flagged at
review time, not after a perf regression.

Suppressions (``# analysis: allow(WIRE00x) — reason``) mark the
deliberate exceptions: match-key derivations that are memoized per
message object, MAC-input bytes both ends must derive independently,
and proof verification that re-decodes embedded envelopes by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ImportMap, Rule, SourceFile, Violation, register

#: Modules that *are* the wire layer: the codec itself, the envelope
#: framing, the signing channel, and the pipe transport of the process
#: substrate (its router/worker frames are wire plumbing, not protocol).
CODEC_MODULES = (
    "common/encoding.py",
    "transport/wire.py",
    "transport/channel.py",
    "clbft/messages.py",
    "crypto/digest.py",
    "scenario/process.py",
    "analysis/",
)

#: Modules allowed to call the digest helpers directly: the crypto
#: layer and the wire layer's own memoized digest properties.
DIGEST_MODULES = (
    "crypto/",
    "common/encoding.py",
    "transport/",
    "analysis/",
)

#: Modules allowed to construct WireEnvelope: the signing path and the
#: envelope codec.
ENVELOPE_MODULES = (
    "transport/channel.py",
    "transport/wire.py",
    "analysis/",
)

_CODEC_NAMES = frozenset(
    (
        "encode_message",
        "decode_message",
        "canonical_encode",
        "encode_payload",
        "decode_payload",
    )
)

_DIGEST_NAMES = frozenset(("digest", "digest_hex"))


def _allowed(module: str, allowlist: tuple[str, ...]) -> bool:
    return any(
        module == entry or (entry.endswith("/") and module.startswith(entry))
        for entry in allowlist
    )


def _named_calls(src: SourceFile, names: frozenset[str]) -> Iterator[ast.Call]:
    """Calls made directly through one of ``names``.

    Only ``Name`` callees count: passing a codec as an argument
    (``encode=encode_message``) hands it to the channel, which is the
    sanctioned path.
    """
    for node in ast.walk(src.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in names
        ):
            yield node


@register
class DirectCodecRule(Rule):
    id = "WIRE001"
    title = "no direct codec calls outside the wire layer"
    rationale = (
        "Every encode outside ChannelAdapter/WireBlob is a second walk "
        "over the same message — the encode-once contract the METRICS "
        "counters pin at runtime. Send objects (or WireBlobs) through "
        "the channel; inject codecs via the encode=/decode= parameters."
    )

    def applies_to(self, module: str) -> bool:
        return not _allowed(module, CODEC_MODULES)

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for node in _named_calls(src, _CODEC_NAMES):
            yield src.violation(
                self,
                node,
                f"direct {node.func.id}() call outside the wire layer — "
                "route through ChannelAdapter/WireBlob (wire_blob) or "
                "suppress with a justification",
            )


@register
class DirectDigestRule(Rule):
    id = "WIRE002"
    title = "no direct digest calls outside the wire/crypto layer"
    rationale = (
        "WireBlob.digest and WireEnvelope.payload_digest memoize one "
        "digest per message; a bare digest()/digest_hex() call "
        "recomputes per caller and silently defeats the digest-once "
        "contract. Derived keys must be memoized (IdentityMemo) and "
        "documented with a suppression."
    )

    def applies_to(self, module: str) -> bool:
        return not _allowed(module, DIGEST_MODULES)

    def check(self, src: SourceFile) -> Iterator[Violation]:
        imports = ImportMap(src.tree)
        # Only flag names actually imported from the crypto digest
        # module — an unrelated local helper named ``digest`` is not a
        # wire-contract concern.
        digest_names = frozenset(
            name
            for name, origin in imports.names.items()
            if origin
            in ("repro.crypto.digest.digest", "repro.crypto.digest.digest_hex")
        )
        if not digest_names:
            return
        for node in _named_calls(src, digest_names):
            yield src.violation(
                self,
                node,
                f"direct {node.func.id}() call — share "
                "WireBlob.digest/payload_digest or memoize via "
                "IdentityMemo, then suppress with a justification",
            )


@register
class EnvelopeConstructionRule(Rule):
    id = "WIRE003"
    title = "no envelope construction outside the signing path"
    rationale = (
        "An envelope built by hand bypasses ChannelAdapter.multicast_to "
        "— the only place the authenticator, the blob cache, and the "
        "cost model meet. Envelopes come from the channel (sending) or "
        "envelope_from_wire (decoding); anything else forges the fused "
        "codec's invariants. BatchEnvelope is held to the same rule: "
        "batches exist only on the sanctioned ChannelAdapter.flush / "
        "open_batch path, where the single batch MAC is computed and "
        "verified."
    )

    def applies_to(self, module: str) -> bool:
        return not _allowed(module, ENVELOPE_MODULES)

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("WireEnvelope", "BatchEnvelope")
            ):
                yield src.violation(
                    self,
                    node,
                    f"{node.func.id} constructed outside the signing path "
                    "— send through ChannelAdapter or decode via "
                    "envelope_from_wire",
                )
