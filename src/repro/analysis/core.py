"""Core of the invariant linter: rules, violations, and suppressions.

The protocol stack's correctness rests on invariants no general-purpose
tool checks: bit-identical replay on the simulator substrate, the
encode-once/digest-once wire contract, and lock discipline on the state
the live substrates' threads share. :mod:`repro.analysis` enforces them
statically — every rule is a small AST pass over one file, registered
here and dispatched by :mod:`repro.analysis.engine`.

Two comment conventions thread through the rules:

- ``# analysis: allow(RULE-ID[, RULE-ID...]) — reason`` suppresses the
  named rules for the statement the comment sits on (trailing) or the
  statement directly below (standalone comment line). Suppressions are
  meant to *document* an exception, so write the reason.
- ``# analysis: guarded-by(<what>)`` marks a shared-state write the
  lock-discipline checker should accept without a ``with <lock>:``
  context — e.g. single-threaded phases — naming the discipline that
  actually protects it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

_ALLOW_RE = re.compile(r"#\s*analysis:\s*allow\(\s*([A-Z0-9,\s-]+?)\s*\)")
_GUARDED_RE = re.compile(r"#\s*analysis:\s*guarded-by\(\s*([^)]+?)\s*\)")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, anchored to ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Last line of the flagged node — a suppression comment anywhere in
    #: [line, end_line] covers the finding. Not part of the output schema.
    end_line: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def module_key(path: str) -> str:
    """The repo-relative module key a path is scoped by.

    Everything after the last ``repro`` package directory in the path:
    ``src/repro/clbft/replica.py`` -> ``clbft/replica.py``. Fixture
    trees reuse the convention (``.../fixtures/repro/sim/bad.py`` ->
    ``sim/bad.py``) so rule scoping is testable without touching src.
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        tail = parts[anchor + 1:]
        if tail:
            return "/".join(tail)
    return parts[-1]


class SourceFile:
    """One parsed file plus its suppression / annotation maps."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.module = module_key(path)
        self.text = text
        self.tree = ast.parse(text, filename=path)
        # line -> rule ids allowed there; line -> guarded-by annotation.
        self.allows: dict[int, frozenset[str]] = {}
        self.guards: dict[int, str] = {}
        self._scan_comments(text)

    def _scan_comments(self, text: str) -> None:
        pending_allow: set[str] = set()
        pending_guard: str | None = None
        for lineno, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            allow = _ALLOW_RE.search(line)
            guard = _GUARDED_RE.search(line)
            ids = (
                {part.strip() for part in allow.group(1).split(",") if part.strip()}
                if allow
                else set()
            )
            if stripped.startswith("#"):
                # Standalone comment: applies to the next code line.
                pending_allow |= ids
                if guard:
                    pending_guard = guard.group(1)
                continue
            if not stripped:
                continue
            effective = pending_allow | ids
            if effective:
                self.allows[lineno] = frozenset(effective)
            if guard:
                self.guards[lineno] = guard.group(1)
            elif pending_guard is not None:
                self.guards[lineno] = pending_guard
            pending_allow = set()
            pending_guard = None

    # -- queries the rules use ------------------------------------------------

    def is_suppressed(self, rule_id: str, node: ast.AST) -> bool:
        """True if an ``allow`` comment covers any line the node spans."""
        start = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", start) or start
        for line in range(start, end + 1):
            ids = self.allows.get(line)
            if ids and (rule_id in ids or "ALL" in ids):
                return True
        return False

    def guard_annotation(self, node: ast.AST) -> str | None:
        """The ``guarded-by`` annotation covering the node, if any."""
        start = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", start) or start
        for line in range(start, end + 1):
            if line in self.guards:
                return self.guards[line]
        return None

    def violation(self, rule: "Rule", node: ast.AST, message: str) -> Violation:
        line = getattr(node, "lineno", 0)
        return Violation(
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            rule=rule.id,
            message=message,
            end_line=getattr(node, "end_lineno", line) or line,
        )


class Rule:
    """One lint rule. Subclasses register via :func:`register`."""

    #: Stable identifier, e.g. ``DET001`` — what suppressions name.
    id: str = ""
    #: One-line summary for ``--rules`` and the README catalog.
    title: str = ""
    #: Why the invariant matters (shown in ``--rules``).
    rationale: str = ""

    def applies_to(self, module: str) -> bool:
        return True

    def check(self, src: SourceFile) -> Iterator[Violation]:
        raise NotImplementedError


RULES: list[Rule] = []


def register(cls: type[Rule]) -> type[Rule]:
    RULES.append(cls())
    return cls


def rules_for(module: str) -> list[Rule]:
    return [rule for rule in RULES if rule.applies_to(module)]


# -- shared AST helpers ------------------------------------------------------


class ImportMap:
    """Resolves names in one file back to the modules they came from.

    ``import time as t`` maps ``t`` -> ``time``; ``from time import
    time`` maps ``time`` -> ``time.time``. Rules use this to recognise
    wall-clock and RNG access however it was imported.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def qualify(self, node: ast.expr) -> str | None:
        """Dotted origin of a Name/Attribute expression, if importable."""
        if isinstance(node, ast.Name):
            if node.id in self.modules:
                return self.modules[node.id]
            return self.names.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.qualify(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


def call_name(node: ast.Call) -> str | None:
    """The unqualified name a call is made through, if syntactic."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def self_attr(node: ast.AST) -> str | None:
    """``X`` when the node is ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
