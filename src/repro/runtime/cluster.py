"""A threaded cluster hosting the same protocol nodes as the simulator.

Each node gets one consumer thread draining a thread-safe mailbox; a
shared timer wheel thread services ``set_timer``. The environment object
exposes the same duck-typed surface as :class:`repro.sim.kernel.SimNodeEnv`
(``send``, ``local_deliver``, ``set_timer``, ``cancel_timer``, ``now_us``,
``now_ms``, ``charge``), so voters, drivers, and CLBFT nodes run unchanged.

``charge`` is a no-op here: real CPU time is real. Determinism holds per
replica (the protocol guarantees it), but event interleaving across nodes
is genuinely racy — which is the point of testing on this substrate.

This module is the substrate only; deploy onto it through the scenario
API (:mod:`repro.scenario`, ``runtime="threaded"``) rather than wiring
nodes by hand.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from typing import Any, Callable

from repro.runtime.sanitizer import guarded_dict, guarded_list, guarded_set
from repro.sim.kernel import ProtocolNode


class _TimerWheel:
    """One thread servicing all nodes' timers."""

    def __init__(self, debug_locks: bool = False) -> None:
        self._heap: list[tuple[float, int, object]] = []
        self._entries: dict[tuple[str, Any], object] = {}
        self._seq = itertools.count()
        self._cv = threading.Condition()
        if debug_locks:
            # Assert-owner proxy: every mutation of the timer table must
            # hold the wheel's condition, exactly what the static
            # LOCK001 pass concluded lexically.
            self._entries = guarded_dict("_TimerWheel._entries", self._cv)
        self._stopped = False
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def set_timer(self, node_key: str, tag: Any, delay_us: int,
                  fire: Callable[[Any], None]) -> None:
        deadline = time.monotonic() + delay_us / 1_000_000.0
        entry = {"key": node_key, "tag": tag, "fire": fire, "cancelled": False}
        with self._cv:
            old = self._entries.pop((node_key, tag), None)
            if old is not None:
                old["cancelled"] = True
            self._entries[(node_key, tag)] = entry
            heapq.heappush(self._heap, (deadline, next(self._seq), entry))
            self._cv.notify()

    def cancel_timer(self, node_key: str, tag: Any) -> None:
        with self._cv:
            entry = self._entries.pop((node_key, tag), None)
            if entry is not None:
                entry["cancelled"] = True

    def armed_count(self) -> int:
        """Timers currently armed (set, not yet fired or cancelled)."""
        with self._cv:
            return len(self._entries)

    def stop(self) -> None:
        with self._cv:
            self._stopped = True
            self._cv.notify()
        self._thread.join(timeout=2)

    def _run(self) -> None:
        while True:
            with self._cv:
                if self._stopped:
                    return
                if not self._heap:
                    self._cv.wait(timeout=0.1)
                    continue
                deadline, _, entry = self._heap[0]
                now = time.monotonic()
                if deadline > now:
                    self._cv.wait(timeout=min(deadline - now, 0.1))
                    continue
                heapq.heappop(self._heap)
                if entry["cancelled"]:
                    continue
                # A fired timer is no longer armed (unless re-armed since,
                # in which case the mapping already points elsewhere).
                if self._entries.get((entry["key"], entry["tag"])) is entry:
                    del self._entries[(entry["key"], entry["tag"])]
                fire, tag = entry["fire"], entry["tag"]
            try:
                fire(tag)
            except Exception:  # a faulty node's timer must not kill the wheel
                pass


class _ThreadedEnv:
    """Per-node environment with the SimNodeEnv surface."""

    def __init__(self, cluster: "ThreadedCluster", node_id: Any) -> None:
        self._cluster = cluster
        self.node_id = node_id
        self._key = str(node_id)

    def now_us(self) -> int:
        return int((time.monotonic() - self._cluster.epoch) * 1_000_000)

    def now_ms(self) -> int:
        return self.now_us() // 1000

    def charge(self, cpu_us: int) -> None:
        """No-op: on real threads, CPU time is consumed by running."""

    def send(self, dst: Any, msg: Any, size_bytes: int = 256) -> None:
        self._cluster.post(self._key, str(dst), msg)

    def local_deliver(self, dst: Any, msg: Any) -> None:
        self._cluster.post(self._key, str(dst), msg)

    def set_timer(self, tag: Any, delay_us: int) -> None:
        self._cluster.timers.set_timer(
            self._key, tag, delay_us,
            lambda t: self._cluster.post_timer(self._key, t),
        )

    def cancel_timer(self, tag: Any) -> None:
        self._cluster.timers.cancel_timer(self._key, tag)

    def timer_armed(self, tag: Any) -> bool:  # pragma: no cover - parity
        return (self._key, tag) in self._cluster.timers._entries


class _NodeWorker:
    """One consumer thread per node: mailbox in, handler calls out."""

    def __init__(self, key: str, node: ProtocolNode,
                 debug_locks: bool = False) -> None:
        self.key = key
        self.node = node
        self.mailbox: queue.Queue = queue.Queue()
        self.errors: list[BaseException] = []
        if debug_locks:
            # Only this worker's own thread appends; readers (the
            # cluster's errors() sweep) go through list reads, which the
            # proxy passes through unchecked.
            self.errors = guarded_list(f"_NodeWorker[{key}].errors")
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = False

    def start(self) -> None:
        if not self._started:
            self._started = True
            self._thread.start()

    def _run(self) -> None:
        # Tick batching: a handler's buffered channel output is released
        # as soon as its handler returns — the worker thread's dequeue
        # loop is the threaded analogue of a kernel tick.
        flush = self.node.on_flush if self.node.wants_flush else None
        try:
            self.node.on_start()
            if flush is not None:
                flush()
        except Exception as exc:  # pragma: no cover - diagnostics
            self.errors.append(exc)
        while True:
            item = self.mailbox.get()
            if item is _STOP:
                return
            kind, src, payload = item
            try:
                if kind == "msg":
                    self.node.on_message(src, payload)
                else:
                    self.node.on_timer(payload)
                if flush is not None:
                    flush()
            except Exception as exc:
                self.errors.append(exc)


_STOP = object()


class ThreadedCluster:
    """Hosts protocol nodes on real threads.

    Usage mirrors the simulator: ``add_node`` everything, then
    :meth:`start`; :meth:`await_quiescent` parks until mailboxes drain.
    """

    def __init__(self, debug_locks: bool = False) -> None:
        self.epoch = time.monotonic()
        self.debug_locks = debug_locks
        self.timers = _TimerWheel(debug_locks=debug_locks)
        self._workers: dict[str, _NodeWorker] = {}
        self._started = False
        self.dropped: set[str] = set()
        if debug_locks:
            # The deploying thread owns topology: node registration and
            # crash faults are main-thread operations; handler threads
            # only ever *read* these structures.
            self._workers = guarded_dict("ThreadedCluster._workers")
            self.dropped = guarded_set("ThreadedCluster.dropped")

    def add_node(self, node_id: Any, node: ProtocolNode, host: str | None = None):
        key = str(node_id)
        worker = _NodeWorker(key, node, debug_locks=self.debug_locks)
        self._workers[key] = worker
        if self._started:
            worker.start()
        return _ThreadedEnv(self, node_id)

    def start(self) -> None:
        self._started = True
        for worker in self._workers.values():
            worker.start()

    def post(self, src: str, dst: str, msg: Any) -> None:
        if dst in self.dropped or src in self.dropped:
            return
        worker = self._workers.get(dst)
        if worker is not None:
            worker.mailbox.put(("msg", src, msg))

    def post_timer(self, node_key: str, tag: Any) -> None:
        if node_key in self.dropped:
            return
        worker = self._workers.get(node_key)
        if worker is not None:
            worker.mailbox.put(("timer", None, tag))

    def drop_node(self, node_id: Any) -> None:
        """Crash a node: it stops sending and receiving."""
        self.dropped.add(str(node_id))

    def errors(self) -> list[BaseException]:
        return [e for w in self._workers.values() for e in w.errors]

    def mailboxes_empty(self) -> bool:
        """True when no node has queued messages or timer firings."""
        return all(w.mailbox.empty() for w in self._workers.values())

    def timers_armed(self) -> int:
        """Timers currently armed across all nodes."""
        return self.timers.armed_count()

    def await_quiescent(self, settle_s: float = 0.05, timeout_s: float = 10.0) -> bool:
        """Wait until every mailbox stays empty for ``settle_s``."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.mailboxes_empty():
                time.sleep(settle_s)
                if self.mailboxes_empty():
                    return True
            else:
                time.sleep(0.005)
        return False

    def shutdown(self) -> None:
        for worker in self._workers.values():
            worker.mailbox.put(_STOP)
        self.timers.stop()
