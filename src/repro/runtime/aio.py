"""An asyncio cluster hosting the same protocol nodes as the simulator.

Every voter and driver gets an :class:`asyncio.Queue` inbox drained by
one consumer task, all sharing a single event loop — the single-loop
replica shape of the flexible-BFT lineage: cheaper than one OS thread
per node at high node counts, and the natural seat for socket I/O. The
per-node environment exposes the same duck-typed surface as
:class:`repro.sim.kernel.SimNodeEnv` (``send``, ``local_deliver``,
``set_timer``, ``cancel_timer``, ``now_us``, ``now_ms``, ``charge``), so
voters, drivers, and CLBFT nodes run unchanged.

Timers map onto the loop: ``set_timer`` is an :meth:`asyncio.loop
.call_later` handle keyed ``(node_key, tag)``; re-arming cancels the old
handle, and a firing posts a timer event into the node's inbox so timer
handling serialises with message handling in the node's consumer task —
exactly the ordering contract the threaded wheel provides.

Handlers are synchronous protocol code. Because the loop is single
threaded, only one handler runs at a time; concurrency here is the
*interleaving* of node tasks, not parallelism. ``charge`` is a no-op:
real CPU time is real.

This module is the substrate only; deploy onto it through the scenario
API (:mod:`repro.scenario`, ``runtime="asyncio"``) rather than wiring
nodes by hand. The scenario layer owns the loop's lifecycle: it calls
:meth:`AioCluster.bind_running_loop` from inside the loop, spawns the
consumer tasks into a task group, and stops the cluster at quiescence.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.sim.kernel import ProtocolNode

_STOP = object()


class _AioTimerTable:
    """All nodes' timers as cancellable ``call_later`` handles."""

    def __init__(self) -> None:
        self._loop: asyncio.AbstractEventLoop | None = None
        self._entries: dict[tuple[str, Any], asyncio.TimerHandle] = {}
        #: Timers armed before the loop exists (deploy-time arming);
        #: converted to real handles the moment the loop binds.
        self._pending: dict[
            tuple[str, Any], tuple[int, Callable[[Any], None]]
        ] = {}

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        pending, self._pending = self._pending, {}
        for (node_key, tag), (delay_us, fire) in pending.items():
            self.set_timer(node_key, tag, delay_us, fire)

    def set_timer(self, node_key: str, tag: Any, delay_us: int,
                  fire: Callable[[Any], None]) -> None:
        self.cancel_timer(node_key, tag)
        if self._loop is None:
            self._pending[(node_key, tag)] = (delay_us, fire)
            return
        handle = self._loop.call_later(
            delay_us / 1_000_000.0, self._fire, node_key, tag, fire
        )
        self._entries[(node_key, tag)] = handle

    def _fire(self, node_key: str, tag: Any, fire: Callable[[Any], None]) -> None:
        # A fired timer is no longer armed. The callback only runs if the
        # handle was never cancelled; a re-arm replaced the mapping and
        # cancelled this handle, so whatever is stored is not this one.
        self._entries.pop((node_key, tag), None)
        fire(tag)

    def cancel_timer(self, node_key: str, tag: Any) -> None:
        self._pending.pop((node_key, tag), None)
        handle = self._entries.pop((node_key, tag), None)
        if handle is not None:
            handle.cancel()

    def armed(self, node_key: str, tag: Any) -> bool:
        return (node_key, tag) in self._entries or (
            (node_key, tag) in self._pending
        )

    def armed_count(self) -> int:
        """Timers currently armed (set, not yet fired or cancelled)."""
        return len(self._entries) + len(self._pending)

    def stop(self) -> None:
        for handle in self._entries.values():
            handle.cancel()
        self._entries.clear()
        self._pending.clear()


class _AioEnv:
    """Per-node environment with the SimNodeEnv surface."""

    def __init__(self, cluster: "AioCluster", node_id: Any) -> None:
        self._cluster = cluster
        self.node_id = node_id
        self._key = str(node_id)

    def now_us(self) -> int:
        return self._cluster.now_us()

    def now_ms(self) -> int:
        return self.now_us() // 1000

    def charge(self, cpu_us: int) -> None:
        """No-op: on a real event loop, CPU time is consumed by running."""

    def send(self, dst: Any, msg: Any, size_bytes: int = 256) -> None:
        self._cluster.post(self._key, str(dst), msg)

    def local_deliver(self, dst: Any, msg: Any) -> None:
        self._cluster.post(self._key, str(dst), msg)

    def set_timer(self, tag: Any, delay_us: int) -> None:
        self._cluster.timers.set_timer(
            self._key, tag, delay_us,
            lambda t: self._cluster.post_timer(self._key, t),
        )

    def cancel_timer(self, tag: Any) -> None:
        self._cluster.timers.cancel_timer(self._key, tag)

    def timer_armed(self, tag: Any) -> bool:  # pragma: no cover - parity
        return self._cluster.timers.armed(self._key, tag)


class _AioNodeWorker:
    """One consumer task per node: inbox in, handler calls out."""

    def __init__(self, key: str, node: ProtocolNode) -> None:
        self.key = key
        self.node = node
        #: Unbounded, loop-agnostic until first await — safe to create
        #: (and ``put_nowait`` into) before the loop exists.
        self.inbox: asyncio.Queue = asyncio.Queue()
        self.errors: list[BaseException] = []
        self.task: asyncio.Task | None = None


class AioCluster:
    """Hosts protocol nodes as tasks on one asyncio event loop.

    Usage mirrors the threaded cluster: ``add_node`` everything at
    deploy time, then — inside the loop — ``bind_running_loop()``,
    ``spawn(task_group)``, and finally ``request_stop()``. Quiescence is
    exact here, not sampled: the loop is single threaded, so whenever
    the monitor coroutine runs, no handler is mid-flight, and
    ``inboxes_empty()`` counts *unprocessed* events (enqueued minus
    handled), which closes the dequeued-but-not-yet-handled window the
    threaded substrate has to settle over.
    """

    def __init__(self) -> None:
        self.timers = _AioTimerTable()
        self._workers: dict[str, _AioNodeWorker] = {}
        self.dropped: set[str] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._epoch = 0.0
        #: Events enqueued but not yet fully handled (messages + timer
        #: firings). Single-threaded increments/decrements: exact.
        self._unprocessed = 0
        self._started_nodes = 0

    # -- deploy-time surface -------------------------------------------

    def add_node(self, node_id: Any, node: ProtocolNode,
                 host: str | None = None) -> _AioEnv:
        key = str(node_id)
        self._workers[key] = _AioNodeWorker(key, node)
        return _AioEnv(self, node_id)

    def drop_node(self, node_id: Any) -> None:
        """Crash a node: it stops sending and receiving."""
        self.dropped.add(str(node_id))

    # -- loop lifecycle (called from inside the running loop) ----------

    def bind_running_loop(self) -> None:
        # The one sanctioned loop acquisition in this module: the
        # substrate boundary pins the driving loop as the cluster clock
        # (env.now_us reads loop.time() relative to this epoch) and arms
        # any deploy-time timers. Protocol code above this line never
        # touches the loop — DET006 keeps that structural.
        loop = asyncio.get_running_loop()  # analysis: allow(DET006) -- substrate boundary: the cluster adapts the loop clock to env.now_us
        self._loop = loop
        self._epoch = loop.time()
        self.timers.bind(loop)

    def spawn(self, task_group: asyncio.TaskGroup) -> None:
        for worker in self._workers.values():
            worker.task = task_group.create_task(self._consume(worker))

    def request_stop(self) -> None:
        """Stop every consumer after its queued work; disarm timers."""
        self.timers.stop()
        for worker in self._workers.values():
            worker.inbox.put_nowait(_STOP)

    async def _consume(self, worker: _AioNodeWorker) -> None:
        # Tick batching: a handler's buffered channel output is released
        # as soon as its handler returns — one inbox dequeue is the
        # asyncio analogue of a kernel tick. Window batching instead
        # arms a flush timer through set_timer, which lands here as a
        # timer event like any other.
        node = worker.node
        flush = node.on_flush if node.wants_flush else None
        try:
            node.on_start()
            if flush is not None:
                flush()
        except Exception as exc:  # pragma: no cover - diagnostics
            worker.errors.append(exc)
        finally:
            self._started_nodes += 1
        while True:
            item = await worker.inbox.get()
            if item is _STOP:
                return
            kind, src, payload = item
            try:
                if kind == "msg":
                    node.on_message(src, payload)
                else:
                    node.on_timer(payload)
                if flush is not None:
                    flush()
            except Exception as exc:
                worker.errors.append(exc)
            finally:
                self._unprocessed -= 1

    # -- event posting --------------------------------------------------

    def now_us(self) -> int:
        if self._loop is None:
            return 0
        return int((self._loop.time() - self._epoch) * 1_000_000)

    def post(self, src: str, dst: str, msg: Any) -> None:
        if dst in self.dropped or src in self.dropped:
            return
        worker = self._workers.get(dst)
        if worker is not None:
            worker.inbox.put_nowait(("msg", src, msg))
            self._unprocessed += 1

    def post_timer(self, node_key: str, tag: Any) -> None:
        if node_key in self.dropped:
            return
        worker = self._workers.get(node_key)
        if worker is not None:
            worker.inbox.put_nowait(("timer", None, tag))
            self._unprocessed += 1

    # -- observation -----------------------------------------------------

    def errors(self) -> list[BaseException]:
        return [e for w in self._workers.values() for e in w.errors]

    def all_started(self) -> bool:
        """Every node's ``on_start`` has run (or crashed and was logged)."""
        return self._started_nodes == len(self._workers)

    def mailboxes_empty(self) -> bool:
        """True when no enqueued event awaits handling anywhere."""
        return self._unprocessed == 0

    def timers_armed(self) -> int:
        """Timers currently armed across all nodes."""
        return self.timers.armed_count()

    def shutdown(self) -> None:
        """Idempotent release: disarm timers; tasks died with the loop."""
        self.timers.stop()
