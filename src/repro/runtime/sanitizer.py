"""Runtime lock sanitizer: dynamic evidence for the static lock rules.

The static checker (:mod:`repro.analysis.locks`) proves what it can see
lexically and accepts ``# analysis: guarded-by(...)`` annotations for
the rest. This module is the other half of that bargain: with
``ThreadedRuntime(debug_locks=True)``, the shared structures of the
threaded substrate are wrapped in assert-owner proxies, so every
annotated claim ("only the main thread mutates this", "mutations hold
the wheel's condition") is *checked on every mutation* while the chaos
presets drive racy interleavings over them.

Two guard policies:

- :class:`LockHeldGuard` — mutation must hold the given lock
  (``Condition``/``RLock``; a plain ``Lock`` degrades to a held-by-
  someone check, the strongest assertion it supports);
- :class:`SingleWriterGuard` — the first mutating thread claims
  ownership and every later mutation must come from it.

Violations raise :class:`LockDisciplineError` (an ``AssertionError``
subclass: under the threaded substrate it lands in the node worker's
error list and fails the run). The proxies subclass the built-in
containers, so reads, iteration, and ``in`` behave identically —
only mutators assert first.
"""

from __future__ import annotations

import threading
from typing import Any


class LockDisciplineError(AssertionError):
    """A shared structure was mutated against its declared discipline."""


class LockHeldGuard:
    """Mutations must hold ``lock``."""

    __slots__ = ("name", "lock")

    def __init__(self, name: str, lock: Any) -> None:
        self.name = name
        self.lock = lock

    def check(self, op: str) -> None:
        is_owned = getattr(self.lock, "_is_owned", None)
        if is_owned is not None:
            held = is_owned()
        else:  # plain Lock: no owner notion, assert held at all
            held = self.lock.locked()
        if not held:
            raise LockDisciplineError(
                f"{self.name}.{op}() without holding its lock "
                f"(thread {threading.current_thread().name!r})"
            )


class SingleWriterGuard:
    """All mutations must come from one thread (first mutator claims)."""

    __slots__ = ("name", "owner")

    def __init__(self, name: str) -> None:
        self.name = name
        self.owner: threading.Thread | None = None

    def check(self, op: str) -> None:
        me = threading.current_thread()
        if self.owner is None:
            self.owner = me
        elif self.owner is not me:
            raise LockDisciplineError(
                f"{self.name}.{op}() from thread {me.name!r}; "
                f"owned by {self.owner.name!r}"
            )


def _asserting(cls: type, mutators: tuple[str, ...]) -> type:
    """Build a container subclass whose mutators assert the guard."""

    def make(op: str):
        base = getattr(cls, op)

        def checked(self, *args, **kwargs):
            self._guard.check(op)
            return base(self, *args, **kwargs)

        checked.__name__ = op
        return checked

    namespace = {op: make(op) for op in mutators}
    namespace["__slots__"] = ("_guard",)

    def __init__(self, guard, *args, **kwargs):  # noqa: N807
        cls.__init__(self, *args, **kwargs)
        self._guard = guard

    namespace["__init__"] = __init__
    return type(f"Guarded{cls.__name__.capitalize()}", (cls,), namespace)


GuardedDict = _asserting(
    dict,
    ("__setitem__", "__delitem__", "pop", "popitem", "clear", "update",
     "setdefault"),
)

GuardedSet = _asserting(
    set,
    ("add", "remove", "discard", "pop", "clear", "update",
     "difference_update", "intersection_update", "symmetric_difference_update",
     "__ior__", "__iand__", "__isub__", "__ixor__"),
)

GuardedList = _asserting(
    list,
    ("append", "extend", "insert", "pop", "remove", "clear", "sort",
     "reverse", "__setitem__", "__delitem__", "__iadd__", "__imul__"),
)


def guarded_dict(name: str, lock: Any = None) -> dict:
    """A dict asserting lock-held (or single-writer) discipline."""
    guard = LockHeldGuard(name, lock) if lock is not None \
        else SingleWriterGuard(name)
    return GuardedDict(guard)


def guarded_set(name: str, lock: Any = None) -> set:
    guard = LockHeldGuard(name, lock) if lock is not None \
        else SingleWriterGuard(name)
    return GuardedSet(guard)


def guarded_list(name: str, lock: Any = None) -> list:
    guard = LockHeldGuard(name, lock) if lock is not None \
        else SingleWriterGuard(name)
    return GuardedList(guard)
