"""The threaded in-process runtime substrate.

This package hosts the *same protocol nodes* the simulator runs on real
OS threads with queue-based message passing, demonstrating that the
sans-IO protocol layer is substrate-independent (the ChannelAdapter /
Connection split of paper section 2.1.2) and giving the integration
tests a genuinely concurrent environment — messages race, timers fire
asynchronously, and the protocol must still converge.

Deployments should not wire this cluster by hand: the single entry point
is the declarative scenario API — build a
:class:`repro.scenario.ScenarioSpec` and execute it with
``run_scenario(spec, runtime="threaded")`` (see
:class:`repro.scenario.threaded.ThreadedRuntime`, which drives this
cluster; ``runtime="process"`` selects the sibling multi-process
substrate in :mod:`repro.scenario.process`).

Contract: shared structures are written under their owning lock or
carry a checked ``guarded-by`` annotation — the LOCK001 discipline of
``docs/analysis.md``, enforced dynamically by
:mod:`repro.runtime.sanitizer` under ``debug_locks=True``.
"""

from repro.runtime.cluster import ThreadedCluster

__all__ = ["ThreadedCluster"]
