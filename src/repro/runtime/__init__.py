"""The threaded in-process runtime.

The discrete-event simulator (:mod:`repro.sim`) runs every experiment;
this runtime runs the *same protocol nodes* on real OS threads with
queue-based message passing, demonstrating that the sans-IO protocol
layer is substrate-independent (the ChannelAdapter / Connection split of
paper section 2.1.2) and giving the integration tests a genuinely
concurrent environment — messages race, timers fire asynchronously, and
the protocol must still converge.
"""

from repro.runtime.cluster import ThreadedCluster

__all__ = ["ThreadedCluster"]
