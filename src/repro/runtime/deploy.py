"""Deploying Perpetual services onto the threaded cluster.

Mirrors :func:`repro.perpetual.group.deploy_service` for the threaded
substrate: the same VoterNode / DriverNode classes, bound to threaded
environments instead of simulator environments.
"""

from __future__ import annotations

from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.crypto.keys import KeyStore
from repro.perpetual.driver import DriverNode
from repro.perpetual.executor import AppFactory
from repro.perpetual.group import ServiceGroup, Topology, build_replica
from repro.perpetual.voter import VoterNode, driver_name, voter_name
from repro.runtime.cluster import ThreadedCluster


def deploy_threaded_service(
    cluster: ThreadedCluster,
    topology: Topology,
    keys: KeyStore,
    service: str,
    app_factory: AppFactory,
    cost_model: CryptoCostModel = MAC_COST_MODEL,
    clbft_overrides: dict | None = None,
    retransmit_timeout_us: int = 100_000,
    fault_plan=None,
    batching: str | int = "off",
    router=None,
    home_group: str | None = None,
) -> ServiceGroup:
    """Deploy every replica of ``service`` onto the threaded cluster."""
    spec = topology.spec(service)
    voters: list[VoterNode] = []
    drivers: list[DriverNode] = []
    for index in range(spec.n):
        voter, driver = build_replica(
            topology=topology,
            service=service,
            index=index,
            keys=keys,
            app_factory=app_factory,
            cost_model=cost_model,
            clbft_overrides=clbft_overrides,
            retransmit_timeout_us=retransmit_timeout_us,
            fault_script=(
                fault_plan.script_for(service, index)
                if fault_plan is not None else None
            ),
            batching=batching,
            router=router,
            home_group=home_group,
        )
        voter.attach(cluster.add_node(voter_name(service, index), voter))
        voters.append(voter)
        driver.attach(cluster.add_node(driver_name(service, index), driver))
        drivers.append(driver)
    return ServiceGroup(service=service, voters=voters, drivers=drivers)
