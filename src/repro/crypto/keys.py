"""Pairwise session keys between protocol principals.

The Perpetual prototype establishes SSL sessions and MAC keys between every
communicating pair (section 2.1.2). Here a :class:`KeyStore` derives the
pairwise key deterministically from a deployment-wide root secret and the
two principal identities, which models a completed key exchange without
simulating the handshake itself. Faulty-replica tests exercise the failure
path by handing a node a key store with a different root secret.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.common.ids import NodeId

_KEY_BYTES = 32


class KeyStore:
    """Derives and caches symmetric keys for (sender, receiver) pairs.

    The pair key is symmetric in the principals — ``key(a, b) == key(b, a)``
    — matching MAC-based channel authentication where both ends hold the
    same session key.
    """

    def __init__(self, root_secret: bytes) -> None:
        if not root_secret:
            raise ValueError("root secret must be non-empty")
        self._root = root_secret
        self._cache: dict[tuple[str, str], bytes] = {}

    @classmethod
    def for_deployment(cls, deployment_name: str) -> "KeyStore":
        """Key store for a named deployment (same name -> same keys)."""
        seed = hashlib.sha256(f"repro-keys:{deployment_name}".encode()).digest()
        return cls(seed)

    def pair_key(self, a: NodeId | str, b: NodeId | str) -> bytes:
        """The shared key between principals ``a`` and ``b``."""
        name_a, name_b = str(a), str(b)
        if name_b < name_a:
            name_a, name_b = name_b, name_a
        cached = self._cache.get((name_a, name_b))
        if cached is not None:
            return cached
        material = f"{name_a}|{name_b}".encode()
        key = hmac.new(self._root, material, hashlib.sha256).digest()[:_KEY_BYTES]
        self._cache[(name_a, name_b)] = key
        return key
