"""Cryptographic substrate: digests, pairwise MACs, authenticator vectors.

The paper authenticates all communication with Message Authentication
Codes rather than digital signatures because "MAC calculations are three
orders of magnitude faster" (section 3), which is what lets Perpetual-WS
scale to larger replica groups. This package reproduces that design:

- :mod:`repro.crypto.keys`    -- pairwise session keys between principals;
- :mod:`repro.crypto.mac`     -- HMAC-SHA256 point-to-point MACs;
- :mod:`repro.crypto.auth`    -- CLBFT-style authenticator vectors (one MAC
  per receiver) and verification;
- :mod:`repro.crypto.digest`  -- canonical message digests;
- :mod:`repro.crypto.cost`    -- the cost model (MAC vs signature) used by
  the simulator's crypto-time accounting and the ablation benchmark.

Contract: digest once — one payload digest per message, memoized on the
blob/envelope; every receiver's MAC tag derives from that single
prehash (rule WIRE002, ``docs/analysis.md``). The batching stage
(``docs/architecture.md``) extends the same economy to one MAC vector
per batch.
"""

from repro.crypto.auth import Authenticator, AuthenticatorFactory
from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL, SIGNATURE_COST_MODEL
from repro.crypto.digest import digest, digest_hex
from repro.crypto.keys import KeyStore
from repro.crypto.mac import compute_mac, verify_mac

__all__ = [
    "Authenticator",
    "AuthenticatorFactory",
    "CryptoCostModel",
    "KeyStore",
    "MAC_COST_MODEL",
    "SIGNATURE_COST_MODEL",
    "compute_mac",
    "digest",
    "digest_hex",
    "verify_mac",
]
