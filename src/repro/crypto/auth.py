"""CLBFT-style authenticator vectors.

With MACs, a sender cannot produce one token every receiver can check, so
CLBFT multicasts carry an *authenticator*: a vector with one MAC per
receiver, each computed under the pairwise key. A receiver verifies only
its own entry. Reply bundles forwarded by the Perpetual responder (Figure
1, stage 6) carry the original per-replica authenticators so calling
drivers can verify that ``ft + 1`` distinct target replicas vouched for
the reply even though the bundle travelled through a single — possibly
faulty — responder.

Fast-path notes: the wire form of an authenticator stays the frozen,
hashable ``entries`` tuple, but lookups go through a dict index built once
per authenticator, and signing hashes the payload once (or reuses a
:class:`~repro.common.encoding.WireBlob`'s memoized digest) and derives
every receiver's tag from that 32-byte digest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.encoding import WireBlob
from repro.common.errors import AuthenticationError
from repro.common.ids import NodeId
from repro.common.metrics import METRICS
from repro.crypto.digest import digest
from repro.crypto.keys import KeyStore
from repro.crypto.mac import mac_over_digest, verify_mac_over_digest


@dataclass(frozen=True)
class Authenticator:
    """One sender's MAC vector over a message digest.

    ``entries`` maps the *receiver's* string form to the MAC computed under
    the (sender, receiver) pair key. The tuple is the stable wire/equality
    form; ``mac_for`` answers from a dict built once at construction.
    """

    sender: str
    entries: tuple[tuple[str, bytes], ...]

    def __post_init__(self) -> None:
        # Not a dataclass field: excluded from eq/hash/repr and from the
        # wire form, purely an O(1) lookup index over ``entries``.
        object.__setattr__(
            self, "_index", {name: tag for name, tag in self.entries}
        )

    def mac_for(self, receiver: NodeId | str) -> bytes | None:
        return self._index.get(str(receiver))


# SHA-256 of the authenticated bytes; handles bytes and WireBlob with the
# blob's memoized digest and the shared metrics accounting.
_payload_digest = digest


class AuthenticatorFactory:
    """Creates and verifies authenticators for one local principal."""

    def __init__(self, keys: KeyStore, me: NodeId | str) -> None:
        self._keys = keys
        self._me = str(me)
        # Pair keys for this principal, by receiver string. Avoids the
        # store's name-ordering and tuple work on every MAC of a vector.
        self._key_cache: dict[str, bytes] = {}

    def _pair_key(self, other: str) -> bytes:
        key = self._key_cache.get(other)
        if key is None:
            key = self._key_cache[other] = self._keys.pair_key(self._me, other)
        return key

    @property
    def principal(self) -> str:
        return self._me

    def sign(
        self, data: bytes | WireBlob, receivers: list[NodeId | str]
    ) -> Authenticator:
        """Authenticator over ``data`` for every receiver in order.

        Batched construction: the payload is hashed once and each
        receiver's tag is an HMAC over the cached digest, so the per-
        receiver cost does not re-touch the payload bytes.
        """
        prehash = _payload_digest(data)
        pair_key = self._pair_key
        entries = tuple(
            (name, mac_over_digest(pair_key(name), prehash))
            for name in map(str, receivers)
        )
        return Authenticator(sender=self._me, entries=entries)

    def verify(self, data: bytes | WireBlob, auth: Authenticator) -> bool:
        """Check the entry addressed to *me* in ``auth``."""
        return self.verify_prehashed(_payload_digest(data), auth)

    def verify_prehashed(self, data_digest: bytes, auth: Authenticator) -> bool:
        """Like :meth:`verify` but against a precomputed payload digest
        (an envelope shared by several receivers is hashed only once)."""
        tag = auth.mac_for(self._me)
        if tag is None:
            return False
        METRICS.mac_verifications += 1
        key = self._pair_key(auth.sender)
        return verify_mac_over_digest(key, data_digest, tag)

    def require(self, data: bytes | WireBlob, auth: Authenticator) -> None:
        """Like :meth:`verify` but raises :class:`AuthenticationError`."""
        if not self.verify(data, auth):
            raise AuthenticationError(
                f"{self._me}: bad authenticator from {auth.sender}"
            )
