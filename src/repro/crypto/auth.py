"""CLBFT-style authenticator vectors.

With MACs, a sender cannot produce one token every receiver can check, so
CLBFT multicasts carry an *authenticator*: a vector with one MAC per
receiver, each computed under the pairwise key. A receiver verifies only
its own entry. Reply bundles forwarded by the Perpetual responder (Figure
1, stage 6) carry the original per-replica authenticators so calling
drivers can verify that ``ft + 1`` distinct target replicas vouched for
the reply even though the bundle travelled through a single — possibly
faulty — responder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import AuthenticationError
from repro.common.ids import NodeId
from repro.crypto.keys import KeyStore
from repro.crypto.mac import compute_mac, verify_mac


@dataclass(frozen=True)
class Authenticator:
    """One sender's MAC vector over a message digest.

    ``entries`` maps the *receiver's* string form to the MAC computed under
    the (sender, receiver) pair key.
    """

    sender: str
    entries: tuple[tuple[str, bytes], ...]

    def mac_for(self, receiver: NodeId | str) -> bytes | None:
        name = str(receiver)
        for receiver_name, tag in self.entries:
            if receiver_name == name:
                return tag
        return None


class AuthenticatorFactory:
    """Creates and verifies authenticators for one local principal."""

    def __init__(self, keys: KeyStore, me: NodeId | str) -> None:
        self._keys = keys
        self._me = str(me)

    @property
    def principal(self) -> str:
        return self._me

    def sign(self, data: bytes, receivers: list[NodeId | str]) -> Authenticator:
        """Authenticator over ``data`` for every receiver in order."""
        entries = []
        for receiver in receivers:
            key = self._keys.pair_key(self._me, receiver)
            entries.append((str(receiver), compute_mac(key, data)))
        return Authenticator(sender=self._me, entries=tuple(entries))

    def verify(self, data: bytes, auth: Authenticator) -> bool:
        """Check the entry addressed to *me* in ``auth``."""
        tag = auth.mac_for(self._me)
        if tag is None:
            return False
        key = self._keys.pair_key(auth.sender, self._me)
        return verify_mac(key, data, tag)

    def require(self, data: bytes, auth: Authenticator) -> None:
        """Like :meth:`verify` but raises :class:`AuthenticationError`."""
        if not self.verify(data, auth):
            raise AuthenticationError(
                f"{self._me}: bad authenticator from {auth.sender}"
            )
