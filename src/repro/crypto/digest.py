"""Canonical message digests.

Digests are the unit of agreement: CLBFT agrees on request digests and the
Perpetual responder matches replies by digest. Both replicas of any
correct pair must compute the same digest for the same logical message, so
digests are always taken over :func:`repro.common.encoding.canonical_encode`
output.

A :class:`~repro.common.encoding.WireBlob` answers from its memoized
digest, so code that already encoded a message (a multicast, a stored
reply) never hashes the same bytes twice.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.common.encoding import WireBlob, canonical_encode
from repro.common.metrics import METRICS

DIGEST_BYTES = 32


def digest(obj: Any) -> bytes:
    """SHA-256 digest of the canonical encoding of ``obj``."""
    if type(obj) is WireBlob:
        return obj.digest  # memoized; metrics counted by the blob
    if isinstance(obj, bytes):
        data = obj
    else:
        data = canonical_encode(obj)
    METRICS.digest_calls += 1
    return hashlib.sha256(data).digest()


def digest_hex(obj: Any) -> str:
    """Hex form of :func:`digest`, convenient for logs and dict keys."""
    return digest(obj).hex()
