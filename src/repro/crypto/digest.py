"""Canonical message digests.

Digests are the unit of agreement: CLBFT agrees on request digests and the
Perpetual responder matches replies by digest. Both replicas of any
correct pair must compute the same digest for the same logical message, so
digests are always taken over :func:`repro.common.encoding.canonical_encode`
output.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.common.encoding import canonical_encode

DIGEST_BYTES = 32


def digest(obj: Any) -> bytes:
    """SHA-256 digest of the canonical encoding of ``obj``."""
    if isinstance(obj, bytes):
        data = obj
    else:
        data = canonical_encode(obj)
    return hashlib.sha256(data).digest()


def digest_hex(obj: Any) -> str:
    """Hex form of :func:`digest`, convenient for logs and dict keys."""
    return digest(obj).hex()
