"""Point-to-point message authentication codes (HMAC-SHA256).

The paper uses MDx-MAC over the SSL channel; the concrete primitive is
irrelevant to the protocol, so we use HMAC-SHA256 from the standard
library. What matters — and what this module preserves — is that a MAC is
verifiable only by the key-sharing pair, unlike a signature, which is what
forces CLBFT's authenticator-vector design.

MACs are taken over the SHA-256 *digest* of the data rather than the data
itself. Both ends use the same construction, so verifiability is
unchanged, and an authenticator vector for ``n`` receivers hashes the
payload once and derives all ``n`` tags from the cached 32-byte digest —
the batched MAC-vector construction of the wire fast path.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.common.metrics import METRICS

MAC_BYTES = 16


def mac_over_digest(key: bytes, data_digest: bytes) -> bytes:
    """MAC of pre-digested data, truncated to :data:`MAC_BYTES`.

    ``data_digest`` must be the SHA-256 digest of the authenticated bytes;
    callers holding a :class:`~repro.common.encoding.WireBlob` pass its
    memoized digest so a multicast hashes the payload exactly once.
    """
    METRICS.mac_computations += 1
    return hmac.digest(key, data_digest, "sha256")[:MAC_BYTES]


def compute_mac(key: bytes, data: bytes) -> bytes:
    """MAC of ``data`` under ``key``, truncated to :data:`MAC_BYTES`."""
    METRICS.digest_calls += 1
    return mac_over_digest(key, hashlib.sha256(data).digest())


def verify_mac(key: bytes, data: bytes, tag: bytes) -> bool:
    """Constant-time verification of ``tag`` over ``data``."""
    return hmac.compare_digest(compute_mac(key, data), tag)


def verify_mac_over_digest(key: bytes, data_digest: bytes, tag: bytes) -> bool:
    """Constant-time verification against a precomputed data digest."""
    return hmac.compare_digest(mac_over_digest(key, data_digest), tag)
