"""Point-to-point message authentication codes (HMAC-SHA256).

The paper uses MDx-MAC over the SSL channel; the concrete primitive is
irrelevant to the protocol, so we use HMAC-SHA256 from the standard
library. What matters — and what this module preserves — is that a MAC is
verifiable only by the key-sharing pair, unlike a signature, which is what
forces CLBFT's authenticator-vector design.
"""

from __future__ import annotations

import hashlib
import hmac

MAC_BYTES = 16


def compute_mac(key: bytes, data: bytes) -> bytes:
    """MAC of ``data`` under ``key``, truncated to :data:`MAC_BYTES`."""
    return hmac.new(key, data, hashlib.sha256).digest()[:MAC_BYTES]


def verify_mac(key: bytes, data: bytes, tag: bytes) -> bool:
    """Constant-time verification of ``tag`` over ``data``."""
    return hmac.compare_digest(compute_mac(key, data), tag)
