"""Crypto cost model for the simulator.

The paper's central efficiency argument (section 3, validated in section
6.4) is that MAC authentication is far cheaper than
digital signatures (three orders of magnitude), so MAC-based systems
(Thema, Perpetual-WS) scale to
large replica groups while signature-based ones (SWS, BFT-WS) do not. The
simulator charges these costs per authenticator operation; swapping the
model in is the signature-ablation benchmark.

Times are in microseconds of simulated CPU and are calibrated to the
paper's testbed class (2 GHz Opteron): an MD5-family MAC over a small
message costs on the order of a microsecond; an RSA-1024 signature costs
on the order of milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CryptoCostModel:
    """Per-operation simulated CPU costs, in microseconds."""

    name: str
    sign_us: int
    verify_us: int
    per_receiver_us: int

    def authenticator_cost_us(self, receivers: int) -> int:
        """Cost of producing an authenticator for ``receivers`` receivers.

        MAC authenticators pay ``per_receiver_us`` per entry; a signature
        is a single operation regardless of audience (its entries count is
        irrelevant), modelled by ``per_receiver_us == 0``.
        """
        return self.sign_us + self.per_receiver_us * max(receivers - 1, 0)

    def verification_cost_us(self) -> int:
        return self.verify_us


MAC_COST_MODEL = CryptoCostModel(
    name="mac", sign_us=2, verify_us=2, per_receiver_us=1
)

SIGNATURE_COST_MODEL = CryptoCostModel(
    name="rsa-signature", sign_us=2000, verify_us=100, per_receiver_us=0
)
