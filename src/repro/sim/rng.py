"""Deterministic pseudo-randomness for the simulator.

All stochastic choices in experiments (think times, workload mixes, fault
timing) flow through a :class:`DeterministicRng` derived from the run's
seed plus a stream label, so adding a new consumer does not perturb the
draws seen by existing consumers — a standard trick for reproducible
simulation studies.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng:
    """A labelled random stream.

    Wraps :class:`random.Random` seeded from ``(seed, label)`` so distinct
    labels give statistically independent, individually reproducible
    streams.
    """

    def __init__(self, seed: int, label: str = "") -> None:
        material = f"{seed}:{label}".encode()
        self._rand = random.Random(
            int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
        )
        self._seed = seed
        self._label = label

    def stream(self, label: str) -> "DeterministicRng":
        """Child stream with a compound label."""
        return DeterministicRng(self._seed, f"{self._label}/{label}")

    def randint(self, lo: int, hi: int) -> int:
        return self._rand.randint(lo, hi)

    def random(self) -> float:
        return self._rand.random()

    def choice(self, seq):
        return self._rand.choice(seq)

    def choices(self, population, weights, k: int = 1):
        return self._rand.choices(population, weights=weights, k=k)

    def expovariate(self, rate: float) -> float:
        return self._rand.expovariate(rate)

    def shuffle(self, seq) -> None:
        self._rand.shuffle(seq)

    def sample_mean_us(self, mean_us: int) -> int:
        """Exponential sample with the given mean, in integer microseconds."""
        if mean_us <= 0:
            return 0
        return max(1, round(self._rand.expovariate(1.0 / mean_us)))
