"""Network models and fault injection.

The paper's testbed is a single gigabit Ethernet switch with 78 us
pairwise RTTs. :class:`LanModel` reproduces that: a fixed one-way
propagation delay plus a size-proportional serialisation term. Messages
between co-located nodes never touch the network (the kernel's
``local_deliver`` path), matching the paper's local event queues.

Fault injection composes over any base model:

- :class:`FaultyLink` drops, delays, or duplicates messages on selected
  (src, dst) pairs — used to exercise view changes and request aborts;
- :class:`PartitionModel` cuts off a set of nodes entirely — used for
  crash-fault tests (a crashed replica is one that never speaks again).
"""

from __future__ import annotations

from typing import Any

from repro.sim.rng import DeterministicRng


class NetworkModel:
    """Base class: maps (src, dst, size) to a latency or a drop (None)."""

    def latency_us(self, src: Any, dst: Any, size_bytes: int) -> int | None:
        raise NotImplementedError


class UniformLatency(NetworkModel):
    """Constant one-way latency regardless of size. Good for unit tests."""

    def __init__(self, latency_us: int = 0) -> None:
        self._latency_us = latency_us

    def latency_us(self, src: Any, dst: Any, size_bytes: int) -> int | None:
        return self._latency_us


class LanModel(NetworkModel):
    """Switch-connected LAN: propagation + serialisation + optional jitter.

    Defaults model the paper's testbed *as the application saw it*: the
    wire RTT was 78 us (39 us one-way), but a message also traverses the
    kernel, the JVM, and SSL record processing at both ends before the
    application thread runs — latency that overlaps with other work and
    therefore belongs in the hop delay, not the CPU charge. The default
    one-way hop delay of 170 us folds that stack traversal in; gigabit
    serialisation adds 8 ns per byte.
    """

    def __init__(
        self,
        propagation_us: int = 170,
        ns_per_byte: int = 8,
        jitter_us: int = 0,
        rng: DeterministicRng | None = None,
    ) -> None:
        self._propagation_us = propagation_us
        self._ns_per_byte = ns_per_byte
        self._jitter_us = jitter_us
        self._rng = rng or DeterministicRng(0, "lan-jitter")

    def latency_us(self, src: Any, dst: Any, size_bytes: int) -> int | None:
        latency = self._propagation_us + (size_bytes * self._ns_per_byte) // 1000
        if self._jitter_us:
            latency += self._rng.randint(0, self._jitter_us)
        return latency


class FaultyLink(NetworkModel):
    """Decorator injecting per-link faults over a base model.

    Rules are keyed by ``(str(src), str(dst))``; a rule is a dict with any
    of ``drop`` (probability), ``extra_delay_us``, ``duplicate``
    (probability). Wildcards: ``"*"`` matches any principal.
    """

    def __init__(
        self,
        base: NetworkModel,
        rng: DeterministicRng | None = None,
    ) -> None:
        self._base = base
        self._rules: dict[tuple[str, str], dict] = {}
        self._rng = rng or DeterministicRng(0, "faulty-link")
        self.duplicates_pending: list[tuple[Any, Any, int]] = []

    def add_rule(self, src: str, dst: str, **rule) -> None:
        self._rules[(src, dst)] = rule

    def clear_rules(self) -> None:
        self._rules.clear()

    def _rule_for(self, src: Any, dst: Any) -> dict | None:
        s, d = str(src), str(dst)
        for key in ((s, d), (s, "*"), ("*", d), ("*", "*")):
            if key in self._rules:
                return self._rules[key]
        return None

    def latency_us(self, src: Any, dst: Any, size_bytes: int) -> int | None:
        base_latency = self._base.latency_us(src, dst, size_bytes)
        if base_latency is None:
            return None
        rule = self._rule_for(src, dst)
        if rule is None:
            return base_latency
        drop_p = rule.get("drop", 0.0)
        if drop_p and self._rng.random() < drop_p:
            return None
        return base_latency + rule.get("extra_delay_us", 0)


class PartitionModel(NetworkModel):
    """Cuts selected nodes off the network entirely (crash emulation)."""

    def __init__(self, base: NetworkModel) -> None:
        self._base = base
        self._dead: set[str] = set()

    def kill(self, node: Any) -> None:
        self._dead.add(str(node))

    def revive(self, node: Any) -> None:
        self._dead.discard(str(node))

    def is_dead(self, node: Any) -> bool:
        return str(node) in self._dead

    def latency_us(self, src: Any, dst: Any, size_bytes: int) -> int | None:
        if str(src) in self._dead or str(dst) in self._dead:
            return None
        return self._base.latency_us(src, dst, size_bytes)
