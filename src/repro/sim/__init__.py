"""Deterministic discrete-event simulation substrate.

The paper evaluates Perpetual-WS on a dedicated hardware testbed. This
package is the laptop-scale substitute: protocol nodes are sans-IO state
machines and this kernel supplies everything the testbed did —

- a virtual clock with microsecond resolution (:mod:`repro.sim.kernel`),
- per-node CPUs that serialise work and make throughput saturate
  (:mod:`repro.sim.kernel`, :class:`NodeCpu`),
- a network with configurable latency and fault injection
  (:mod:`repro.sim.network`),
- deterministic randomness (:mod:`repro.sim.rng`).

Determinism is total: the same configuration and seed produce the same
event trace, which the replay tests rely on.

Contract: total determinism — same spec and seed, same event trace.
Protocol code reads time and randomness only through this kernel's
surfaces (rules DET001-DET005, ``docs/analysis.md``).
"""

from repro.sim.kernel import Event, Simulator, SimNodeEnv, ProtocolNode
from repro.sim.network import (
    FaultyLink,
    LanModel,
    NetworkModel,
    PartitionModel,
    UniformLatency,
)
from repro.sim.rng import DeterministicRng

__all__ = [
    "DeterministicRng",
    "Event",
    "FaultyLink",
    "LanModel",
    "NetworkModel",
    "PartitionModel",
    "ProtocolNode",
    "SimNodeEnv",
    "Simulator",
    "UniformLatency",
]
