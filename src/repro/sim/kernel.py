"""The discrete-event kernel.

Protocol code is written sans-IO against two small interfaces:

- :class:`ProtocolNode` — implemented by voters, drivers, clients, and
  emulators: ``on_message(src, msg)`` and ``on_timer(tag)``.
- :class:`SimNodeEnv` — handed to each node: ``send``, ``local_deliver``,
  ``set_timer`` / ``cancel_timer``, ``now_us``, and ``charge`` (CPU time).

The kernel models one CPU per *host*. The paper co-locates the voter and
driver of a replica on a single host (section 2.1), so those two nodes
share a CPU by default; throughput then saturates on per-host work exactly
as on the testbed. Message handling at a node begins when both the message
has arrived and the host CPU is free; ``charge(us)`` extends the busy
period; messages sent during handling depart at the charge-accumulated
point of the send call.

The event queue is the innermost loop of every experiment, so it is kept
lean: heap entries are plain ``(time_us, seq, payload)`` tuples (native
tuple comparison, no dataclass ``__lt__``), where ``payload`` is the
callable itself for ordinary events and a slotted :class:`Event` record
only where cancellation must be observable (timers). Cancelled timers are
compacted out of the heap periodically so long runs with heavy re-arming
(retransmission timers under TPC-W load) do not accumulate dead entries.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.common.errors import SimulationError
from repro.common.metrics import METRICS

US_PER_MS = 1_000
US_PER_S = 1_000_000

# Compact the heap when more than this many cancelled timers are queued
# AND they outnumber the live entries (amortised O(1) per cancellation).
_COMPACT_MIN_CANCELLED = 64


class Event:
    """A cancellable scheduled callback (used for timers)."""

    __slots__ = ("time_us", "action", "cancelled")

    def __init__(self, time_us: int, action: Callable[[], None]) -> None:
        self.time_us = time_us
        self.action = action
        self.cancelled = False


class ProtocolNode:
    """Base class for everything that lives on the simulated network."""

    #: True for nodes that buffer channel output until end-of-handler
    #: (tick batching): every substrate calls :meth:`on_flush` after each
    #: handler invocation on such nodes, and only on such nodes.
    wants_flush = False

    def on_message(self, src: Any, msg: Any) -> None:
        raise NotImplementedError

    def on_timer(self, tag: Any) -> None:
        raise NotImplementedError

    def on_start(self) -> None:
        """Hook invoked once when the simulation starts."""

    def on_flush(self) -> None:
        """End-of-handler hook (see :attr:`wants_flush`); default no-op."""


class NodeCpu:
    """Serialises the work of all nodes sharing one host CPU."""

    __slots__ = ("free_at_us",)

    def __init__(self) -> None:
        self.free_at_us = 0

    def begin(self, now_us: int) -> int:
        """Return the time at which handling may start."""
        return max(now_us, self.free_at_us)


class Simulator:
    """Deterministic event loop with per-host CPU accounting."""

    def __init__(self) -> None:
        # Heap of (time_us, seq, payload); payload is a zero-arg callable
        # or an Event for cancellable entries.
        self._queue: list[tuple[int, int, Any]] = []
        self._seq = itertools.count()
        self._now_us = 0
        self._nodes: dict[str, ProtocolNode] = {}
        self._envs: dict[str, "SimNodeEnv"] = {}
        self._cpus: dict[str, NodeCpu] = {}
        self._node_cpu: dict[str, str] = {}
        self._network = None
        self._started = False
        self._cancelled_in_queue = 0
        self.events_processed = 0
        # Nodes with wants_flush, by key: checked once per handler run, so
        # batching=off pays one empty-dict probe, not an attribute walk.
        self._flush_nodes: dict[str, ProtocolNode] = {}

    # -- construction -----------------------------------------------------

    def set_network(self, network) -> None:
        """Install the :class:`repro.sim.network.NetworkModel`."""
        self._network = network

    def add_node(
        self,
        node_id: Any,
        node: ProtocolNode,
        host: str | None = None,
    ) -> "SimNodeEnv":
        """Register ``node`` under ``node_id``.

        ``host`` names the CPU the node runs on; co-located nodes (a
        replica's voter and driver) pass the same host name. Defaults to a
        dedicated host per node.
        """
        key = str(node_id)
        if key in self._nodes:
            raise SimulationError(f"duplicate node id: {key}")
        host_key = host if host is not None else key
        self._cpus.setdefault(host_key, NodeCpu())
        self._node_cpu[key] = host_key
        env = SimNodeEnv(self, node_id)
        self._nodes[key] = node
        self._envs[key] = env
        if getattr(node, "wants_flush", False):
            self._flush_nodes[key] = node
        return env

    def node(self, node_id: Any) -> ProtocolNode:
        return self._nodes[str(node_id)]

    def env(self, node_id: Any) -> "SimNodeEnv":
        return self._envs[str(node_id)]

    # -- time and scheduling ----------------------------------------------

    @property
    def now_us(self) -> int:
        return self._now_us

    def schedule(self, delay_us: int, action: Callable[[], None]) -> None:
        """Schedule ``action`` at ``now + delay_us``."""
        if delay_us < 0:
            raise SimulationError(f"negative delay: {delay_us}")
        heapq.heappush(
            self._queue, (self._now_us + int(delay_us), next(self._seq), action)
        )

    def schedule_at(self, time_us: int, action: Callable[[], None]) -> None:
        if time_us < self._now_us:
            raise SimulationError(f"cannot schedule in the past: {time_us}")
        heapq.heappush(self._queue, (int(time_us), next(self._seq), action))

    def schedule_timer(self, time_us: int, action: Callable[[], None]) -> Event:
        """Schedule a cancellable event; returns its :class:`Event` handle."""
        event = Event(int(time_us), action)
        heapq.heappush(self._queue, (event.time_us, next(self._seq), event))
        return event

    def cancel_event(self, event: Event) -> None:
        """Mark a scheduled event dead; the heap entry is skipped on pop
        and physically removed by the next compaction pass."""
        if event.cancelled:
            return
        event.cancelled = True
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue > _COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled timer entries.

        In place (slice assignment): ``run`` aliases the queue list, so
        rebinding the attribute would strand the loop on a stale heap.
        """
        self._queue[:] = [
            entry
            for entry in self._queue
            if not (type(entry[2]) is Event and entry[2].cancelled)
        ]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        METRICS.heap_compactions += 1

    # -- message plumbing ---------------------------------------------------

    def post_message(self, src: Any, dst: Any, msg: Any, size_bytes: int) -> None:
        """Send ``msg`` from ``src`` to ``dst`` through the network model."""
        if self._network is None:
            latency_us = 0
        else:
            latency_us = self._network.latency_us(src, dst, size_bytes)
            if latency_us is None:
                return  # dropped by fault injection
        self.schedule(
            latency_us, lambda: self._deliver(src, dst, msg)
        )

    def post_local(self, src: Any, dst: Any, msg: Any) -> None:
        """Deliver between co-located nodes (the local event queue)."""
        self.schedule(0, lambda: self._deliver(src, dst, msg))

    def _deliver(self, src: Any, dst: Any, msg: Any) -> None:
        key = str(dst)
        node = self._nodes.get(key)
        if node is None:
            return  # destination not deployed (e.g. crashed and removed)
        self._run_handler(key, lambda: node.on_message(src, msg))

    def _fire_timer(self, node_key: str, tag: Any) -> None:
        node = self._nodes.get(node_key)
        if node is None:
            return
        self._run_handler(node_key, lambda: node.on_timer(tag))

    def _run_handler(self, node_key: str, handler: Callable[[], None]) -> None:
        """Run a node handler with CPU accounting.

        Handling starts when the host CPU frees up; ``charge`` calls made
        by the handler extend the busy window; buffered sends depart at
        the accumulated charge point.
        """
        env = self._envs[node_key]
        cpu = self._cpus[self._node_cpu[node_key]]
        start_us = cpu.begin(self._now_us)
        if start_us > self._now_us:
            # CPU is busy: requeue the handling to when it frees up. The
            # requeued event re-checks, so chained busy periods work.
            self.schedule_at(start_us, lambda: self._run_handler(node_key, handler))
            return
        env.begin_handling(start_us)
        handler()
        flush_node = self._flush_nodes.get(node_key)
        if flush_node is not None:
            # Tick batching: release the node's buffered channel output
            # inside the same busy window, so batched sends depart at the
            # handler's charge-accumulated point like any other send.
            flush_node.on_flush()
        charged_us = env.end_handling()
        cpu.free_at_us = start_us + charged_us
        for depart_at_us, dispatch in env.drain_outbox():
            self.schedule_at(depart_at_us, dispatch)

    # -- running -------------------------------------------------------------

    def start(self) -> None:
        """Invoke every node's ``on_start`` hook (with CPU accounting)."""
        if self._started:
            return
        self._started = True
        for key, node in self._nodes.items():
            self._run_handler(key, node.on_start)

    def run(self, until_us: int | None = None, max_events: int | None = None) -> int:
        """Process events until quiescence, a deadline, or an event budget.

        Returns the number of events processed in this call.
        """
        self.start()
        processed = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                time_us, _, payload = queue[0]
                if type(payload) is Event:
                    if payload.cancelled:
                        pop(queue)
                        self._cancelled_in_queue -= 1
                        continue
                    action = payload.action
                else:
                    action = payload
                if until_us is not None and time_us > until_us:
                    self._now_us = until_us
                    break
                if max_events is not None and processed >= max_events:
                    break
                pop(queue)
                self._now_us = time_us
                action()
                processed += 1
            else:
                if until_us is not None:
                    self._now_us = max(self._now_us, until_us)
        finally:
            # Counted even when a handler raises, so observers never see
            # a total that omits the events of a failed run.
            self.events_processed += processed
            METRICS.events_processed += processed
        return processed

    def run_for(self, duration_us: int) -> int:
        """Run for a window of simulated time from now."""
        return self.run(until_us=self._now_us + duration_us)


class SimNodeEnv:
    """The environment handed to one protocol node.

    Provides time, timers, CPU charging, and sends. Sends are buffered
    during handling and released with their charge-accumulated departure
    times when the handler returns.
    """

    __slots__ = (
        "_sim",
        "node_id",
        "_key",
        "_handling",
        "_start_us",
        "_charged_us",
        "_outbox",
        "_timers",
    )

    def __init__(self, sim: Simulator, node_id: Any) -> None:
        self._sim = sim
        self.node_id = node_id
        self._key = str(node_id)
        self._handling = False
        self._start_us = 0
        self._charged_us = 0
        self._outbox: list[tuple[int, Callable[[], None]]] = []
        self._timers: dict[Any, Event] = {}

    # -- kernel-side hooks --------------------------------------------------

    def begin_handling(self, start_us: int) -> None:
        self._handling = True
        self._start_us = start_us
        self._charged_us = 0
        self._outbox = []

    def end_handling(self) -> int:
        self._handling = False
        return self._charged_us

    def drain_outbox(self) -> list[tuple[int, Callable[[], None]]]:
        out, self._outbox = self._outbox, []
        return out

    # -- node-facing API ------------------------------------------------------

    def now_us(self) -> int:
        """Current simulated time, including CPU charged so far."""
        if self._handling:
            return self._start_us + self._charged_us
        return self._sim.now_us

    def now_ms(self) -> int:
        return self.now_us() // US_PER_MS

    def charge(self, cpu_us: int) -> None:
        """Consume ``cpu_us`` of this node's host CPU."""
        if cpu_us < 0:
            raise SimulationError(f"negative charge: {cpu_us}")
        self._charged_us += int(cpu_us)

    def send(self, dst: Any, msg: Any, size_bytes: int = 256) -> None:
        """Send a message over the network (departs at current charge point)."""
        depart_at = self.now_us()
        src = self.node_id
        self._enqueue(
            depart_at,
            lambda: self._sim.post_message(src, dst, msg, size_bytes),
        )

    def local_deliver(self, dst: Any, msg: Any) -> None:
        """Deliver to a co-located node via the local event queue."""
        depart_at = self.now_us()
        src = self.node_id
        self._enqueue(depart_at, lambda: self._sim.post_local(src, dst, msg))

    def _enqueue(self, depart_at: int, dispatch: Callable[[], None]) -> None:
        if self._handling:
            self._outbox.append((depart_at, dispatch))
        else:
            self._sim.schedule_at(max(depart_at, self._sim.now_us), dispatch)

    def set_timer(self, tag: Any, delay_us: int) -> None:
        """Arm (or re-arm) the timer named ``tag``."""
        self.cancel_timer(tag)
        fire_at = self.now_us() + int(delay_us)
        self._timers[tag] = self._sim.schedule_timer(
            fire_at, lambda: self._on_timer_fired(tag)
        )

    def _on_timer_fired(self, tag: Any) -> None:
        self._timers.pop(tag, None)
        self._sim._fire_timer(self._key, tag)

    def cancel_timer(self, tag: Any) -> None:
        event = self._timers.pop(tag, None)
        if event is not None:
            self._sim.cancel_event(event)

    def timer_armed(self, tag: Any) -> bool:
        return tag in self._timers
