"""An SOA orchestrator with a long-running active thread of computation.

This demonstrates the application model the paper argues existing BFT
middleware cannot express (section 3): the orchestrator is *active* — it
drives a multi-step business process of its own volition, issuing calls to
several services, consulting the deterministic clock, and still serving
status queries while steps are in flight. It is a miniature of the
BPEL-engine direction in the paper's future work.

The process: for each work order, (1) reserve inventory, (2) authorise
payment, (3) if both succeed, confirm shipment; compensate the reservation
when payment fails — a classic saga, executed deterministically across
all orchestrator replicas.
"""

from __future__ import annotations

from repro.ws.api import MessageContext, MessageHandler, Utils


def orchestrator_app(
    orders: list[dict],
    inventory_endpoint: str = "inventory",
    payment_endpoint: str = "payment",
    shipping_endpoint: str = "shipping",
    log: list | None = None,
):
    """Build the orchestrator application for a fixed batch of orders.

    ``log`` (optional, test observability) receives one entry per
    completed saga: ``(order_id, outcome, started_at_ms)``.
    """

    def app():
        for order in orders:
            order_id = order["order_id"]
            started_at = yield Utils.current_time_millis()
            reservation = yield MessageHandler.send_receive(
                MessageContext(
                    to=inventory_endpoint,
                    body={"op": "reserve", "order_id": order_id,
                          "item": order["item"], "qty": order["qty"]},
                )
            )
            if reservation.is_fault or not reservation.body.get("ok"):
                if log is not None:
                    log.append((order_id, "no-stock", started_at))
                continue
            payment = yield MessageHandler.send_receive(
                MessageContext(
                    to=payment_endpoint,
                    body={"card": order["card"],
                          "amount_cents": order["amount_cents"]},
                )
            )
            approved = (not payment.is_fault) and payment.body.get("approved")
            if not approved:
                # Compensate: release the reservation.
                yield MessageHandler.send_receive(
                    MessageContext(
                        to=inventory_endpoint,
                        body={"op": "release", "order_id": order_id},
                    )
                )
                if log is not None:
                    log.append((order_id, "payment-declined", started_at))
                continue
            shipment = yield MessageHandler.send_receive(
                MessageContext(
                    to=shipping_endpoint,
                    body={"op": "ship", "order_id": order_id},
                )
            )
            outcome = "shipped" if (
                not shipment.is_fault and shipment.body.get("ok")
            ) else "ship-failed"
            if log is not None:
                log.append((order_id, outcome, started_at))

    return app


def inventory_app(stock: dict[str, int]):
    """Inventory service for the saga: reserve/release with real state.

    State lives *inside* the generator so every replica evolves its own
    copy deterministically (sharing it across replicas would break the
    replicated state machine model).
    """

    def app():
        holdings = dict(stock)
        reservations: dict[int, tuple[str, int]] = {}
        while True:
            request = yield MessageHandler.receive_request()
            body = request.body or {}
            op = body.get("op")
            if op == "reserve":
                item, qty = body.get("item", ""), int(body.get("qty", 0))
                if holdings.get(item, 0) >= qty > 0:
                    holdings[item] -= qty
                    reservations[body["order_id"]] = (item, qty)
                    result = {"ok": True}
                else:
                    result = {"ok": False, "reason": "out-of-stock"}
            elif op == "release":
                held = reservations.pop(body.get("order_id"), None)
                if held is not None:
                    holdings[held[0]] += held[1]
                result = {"ok": True}
            else:
                result = {"ok": False, "reason": "bad-op"}
            yield MessageHandler.send_reply(MessageContext(body=result), request)

    return app


def shipping_app():
    """Shipping service: acknowledges every well-formed shipment."""

    def app():
        shipped = 0
        while True:
            request = yield MessageHandler.receive_request()
            body = request.body or {}
            ok = body.get("op") == "ship" and "order_id" in body
            if ok:
                shipped += 1
            yield MessageHandler.send_reply(
                MessageContext(body={"ok": ok, "shipped_total": shipped}),
                request,
            )

    return app
