"""Caller-side workload generators for the micro-benchmarks.

Paper section 6.2: "For all of our micro-benchmarks, we used a two-tier
setting with caller and target Web Services both implemented using
Perpetual-WS. All measurements were recorded at the calling Web Service."

Two callers reproduce the two communication patterns measured:

- :func:`sync_closed_loop_caller` — one outstanding request at a time
  (Figures 7 and 8);
- :func:`async_window_caller`    — a window of parallel asynchronous
  requests kept full (Figure 9).

Both record completion timestamps through a shared
:class:`CompletionRecorder` so the experiment harness can compute
throughput and per-request completion time at the calling service.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ws.api import MessageContext, MessageHandler


@dataclass
class CompletionRecorder:
    """Collects completion counts; replica 0's driver is the observer."""

    completions: list[int] = field(default_factory=list)
    faults: int = 0

    def record(self, fault: bool) -> None:
        if fault:
            self.faults += 1
        else:
            self.completions.append(1)

    @property
    def completed(self) -> int:
        return len(self.completions)


def sync_closed_loop_caller(
    target: str,
    total_calls: int,
    recorder: CompletionRecorder | None = None,
    body: dict | None = None,
    timeout_ms: int | None = None,
):
    """Closed-loop synchronous caller: issue, block, repeat."""
    payload = body or {}

    def app():
        from repro.ws.api import Options

        for i in range(total_calls):
            context = MessageContext(
                to=target,
                body=dict(payload, seq=i),
                options=Options(timeout_ms=timeout_ms),
            )
            reply = yield MessageHandler.send_receive(context)
            if recorder is not None:
                recorder.record(reply.is_fault)

    return app


def async_window_caller(
    target: str,
    total_calls: int,
    window: int,
    recorder: CompletionRecorder | None = None,
    body: dict | None = None,
    timeout_ms: int | None = None,
):
    """Windowed asynchronous caller.

    Keeps up to ``window`` requests in flight: issues eagerly until the
    window fills, then consumes one reply per new issue — the parallel
    asynchronous request pattern of Figure 9.
    """
    payload = body or {}

    def app():
        from repro.ws.api import Options

        issued = 0
        completed = 0
        in_flight = 0
        while completed < total_calls:
            if issued < total_calls and in_flight < window:
                context = MessageContext(
                    to=target,
                    body=dict(payload, seq=issued),
                    options=Options(timeout_ms=timeout_ms),
                )
                yield MessageHandler.send(context)
                issued += 1
                in_flight += 1
                continue
            reply = yield MessageHandler.receive_reply()
            completed += 1
            in_flight -= 1
            if recorder is not None:
                recorder.record(reply.is_fault)

    return app
