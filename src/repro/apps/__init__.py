"""Reference applications used by examples, tests, and benchmarks.

Every application here is written against the public Perpetual-WS API
(:mod:`repro.ws.api`) and is deterministic, as the programming model of
paper section 4 requires:

- :mod:`repro.apps.counter`      -- the paper's micro-benchmark ``increment``
  null-operation service (section 6.2);
- :mod:`repro.apps.digest`       -- the message-digest busy-work service used
  to model non-zero processing time (section 6.2 / Figure 8);
- :mod:`repro.apps.echo`         -- minimal request/reply echo;
- :mod:`repro.apps.payment`      -- the Payment Gateway Emulator (PGE) and the
  credit-card issuing bank of the TPC-W setup (section 6.1 / Figure 5);
- :mod:`repro.apps.workloads`    -- caller-side workload generators (closed
  sync loops and async windows) for the micro-benchmarks;
- :mod:`repro.apps.orchestrator` -- an SOA-style orchestrator with a
  long-running active thread of computation, demonstrating the application
  model Thema/BFT-WS/SWS cannot express.

Contract: applications are deterministic coroutines over the Figure-3
handler API — no ambient clocks or randomness (rules DET001/DET002,
``docs/analysis.md``); all I/O flows through the yielded operations.
"""

from repro.apps.counter import counter_app
from repro.apps.digest import digest_app
from repro.apps.echo import echo_app
from repro.apps.payment import bank_app, pge_app
from repro.apps.workloads import async_window_caller, sync_closed_loop_caller

__all__ = [
    "async_window_caller",
    "bank_app",
    "counter_app",
    "digest_app",
    "echo_app",
    "pge_app",
    "sync_closed_loop_caller",
]
