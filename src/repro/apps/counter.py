"""The ``increment`` null-operation service (paper section 6.2).

"To simulate null-operations, we implemented a simple increment method to
increment a counter at the target Web Service and return the old value of
the counter." This is the workload behind Figure 7 (replica scalability)
and the zero-CPU point of Figure 8.
"""

from __future__ import annotations

from repro.ws.api import MessageContext, MessageHandler


def counter_app():
    """Generator application: increments on every request."""
    counter = 0
    while True:
        request = yield MessageHandler.receive_request()
        old_value = counter
        counter += 1
        reply = MessageContext(body={"old": old_value, "counter": counter})
        yield MessageHandler.send_reply(reply, request)
