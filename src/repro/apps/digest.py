"""The message-digest busy-work service (paper section 6.2).

"To simulate non-zero execution time, we used message digest calculations
that approximately took the required length of time to complete." The
request carries the CPU time to burn; the reply carries a real digest over
the request body so the computed value is deterministic and checkable.
This is the workload behind Figure 8.
"""

from __future__ import annotations

import hashlib

from repro.ws.api import MessageContext, MessageHandler


def digest_app():
    """Generator application: burns the requested CPU time, returns a digest."""
    while True:
        request = yield MessageHandler.receive_request()
        body = request.body or {}
        cpu_us = int(body.get("cpu_us", 0))
        if cpu_us > 0:
            yield MessageHandler.compute(cpu_us)
        material = str(sorted(body.items())).encode()
        value = hashlib.sha256(material).hexdigest()
        reply = MessageContext(body={"digest": value, "cpu_us": cpu_us})
        yield MessageHandler.send_reply(reply, request)
