"""Minimal echo service: replies with the request body unchanged."""

from __future__ import annotations

from repro.ws.api import MessageContext, MessageHandler


def echo_app():
    """Generator application: echoes every request body back."""
    while True:
        request = yield MessageHandler.receive_request()
        yield MessageHandler.send_reply(
            MessageContext(body=request.body), request
        )
