"""The Payment Gateway Emulator (PGE) and issuing bank (paper section 6.1).

In the TPC-W setup (Figure 5), the bookstore calls a PGE web service,
which in turn calls a bank web service that simulates a credit-card
issuing bank — the n-tier chain whose replication Figure 6 varies. Both
tiers here use asynchronous messaging (the configuration the paper found
up to ~4% faster than synchronous); synchronous variants are provided for
the TXT-A comparison.

The business logic is deliberately simple but stateful and deterministic:
the bank approves a payment when the card's running exposure stays under
its limit; the PGE adds gateway-level validation and per-merchant volume
accounting.
"""

from __future__ import annotations

from repro.ws.api import MessageContext, MessageHandler

DEFAULT_CARD_LIMIT_CENTS = 5_000_00
PGE_CPU_US = 200
BANK_CPU_US = 200


def bank_app(card_limit_cents: int = DEFAULT_CARD_LIMIT_CENTS):
    """The issuing bank: approves while exposure stays under the limit."""
    exposure: dict[str, int] = {}
    approved = 0
    declined = 0
    while True:
        request = yield MessageHandler.receive_request()
        body = request.body or {}
        card = str(body.get("card", ""))
        amount = int(body.get("amount_cents", 0))
        yield MessageHandler.compute(BANK_CPU_US)
        current = exposure.get(card, 0)
        if card and amount > 0 and current + amount <= card_limit_cents:
            exposure[card] = current + amount
            approved += 1
            outcome = {"approved": True, "auth_code": f"A{approved:08d}"}
        else:
            declined += 1
            outcome = {"approved": False, "reason": "limit-exceeded"}
        yield MessageHandler.send_reply(MessageContext(body=outcome), request)


def pge_app(bank_endpoint: str = "bank", synchronous: bool = False):
    """The payment gateway: validates, then authorises through the bank.

    With ``synchronous=False`` (the paper's preferred configuration) the
    gateway issues the bank call and keeps serving new incoming requests
    while the authorisation is in flight, pairing replies back to their
    originating requests by message id — the long-running active thread
    model in action.
    """

    def validate(body: dict) -> str | None:
        if not body.get("card"):
            return "missing-card"
        if int(body.get("amount_cents", 0)) <= 0:
            return "bad-amount"
        return None

    def sync_gateway():
        volume = 0
        while True:
            request = yield MessageHandler.receive_request()
            body = request.body or {}
            yield MessageHandler.compute(PGE_CPU_US)
            error = validate(body)
            if error is not None:
                reply = MessageContext(body={"approved": False, "reason": error})
                yield MessageHandler.send_reply(reply, request)
                continue
            bank_reply = yield MessageHandler.send_receive(
                MessageContext(
                    to=bank_endpoint,
                    body={
                        "card": body["card"],
                        "amount_cents": body["amount_cents"],
                    },
                )
            )
            if bank_reply.is_fault:
                outcome = {"approved": False, "reason": "bank-unavailable"}
            else:
                volume += int(body["amount_cents"])
                outcome = dict(bank_reply.body)
                outcome["gateway_volume_cents"] = volume
            yield MessageHandler.send_reply(MessageContext(body=outcome), request)

    def async_gateway():
        # Fully asynchronous: one deterministic event loop over Perpetual's
        # agreed event queue. New store requests are dispatched to the bank
        # without waiting; bank replies are paired back to their original
        # request via wsa:RelatesTo whenever agreement delivers them.
        volume = 0
        pending: dict[str, MessageContext] = {}  # bank msg id -> store request
        while True:
            event = yield MessageHandler.receive_any()
            if event.kind == "reply":
                original = pending.pop(event.relates_to)
                if event.is_fault:
                    outcome = {"approved": False, "reason": "bank-unavailable"}
                else:
                    volume += int(original.body["amount_cents"])
                    outcome = dict(event.body)
                    outcome["gateway_volume_cents"] = volume
                yield MessageHandler.send_reply(
                    MessageContext(body=outcome), original
                )
                continue
            request = event
            body = request.body or {}
            yield MessageHandler.compute(PGE_CPU_US)
            error = validate(body)
            if error is not None:
                reply = MessageContext(body={"approved": False, "reason": error})
                yield MessageHandler.send_reply(reply, request)
                continue
            message_id = yield MessageHandler.send(
                MessageContext(
                    to=bank_endpoint,
                    body={
                        "card": body["card"],
                        "amount_cents": body["amount_cents"],
                    },
                )
            )
            pending[message_id] = request

    return sync_gateway if synchronous else async_gateway
