"""CLBFT group configuration and view arithmetic."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.quorum import agreement_quorum, fault_bound, weak_certificate


@dataclass(frozen=True)
class GroupConfig:
    """Static parameters of one CLBFT replica group.

    ``checkpoint_interval`` is the paper's K (checkpoints every K
    sequence numbers); ``log_window`` the watermark width L (in multiples
    of K, following Castro & Liskov's suggestion of a small multiple);
    ``batch_size`` the maximum requests the primary folds into one
    pre-prepare, reproducing the pipelining of the Perpetual prototype.
    """

    n: int
    checkpoint_interval: int = 16
    log_window: int = 64
    batch_size: int = 8
    view_change_timeout_us: int = 500_000

    @property
    def f(self) -> int:
        return fault_bound(self.n)

    @property
    def quorum(self) -> int:
        """Prepared/committed certificate size: 2f + 1."""
        return agreement_quorum(self.n)

    @property
    def weak(self) -> int:
        """Weak certificate size: f + 1."""
        return weak_certificate(self.n)

    def primary_of(self, view: int) -> int:
        """Replica index acting as primary in ``view``."""
        return view % self.n

    def is_primary(self, index: int, view: int) -> bool:
        return self.primary_of(view) == index
