"""CLBFT: the Castro-Liskov Practical Byzantine Fault Tolerance algorithm.

This is a from-scratch implementation of the agreement substrate the paper
builds on (section 2.1): pre-prepare / prepare / commit three-phase
agreement under MAC authenticators, periodic checkpoints with garbage
collection, and view changes for liveness under a faulty primary.

The module is sans-IO: :class:`repro.clbft.replica.ClbftReplica` consumes
protocol messages and emits them through injected callables, so the same
code runs on the discrete-event simulator and the threaded runtime. In
Perpetual, each service's *voter group* embeds one CLBFT instance and uses
it to agree both on external requests sent to the service and on replies
to requests the service issued (Figure 1, stages 2 and 8).

Contract: replicas are sans-IO deterministic state machines — identical
inputs produce identical outputs and sends on every substrate (rules
DET001-DET005). All messaging crosses the channel layer; the codec in
:mod:`repro.clbft.messages` is injected into the ChannelAdapter rather
than called directly (encode-once, rule WIRE001). Layer map:
``docs/architecture.md``.
"""

from repro.clbft.config import GroupConfig
from repro.clbft.messages import (
    Checkpoint,
    ClientRequest,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    Reply,
    ViewChange,
)
from repro.clbft.replica import ClbftReplica
from repro.clbft.client import ClbftClient

__all__ = [
    "Checkpoint",
    "ClbftClient",
    "ClbftReplica",
    "ClientRequest",
    "Commit",
    "GroupConfig",
    "NewView",
    "PrePrepare",
    "Prepare",
    "Reply",
    "ViewChange",
]
