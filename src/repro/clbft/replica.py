"""The CLBFT replica state machine.

Sans-IO: all effects flow through injected callables —

- ``execute(seqno, request) -> result`` — application upcall, invoked in
  sequence-number order exactly once per request;
- ``multicast(msg)`` — authenticated send to every *other* group member;
- ``send_to(index, msg)`` — authenticated send to one group member;
- ``send_reply(client, reply)`` — deliver an execution result to the
  submitting principal (optional; Perpetual voters consume results through
  ``execute`` instead);
- ``set_timer(tag, delay_us)`` / ``cancel_timer(tag)`` — liveness timers.

The implementation follows Castro & Liskov (OSDI'99) with MAC
authenticators: three-phase normal case (pre-prepare, prepare, commit),
request batching at the primary, checkpointing every K sequence numbers
with garbage collection, and view changes carrying checkpoint and
prepared-certificate proofs. Authentication is enforced one layer below
(the ChannelAdapter verifies before the voter feeds messages in), so this
module trusts ``src_index``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.clbft.config import GroupConfig
from repro.clbft.log import MessageLog, SeqnoEntry
from repro.clbft.messages import (
    Checkpoint,
    ClientRequest,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    PreparedProof,
    Reply,
    ViewChange,
    encode_message,
)
from repro.common.encoding import IdentityMemo
from repro.common.metrics import METRICS
from repro.crypto.digest import digest

VIEW_CHANGE_TIMER = "clbft-view-change"
# analysis: allow(WIRE002) — module constant, digested once at import
NULL_DIGEST = digest(("null",))

# Backups sharing one decoded pre-prepare share its requests tuple, so
# the batch digest is computed once per batch, not once per backup.
_BATCH_DIGESTS = IdentityMemo()


def batch_digest(requests: tuple) -> bytes:
    """Digest of a request batch (the value agreement is run on).

    Taken over the fused wire encoding in one walk; every replica uses
    this same function, so only internal consistency matters.
    """
    # analysis: allow(WIRE001, WIRE002) — computed once per batch object
    # via the IdentityMemo above; backups sharing a decoded pre-prepare
    # share the result
    return _BATCH_DIGESTS.get(requests, lambda r: digest(encode_message(r)))


def request_key(request: ClientRequest) -> tuple[str, int]:
    return (request.client, request.timestamp)


class ClbftReplica:
    """One member of a CLBFT group."""

    def __init__(
        self,
        config: GroupConfig,
        index: int,
        execute: Callable[[int, ClientRequest], Any],
        multicast: Callable[[Any], None],
        send_to: Callable[[int, Any], None],
        set_timer: Callable[[str, int], None],
        cancel_timer: Callable[[str], None],
        send_reply: Callable[[str, Reply], None] | None = None,
        state_digest: Callable[[], bytes] | None = None,
        on_new_view: Callable[[int], None] | None = None,
        on_stable_checkpoint: Callable[[int], None] | None = None,
    ) -> None:
        self.config = config
        self.index = index
        self._execute = execute
        self._multicast = multicast
        self._send_to = send_to
        self._set_timer = set_timer
        self._cancel_timer = cancel_timer
        self._send_reply = send_reply
        # analysis: allow(WIRE002) — checkpoint state digest, taken once
        # per checkpoint interval (K), never per message
        self._state_digest = state_digest or (lambda: digest(self.log.last_executed))
        self._new_view_callback = on_new_view
        self._stable_checkpoint_callback = on_stable_checkpoint

        self.view = 0
        self.log = MessageLog(config)
        self.next_seqno = 0
        self.in_view_change = False
        self.target_view = 0

        # Pending client requests: key -> request, insertion-ordered.
        self._pending: dict[tuple[str, int], ClientRequest] = {}
        # Every submitted-but-not-executed request, so requests ordered in
        # an abandoned view can be re-proposed after a view change.
        self._all_submitted: dict[tuple[str, int], ClientRequest] = {}
        # Keys already ordered (pre-prepared in the current view or executed).
        self._proposed: set[tuple[str, int]] = set()
        self._executed_keys: set[tuple[str, int]] = set()
        # Seqno each key executed at, so stable checkpoints can garbage-
        # collect the at-most-once bookkeeping above.
        self._executed_at: dict[tuple[str, int], int] = {}
        # Last reply per client, for at-most-once execution + retransmission.
        self._last_reply: dict[str, Reply] = {}
        # View-change votes per target view.
        self._view_changes: dict[int, dict[int, ViewChange]] = {}
        self._timeout_us = config.view_change_timeout_us

        # Observability counters.
        self.committed_batches = 0
        self.executed_requests = 0
        self.view_changes_completed = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    @property
    def is_primary(self) -> bool:
        return self.config.primary_of(self.view) == self.index

    def submit(self, request: ClientRequest) -> None:
        """Submit a request for agreement (from the local voter or edge).

        Replicas that are not the primary rely on the submission also
        reaching the primary (in Perpetual every voter submits the same
        item; standalone clients multicast on retransmission) and use the
        view-change timer for liveness.
        """
        key = request_key(request)
        if key in self._executed_keys:
            self._retransmit_reply(request)
            return
        self._all_submitted.setdefault(key, request)
        if key in self._pending or key in self._proposed:
            return
        self._pending[key] = request
        if self.is_primary and not self.in_view_change:
            self._try_propose()
        self._ensure_timer()

    def _retransmit_reply(self, request: ClientRequest) -> None:
        cached = self._last_reply.get(request.client)
        if (
            cached is not None
            and cached.timestamp == request.timestamp
            and self._send_reply is not None
        ):
            self._send_reply(request.client, cached)

    def _try_propose(self) -> None:
        """Primary: fold pending requests into pre-prepares while the
        watermark window allows."""
        while self._pending:
            if not self.log.in_window(self.next_seqno + 1):
                return
            batch = []
            for key in list(self._pending):
                if len(batch) >= self.config.batch_size:
                    break
                batch.append(self._pending.pop(key))
                self._proposed.add(key)
            if not batch:
                return
            self.next_seqno += 1
            requests = tuple(batch)
            pre_prepare = PrePrepare(
                view=self.view,
                seqno=self.next_seqno,
                digest=batch_digest(requests),
                requests=requests,
            )
            entry = self.log.entry(self.view, self.next_seqno)
            entry.pre_prepare = pre_prepare
            self._multicast(pre_prepare)
            # The primary's pre-prepare stands in for its prepare; with
            # n == 1 (unreplicated) the batch is instantly committed.
            self._maybe_commit(self.view, self.next_seqno)

    # ------------------------------------------------------------------
    # Normal-case message handling
    # ------------------------------------------------------------------

    def on_message(self, src_index: int, msg: Any) -> None:
        """Dispatch an authenticated protocol message from ``src_index``."""
        if isinstance(msg, ClientRequest):
            # A forwarded request (e.g. client retransmission relay).
            self.submit(msg)
        elif isinstance(msg, PrePrepare):
            self._on_pre_prepare(src_index, msg)
        elif isinstance(msg, Prepare):
            self._on_prepare(src_index, msg)
        elif isinstance(msg, Commit):
            self._on_commit(src_index, msg)
        elif isinstance(msg, Checkpoint):
            self._on_checkpoint(msg)
        elif isinstance(msg, ViewChange):
            self._on_view_change(src_index, msg)
        elif isinstance(msg, NewView):
            self._on_new_view(src_index, msg)

    def _on_pre_prepare(self, src_index: int, msg: PrePrepare) -> None:
        if self.in_view_change or msg.view != self.view:
            return
        if src_index != self.config.primary_of(msg.view):
            return  # only the view's primary may order
        if not self.log.in_window(msg.seqno):
            return
        if msg.digest != batch_digest(msg.requests):
            return  # digest does not cover the carried batch
        entry = self.log.entry(msg.view, msg.seqno)
        if entry.pre_prepare is not None:
            if entry.pre_prepare.digest != msg.digest:
                # Equivocating primary: keep the first, let the view change
                # sort it out.
                self._ensure_timer()
            return
        entry.pre_prepare = msg
        for request in msg.requests:
            key = request_key(request)
            self._pending.pop(key, None)
            self._proposed.add(key)
        prepare = Prepare(
            view=msg.view, seqno=msg.seqno, digest=msg.digest, replica=self.index
        )
        entry.prepares[self.index] = prepare
        self._multicast(prepare)
        self._ensure_timer()
        self._maybe_commit(msg.view, msg.seqno)

    def _on_prepare(self, src_index: int, msg: Prepare) -> None:
        if msg.replica != src_index or msg.replica == self.index:
            return
        if self.in_view_change or msg.view != self.view:
            return
        if not self.log.in_window(msg.seqno):
            return
        entry = self.log.entry(msg.view, msg.seqno)
        entry.prepares.setdefault(msg.replica, msg)
        self._maybe_commit(msg.view, msg.seqno)

    def _maybe_commit(self, view: int, seqno: int) -> None:
        entry = self.log.entry_if_exists(view, seqno)
        if entry is None or entry.pre_prepare is None:
            return
        if self.index in entry.commits or not entry.prepared(self.config):
            return
        commit = Commit(
            view=view, seqno=seqno, digest=entry.pre_prepare.digest,
            replica=self.index,
        )
        entry.commits[self.index] = commit
        self._multicast(commit)
        self._maybe_execute()

    def _on_commit(self, src_index: int, msg: Commit) -> None:
        if msg.replica != src_index or msg.replica == self.index:
            return
        if msg.view > self.view or not self.log.in_window(msg.seqno):
            return
        entry = self.log.entry(msg.view, msg.seqno)
        entry.commits.setdefault(msg.replica, msg)
        self._maybe_execute()

    # ------------------------------------------------------------------
    # Execution and checkpoints
    # ------------------------------------------------------------------

    def _committed_entry(self, seqno: int) -> SeqnoEntry | None:
        for view in range(self.view, -1, -1):
            entry = self.log.entry_if_exists(view, seqno)
            if entry is not None and entry.committed_local(self.config):
                return entry
        return None

    def _maybe_execute(self) -> None:
        """Execute committed batches in sequence-number order."""
        progressed = True
        while progressed:
            progressed = False
            seqno = self.log.last_executed + 1
            if seqno <= self.log.stable_seqno:
                # Covered by a stable checkpoint fetched via view change.
                self.log.last_executed = self.log.stable_seqno
                progressed = True
                continue
            entry = self._committed_entry(seqno)
            if entry is None or entry.executed:
                break
            entry.executed = True
            self.log.last_executed = seqno
            self.committed_batches += 1
            for request in entry.pre_prepare.requests:
                self._execute_once(seqno, request)
            if seqno % self.config.checkpoint_interval == 0:
                self._emit_checkpoint(seqno)
            progressed = True
        if not self._awaiting_execution():
            self._cancel_timer(VIEW_CHANGE_TIMER)
            self._timeout_us = self.config.view_change_timeout_us

    def _execute_once(self, seqno: int, request: ClientRequest) -> None:
        key = request_key(request)
        if key in self._executed_keys:
            return
        self._executed_keys.add(key)
        self._executed_at[key] = seqno
        self._pending.pop(key, None)
        self._all_submitted.pop(key, None)
        result = self._execute(seqno, request)
        self.executed_requests += 1
        reply = Reply(
            view=self.view,
            timestamp=request.timestamp,
            client=request.client,
            replica=self.index,
            result=result,
        )
        self._last_reply[request.client] = reply
        if self._send_reply is not None:
            self._send_reply(request.client, reply)

    def _emit_checkpoint(self, seqno: int) -> None:
        checkpoint = Checkpoint(
            seqno=seqno, state_digest=self._state_digest(), replica=self.index
        )
        if self.log.add_checkpoint(checkpoint):
            self._stable_advanced()
        self._multicast(checkpoint)

    def _on_checkpoint(self, msg: Checkpoint) -> None:
        if self.log.add_checkpoint(msg):
            self._stable_advanced()

    def _stable_advanced(self) -> None:
        """The stable checkpoint moved: garbage-collect at-most-once
        bookkeeping for requests it covers, then notify the embedder so
        its per-request caches (e.g. the voter reply store) follow."""
        stable = self.log.stable_seqno
        if self._executed_at:
            dead = [
                key for key, seqno in self._executed_at.items()
                if seqno <= stable
            ]
            for key in dead:
                del self._executed_at[key]
                self._executed_keys.discard(key)
                self._proposed.discard(key)
                self._all_submitted.pop(key, None)
                reply = self._last_reply.get(key[0])
                if reply is not None and reply.timestamp == key[1]:
                    del self._last_reply[key[0]]
            METRICS.cache_evictions += len(dead)
        if self._stable_checkpoint_callback is not None:
            self._stable_checkpoint_callback(stable)

    # ------------------------------------------------------------------
    # Liveness: view changes
    # ------------------------------------------------------------------

    def _awaiting_execution(self) -> bool:
        # Entries at or below last_executed were decided in another view
        # (e.g. re-issued after an equivocating or mute primary); the
        # abandoned view's copy will never execute and must not keep the
        # view-change timer armed forever.
        last_executed = self.log.last_executed
        return bool(self._pending) or any(
            not entry.executed and entry.pre_prepare is not None
            and seqno > last_executed
            for (_view, seqno), entry in self.log._entries.items()
        )

    def _ensure_timer(self) -> None:
        if self._awaiting_execution():
            self._set_timer(VIEW_CHANGE_TIMER, self._timeout_us)

    def on_timer(self, tag: str) -> None:
        if tag == VIEW_CHANGE_TIMER:
            self._start_view_change(self.target_view + 1 if self.in_view_change
                                    else self.view + 1)

    def _start_view_change(self, new_view: int) -> None:
        """Vote to abandon the current primary."""
        if new_view <= self.view:
            return
        self.in_view_change = True
        self.target_view = new_view
        # Exponential backoff: if this view change fails too, wait longer.
        self._timeout_us = min(self._timeout_us * 2, 8 * self.config.view_change_timeout_us)
        self._set_timer(VIEW_CHANGE_TIMER, self._timeout_us)
        proofs = []
        for entry in self.log.prepared_proofs_above(self.log.stable_seqno):
            proofs.append(
                PreparedProof(
                    pre_prepare=entry.pre_prepare,
                    prepares=tuple(
                        p for p in entry.prepares.values()
                        if p.digest == entry.pre_prepare.digest
                    ),
                )
            )
        vote = ViewChange(
            new_view=new_view,
            stable_seqno=self.log.stable_seqno,
            checkpoint_proof=self.log.stable_proof,
            prepared=tuple(proofs),
            replica=self.index,
        )
        self._record_view_change(vote)
        self._multicast(vote)
        self._maybe_install_view(new_view)

    def _record_view_change(self, msg: ViewChange) -> None:
        self._view_changes.setdefault(msg.new_view, {})[msg.replica] = msg

    def _on_view_change(self, src_index: int, msg: ViewChange) -> None:
        if msg.replica != src_index or msg.new_view <= self.view:
            return
        if not self._verify_view_change(msg):
            return
        self._record_view_change(msg)
        # Join rule: f+1 distinct replicas voting for views above ours is
        # proof that at least one correct replica timed out; join the
        # smallest such view to avoid being left behind.
        ahead = {
            v: votes for v, votes in self._view_changes.items() if v > self.view
        }
        distinct = {r for votes in ahead.values() for r in votes}
        if len(distinct) >= self.config.weak and not (
            self.in_view_change and self.target_view >= min(ahead)
        ):
            self._start_view_change(min(ahead))
        self._maybe_install_view(msg.new_view)

    def _verify_view_change(self, msg: ViewChange) -> bool:
        """Structural validation of a view-change vote's proofs."""
        if msg.stable_seqno > 0:
            matching = [
                c for c in msg.checkpoint_proof
                if isinstance(c, Checkpoint) and c.seqno == msg.stable_seqno
            ]
            digests = {c.state_digest for c in matching}
            if len(matching) < self.config.quorum or len(digests) != 1:
                return False
        for proof in msg.prepared:
            if not isinstance(proof, PreparedProof) or proof.pre_prepare is None:
                return False
            matching_prepares = {
                p.replica for p in proof.prepares
                if p.digest == proof.pre_prepare.digest
                and p.seqno == proof.pre_prepare.seqno
            }
            if len(matching_prepares) < 2 * self.config.f:
                return False
        return True

    def _maybe_install_view(self, new_view: int) -> None:
        """If we are the new primary and hold 2f+1 votes, issue NEW-VIEW."""
        if self.config.primary_of(new_view) != self.index:
            return
        if new_view <= self.view:
            return
        votes = self._view_changes.get(new_view, {})
        if len(votes) < self.config.quorum:
            return
        selected = tuple(votes.values())
        pre_prepares = self._new_view_pre_prepares(new_view, selected)
        new_view_msg = NewView(
            view=new_view, view_changes=selected, pre_prepares=pre_prepares
        )
        self._multicast(new_view_msg)
        self._enter_view(new_view, pre_prepares, selected)

    def _new_view_pre_prepares(
        self, new_view: int, votes: tuple[ViewChange, ...]
    ) -> tuple:
        """Compute the O set: re-issued pre-prepares for in-flight seqnos."""
        min_s = max(v.stable_seqno for v in votes)
        best: dict[int, PreparedProof] = {}
        for vote in votes:
            for proof in vote.prepared:
                seqno = proof.pre_prepare.seqno
                if seqno <= min_s:
                    continue
                current = best.get(seqno)
                if current is None or proof.pre_prepare.view > current.pre_prepare.view:
                    best[seqno] = proof
        max_s = max(best) if best else min_s
        out = []
        for seqno in range(min_s + 1, max_s + 1):
            proof = best.get(seqno)
            if proof is not None:
                out.append(
                    PrePrepare(
                        view=new_view,
                        seqno=seqno,
                        digest=proof.pre_prepare.digest,
                        requests=proof.pre_prepare.requests,
                    )
                )
            else:
                out.append(
                    PrePrepare(
                        view=new_view, seqno=seqno, digest=NULL_DIGEST, requests=()
                    )
                )
        return tuple(out)

    def _on_new_view(self, src_index: int, msg: NewView) -> None:
        if msg.view <= self.view:
            return
        if src_index != self.config.primary_of(msg.view):
            return
        if len({v.replica for v in msg.view_changes}) < self.config.quorum:
            return
        if not all(self._verify_view_change(v) for v in msg.view_changes):
            return
        expected = self._new_view_pre_prepares(msg.view, msg.view_changes)
        if tuple(p.digest for p in expected) != tuple(
            p.digest for p in msg.pre_prepares
        ):
            return  # new primary mis-computed O; wait for the next view
        self._enter_view(msg.view, msg.pre_prepares, msg.view_changes)
        # Back the new primary as a backup: prepare every re-issued slot.
        for pre_prepare in msg.pre_prepares:
            entry = self.log.entry(msg.view, pre_prepare.seqno)
            prepare = Prepare(
                view=msg.view,
                seqno=pre_prepare.seqno,
                digest=pre_prepare.digest,
                replica=self.index,
            )
            entry.prepares[self.index] = prepare
            self._multicast(prepare)
            self._maybe_commit(msg.view, pre_prepare.seqno)

    def _enter_view(
        self, new_view: int, pre_prepares: tuple, votes: tuple[ViewChange, ...]
    ) -> None:
        self.view = new_view
        self.in_view_change = False
        self.target_view = new_view
        self.view_changes_completed += 1
        METRICS.view_changes += 1
        min_s = max(v.stable_seqno for v in votes)
        if min_s > self.log.stable_seqno:
            # Adopt the proven stable checkpoint (state transfer is modelled
            # as instantaneous; see DESIGN.md section 2).
            self.log.stable_seqno = min_s
            self.log._garbage_collect()
            self._stable_advanced()
        max_seen = min_s
        for pre_prepare in pre_prepares:
            entry = self.log.entry(new_view, pre_prepare.seqno)
            entry.pre_prepare = pre_prepare
            for request in pre_prepare.requests:
                key = request_key(request)
                self._pending.pop(key, None)
                self._proposed.add(key)
            max_seen = max(max_seen, pre_prepare.seqno)
        self.next_seqno = max_seen
        self._view_changes = {
            v: votes_ for v, votes_ in self._view_changes.items() if v > new_view
        }
        # Requests ordered in an abandoned view but never committed must be
        # re-proposable in the new one.
        ordered_now = {
            request_key(r)
            for (v, _s), e in self.log._entries.items()
            if e.pre_prepare is not None and v == new_view
            for r in e.pre_prepare.requests
        }
        for key in list(self._proposed):
            if key not in ordered_now and key not in self._executed_keys:
                self._proposed.discard(key)
                if key in self._all_submitted:
                    self._pending[key] = self._all_submitted[key]
        if self.is_primary:
            self._try_propose()
        self._maybe_execute()
        self._ensure_timer()
        if self._new_view_callback is not None:
            self._new_view_callback(new_view)
