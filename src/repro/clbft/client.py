"""Standalone CLBFT client proxy.

Used when CLBFT serves an unreplicated edge client directly (the paper's
baseline n=1 callers, and the pure-PBFT tests): the client sends its
request to the primary, retransmits by multicast on timeout, and accepts a
result once ``f + 1`` replicas report matching values (a weak certificate
— at least one correct replica vouches).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.clbft.config import GroupConfig
from repro.clbft.messages import ClientRequest, Reply
from repro.crypto.digest import digest_hex

RETRANSMIT_TIMER = "clbft-client-retransmit"


class ClbftClient:
    """Sans-IO client endpoint for one CLBFT group."""

    def __init__(
        self,
        name: str,
        config: GroupConfig,
        send_to: Callable[[int, Any], None],
        set_timer: Callable[[str, int], None],
        cancel_timer: Callable[[str], None],
        on_result: Callable[[int, Any], None],
        retransmit_timeout_us: int = 400_000,
    ) -> None:
        self.name = name
        self.config = config
        self._send_to = send_to
        self._set_timer = set_timer
        self._cancel_timer = cancel_timer
        self._on_result = on_result
        self._timeout_us = retransmit_timeout_us

        self._next_timestamp = 1
        self._view_hint = 0
        # timestamp -> {replica: result-digest}, plus one representative value.
        self._votes: dict[int, dict[int, str]] = {}
        self._values: dict[tuple[int, str], Any] = {}
        self._outstanding: dict[int, ClientRequest] = {}
        self.completed = 0

    def invoke(self, op: Any) -> int:
        """Submit ``op``; returns the timestamp identifying the call."""
        timestamp = self._next_timestamp
        self._next_timestamp += 1
        request = ClientRequest(client=self.name, timestamp=timestamp, op=op)
        self._outstanding[timestamp] = request
        self._send_to(self.config.primary_of(self._view_hint), request)
        self._set_timer(RETRANSMIT_TIMER, self._timeout_us)
        return timestamp

    def on_timer(self, tag: str) -> None:
        if tag != RETRANSMIT_TIMER or not self._outstanding:
            return
        # Retransmit every outstanding request to the whole group; replicas
        # relay to the primary and their timers protect liveness.
        for request in self._outstanding.values():
            for index in range(self.config.n):
                self._send_to(index, request)
        self._set_timer(RETRANSMIT_TIMER, self._timeout_us)

    def on_reply(self, src_index: int, reply: Reply) -> None:
        if reply.client != self.name or reply.replica != src_index:
            return
        timestamp = reply.timestamp
        if timestamp not in self._outstanding:
            return
        # analysis: allow(WIRE002) — unreplicated client's local vote key
        # over an already-decoded reply; no wire blob exists to share
        value_key = digest_hex(("reply", reply.result))
        votes = self._votes.setdefault(timestamp, {})
        votes[src_index] = value_key
        self._values[(timestamp, value_key)] = reply.result
        self._view_hint = max(self._view_hint, reply.view)
        matching = [r for r, v in votes.items() if v == value_key]
        if len(matching) >= self.config.weak:
            del self._outstanding[timestamp]
            self._votes.pop(timestamp, None)
            result = self._values.pop((timestamp, value_key))
            self._values = {
                k: v for k, v in self._values.items() if k[0] != timestamp
            }
            self.completed += 1
            if not self._outstanding:
                self._cancel_timer(RETRANSMIT_TIMER)
            self._on_result(timestamp, result)
