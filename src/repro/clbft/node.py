"""Bindings of CLBFT replicas and clients to the simulation kernel.

These adapters wire a sans-IO :class:`ClbftReplica` (or
:class:`ClbftClient`) to a :class:`SimNodeEnv` and a
:class:`ChannelAdapter`, yielding deployable simulator nodes. They also
double as reference code for embedding CLBFT in any other runtime — the
Perpetual voter does the same wiring with extra behaviour on top.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.clbft.client import ClbftClient
from repro.clbft.config import GroupConfig
from repro.clbft.messages import (
    ClientRequest,
    Reply,
    decode_message,
    encode_message,
)
from repro.clbft.replica import ClbftReplica
from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.crypto.keys import KeyStore
from repro.sim.kernel import ProtocolNode, SimNodeEnv, Simulator
from repro.transport.channel import ChannelAdapter
from repro.transport.connection import SimConnection
from repro.transport.wire import WireEnvelope


def replica_name(group: str, index: int) -> str:
    return f"{group}/r{index}"


def client_name(group: str, name: str) -> str:
    return f"{group}/client/{name}"


class ClbftReplicaNode(ProtocolNode):
    """A CLBFT replica as a simulator node."""

    def __init__(
        self,
        group: str,
        index: int,
        config: GroupConfig,
        keys: KeyStore,
        execute: Callable[[int, ClientRequest], Any],
        execute_cost_us: int = 0,
        cost_model: CryptoCostModel = MAC_COST_MODEL,
    ) -> None:
        self.group = group
        self.index = index
        self.config = config
        self._keys = keys
        self._execute_app = execute
        self._execute_cost_us = execute_cost_us
        self._cost_model = cost_model
        self._env: SimNodeEnv | None = None
        self._channel: ChannelAdapter | None = None
        self.replica: ClbftReplica | None = None

    def attach(self, env: SimNodeEnv) -> None:
        self._env = env
        self._channel = ChannelAdapter(
            me=replica_name(self.group, self.index),
            keys=self._keys,
            connection=SimConnection(env),
            charge=env.charge,
            cost_model=self._cost_model,
            encode=encode_message,
            decode=decode_message,
        )
        self.replica = ClbftReplica(
            config=self.config,
            index=self.index,
            execute=self._execute,
            multicast=self._multicast,
            send_to=self._send_to,
            set_timer=env.set_timer,
            cancel_timer=env.cancel_timer,
            send_reply=self._send_reply,
        )

    # -- effect implementations ------------------------------------------

    def _execute(self, seqno: int, request: ClientRequest) -> Any:
        if self._execute_cost_us:
            self._env.charge(self._execute_cost_us)
        return self._execute_app(seqno, request)

    def _peers(self) -> list[str]:
        return [
            replica_name(self.group, i)
            for i in range(self.config.n)
            if i != self.index
        ]

    def _multicast(self, msg: Any) -> None:
        self._channel.multicast(self._peers(), msg)

    def _send_to(self, index: int, msg: Any) -> None:
        if index == self.index:
            self.replica.on_message(index, msg)
            return
        self._channel.send(replica_name(self.group, index), msg)

    def _send_reply(self, client: str, reply: Reply) -> None:
        self._channel.send(client, reply)

    # -- kernel callbacks ---------------------------------------------------

    def on_message(self, src: Any, msg: Any) -> None:
        if not isinstance(msg, WireEnvelope):
            return
        protocol_msg = self._channel.accept(msg)
        if protocol_msg is None:
            return
        sender = self._channel.sender_of(msg)
        if isinstance(protocol_msg, ClientRequest):
            self.replica.submit(protocol_msg)
            return
        src_index = _index_of(sender)
        if src_index is None:
            return
        self.replica.on_message(src_index, protocol_msg)

    def on_timer(self, tag: Any) -> None:
        self.replica.on_timer(tag)


class ClbftClientNode(ProtocolNode):
    """A standalone CLBFT client as a simulator node."""

    def __init__(
        self,
        group: str,
        name: str,
        config: GroupConfig,
        keys: KeyStore,
        on_result: Callable[[int, Any], None] | None = None,
        cost_model: CryptoCostModel = MAC_COST_MODEL,
    ) -> None:
        self.group = group
        self.name = client_name(group, name)
        self.config = config
        self._keys = keys
        self._on_result_cb = on_result or (lambda ts, result: None)
        self._cost_model = cost_model
        self._env: SimNodeEnv | None = None
        self._channel: ChannelAdapter | None = None
        self.client: ClbftClient | None = None
        self.results: dict[int, Any] = {}

    def attach(self, env: SimNodeEnv) -> None:
        self._env = env
        self._channel = ChannelAdapter(
            me=self.name,
            keys=self._keys,
            connection=SimConnection(env),
            charge=env.charge,
            cost_model=self._cost_model,
            encode=encode_message,
            decode=decode_message,
        )
        self.client = ClbftClient(
            name=self.name,
            config=self.config,
            send_to=self._send_to,
            set_timer=env.set_timer,
            cancel_timer=env.cancel_timer,
            on_result=self._on_result,
        )

    def _send_to(self, index: int, msg: Any) -> None:
        self._channel.send(replica_name(self.group, index), msg)

    def _on_result(self, timestamp: int, result: Any) -> None:
        self.results[timestamp] = result
        self._on_result_cb(timestamp, result)

    def invoke(self, op: Any) -> int:
        return self.client.invoke(op)

    def on_message(self, src: Any, msg: Any) -> None:
        if not isinstance(msg, WireEnvelope):
            return
        protocol_msg = self._channel.accept(msg)
        if protocol_msg is None:
            return
        if isinstance(protocol_msg, Reply):
            src_index = _index_of(self._channel.sender_of(msg))
            if src_index is not None:
                self.client.on_reply(src_index, protocol_msg)

    def on_timer(self, tag: Any) -> None:
        self.client.on_timer(tag)


def _index_of(principal: str) -> int | None:
    """Extract the replica index from ``group/rN`` names."""
    _, _, tail = principal.rpartition("/r")
    if not tail.isdigit():
        return None
    return int(tail)


def build_clbft_group(
    sim: Simulator,
    group: str,
    config: GroupConfig,
    keys: KeyStore,
    execute: Callable[[int, ClientRequest], Any],
    execute_cost_us: int = 0,
    cost_model: CryptoCostModel = MAC_COST_MODEL,
) -> list[ClbftReplicaNode]:
    """Deploy a full CLBFT group on the simulator; returns the nodes."""
    nodes = []
    for index in range(config.n):
        node = ClbftReplicaNode(
            group=group,
            index=index,
            config=config,
            keys=keys,
            execute=execute,
            execute_cost_us=execute_cost_us,
            cost_model=cost_model,
        )
        env = sim.add_node(replica_name(group, index), node)
        node.attach(env)
        nodes.append(node)
    return nodes


def build_clbft_client(
    sim: Simulator,
    group: str,
    name: str,
    config: GroupConfig,
    keys: KeyStore,
    on_result: Callable[[int, Any], None] | None = None,
) -> ClbftClientNode:
    node = ClbftClientNode(
        group=group, name=name, config=config, keys=keys, on_result=on_result
    )
    env = sim.add_node(node.name, node)
    node.attach(env)
    return node
