"""The CLBFT message log: certificates, checkpoints, and watermarks.

One :class:`SeqnoEntry` per in-flight sequence number accumulates the
pre-prepare and the prepare/commit votes until the prepared and committed
predicates hold. The :class:`MessageLog` tracks the stable checkpoint and
enforces the watermark window, discarding entries at garbage collection
exactly as Castro & Liskov describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clbft.config import GroupConfig
from repro.clbft.messages import Checkpoint, Commit, PrePrepare, Prepare


@dataclass
class SeqnoEntry:
    """Agreement state for one (view, seqno) slot."""

    pre_prepare: PrePrepare | None = None
    prepares: dict[int, Prepare] = field(default_factory=dict)
    commits: dict[int, Commit] = field(default_factory=dict)
    executed: bool = False

    def matching_prepares(self, digest: bytes) -> int:
        return sum(1 for p in self.prepares.values() if p.digest == digest)

    def matching_commits(self, digest: bytes) -> int:
        return sum(1 for c in self.commits.values() if c.digest == digest)

    def prepared(self, config: GroupConfig) -> bool:
        """Pre-prepare plus 2f matching prepares from distinct backups."""
        if self.pre_prepare is None:
            return False
        return self.matching_prepares(self.pre_prepare.digest) >= 2 * config.f

    def committed_local(self, config: GroupConfig) -> bool:
        """Prepared plus 2f+1 matching commits (including our own)."""
        if not self.prepared(config):
            return False
        return self.matching_commits(self.pre_prepare.digest) >= config.quorum


class MessageLog:
    """Per-replica log with watermarks and checkpoint garbage collection."""

    def __init__(self, config: GroupConfig) -> None:
        self._config = config
        self._entries: dict[tuple[int, int], SeqnoEntry] = {}
        self.stable_seqno = 0
        self.stable_proof: tuple = ()
        self._checkpoints: dict[int, dict[int, Checkpoint]] = {}
        self.last_executed = 0

    # -- watermarks ---------------------------------------------------------

    @property
    def low_watermark(self) -> int:
        return self.stable_seqno

    @property
    def high_watermark(self) -> int:
        return self.stable_seqno + self._config.log_window

    def in_window(self, seqno: int) -> bool:
        return self.low_watermark < seqno <= self.high_watermark

    # -- entries -------------------------------------------------------------

    def entry(self, view: int, seqno: int) -> SeqnoEntry:
        key = (view, seqno)
        if key not in self._entries:
            self._entries[key] = SeqnoEntry()
        return self._entries[key]

    def entry_if_exists(self, view: int, seqno: int) -> SeqnoEntry | None:
        return self._entries.get((view, seqno))

    def executed(self, seqno: int) -> bool:
        return seqno <= self.last_executed or any(
            e.executed for (v, s), e in self._entries.items() if s == seqno
        )

    def prepared_proofs_above(self, seqno: int) -> list[SeqnoEntry]:
        """Entries with a prepared certificate for seqnos above ``seqno``.

        Used to build view-change messages; when several views hold
        entries for one seqno, the highest-view prepared one wins.
        """
        best: dict[int, tuple[int, SeqnoEntry]] = {}
        for (view, s), entry in self._entries.items():
            if s <= seqno or not entry.prepared(self._config):
                continue
            current = best.get(s)
            if current is None or view > current[0]:
                best[s] = (view, entry)
        return [entry for _, (_, entry) in sorted(best.items())]

    # -- checkpoints ---------------------------------------------------------

    def add_checkpoint(self, msg: Checkpoint) -> bool:
        """Record a checkpoint vote; returns True if it became stable."""
        if msg.seqno <= self.stable_seqno:
            return False
        votes = self._checkpoints.setdefault(msg.seqno, {})
        votes[msg.replica] = msg
        matching = [
            v for v in votes.values() if v.state_digest == msg.state_digest
        ]
        if len(matching) >= self._config.quorum:
            self._make_stable(msg.seqno, tuple(matching))
            return True
        return False

    def _make_stable(self, seqno: int, proof: tuple) -> None:
        self.stable_seqno = seqno
        self.stable_proof = proof
        self._garbage_collect()

    def _garbage_collect(self) -> None:
        """Discard entries and checkpoint votes at or below the stable point."""
        self._entries = {
            key: entry
            for key, entry in self._entries.items()
            if key[1] > self.stable_seqno
        }
        self._checkpoints = {
            seqno: votes
            for seqno, votes in self._checkpoints.items()
            if seqno > self.stable_seqno
        }

    @property
    def live_entry_count(self) -> int:
        return len(self._entries)
