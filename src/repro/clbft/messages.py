"""CLBFT protocol messages and their wire codec.

Messages are frozen dataclasses; the codec converts them to and from the
canonical-JSON-safe structures of :mod:`repro.common.encoding` so they can
be MAC'd and shipped by the ChannelAdapter. View-change and new-view
messages embed other messages (checkpoint and prepared-certificate
proofs), which the codec handles recursively.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar

from repro.common.errors import ProtocolError

_REGISTRY: dict[str, type] = {}


def register(cls):
    """Class decorator adding a message type to the codec registry."""
    _REGISTRY[cls.KIND] = cls
    return cls


def message_to_wire(msg: Any) -> Any:
    """Recursively convert a message (or container of them) to plain data."""
    if isinstance(msg, tuple):
        return {"__seq__": "tuple", "v": [message_to_wire(m) for m in msg]}
    if isinstance(msg, list):
        return {"__seq__": "list", "v": [message_to_wire(m) for m in msg]}
    if isinstance(msg, dict):
        return {"__seq__": "dict", "v": {k: message_to_wire(v) for k, v in msg.items()}}
    kind = getattr(msg, "KIND", None)
    if kind is None:
        return msg
    body = {}
    for f in fields(msg):
        body[f.name] = message_to_wire(getattr(msg, f.name))
    return {"__msg__": kind, "v": body}


def message_from_wire(data: Any) -> Any:
    """Inverse of :func:`message_to_wire`."""
    if isinstance(data, dict):
        if "__msg__" in data:
            kind = data["__msg__"]
            cls = _REGISTRY.get(kind)
            if cls is None:
                raise ProtocolError(f"unknown message kind: {kind!r}")
            body = {k: message_from_wire(v) for k, v in data["v"].items()}
            return cls(**body)
        if "__seq__" in data:
            shape = data["__seq__"]
            if shape == "tuple":
                return tuple(message_from_wire(v) for v in data["v"])
            if shape == "list":
                return [message_from_wire(v) for v in data["v"]]
            if shape == "dict":
                return {k: message_from_wire(v) for k, v in data["v"].items()}
            raise ProtocolError(f"unknown sequence shape: {shape!r}")
        return {k: message_from_wire(v) for k, v in data.items()}
    if isinstance(data, list):
        return [message_from_wire(v) for v in data]
    return data


@register
@dataclass(frozen=True)
class ClientRequest:
    """An operation submitted for agreement.

    ``client`` identifies the submitting principal; ``timestamp`` is the
    client's monotonically increasing issue number (used for exactly-once
    execution and reply caching); ``op`` is the opaque operation payload.
    In Perpetual, voter groups submit agreement items through this same
    message with the item key as the client identity.
    """

    KIND: ClassVar[str] = "request"
    client: str
    timestamp: int
    op: Any


@register
@dataclass(frozen=True)
class PrePrepare:
    """Primary's ordering proposal for a batch of requests."""

    KIND: ClassVar[str] = "pre-prepare"
    view: int
    seqno: int
    digest: bytes
    requests: tuple

    def payload_tuple(self) -> tuple:
        return (self.view, self.seqno, self.digest)


@register
@dataclass(frozen=True)
class Prepare:
    """Backup's agreement to the primary's proposal."""

    KIND: ClassVar[str] = "prepare"
    view: int
    seqno: int
    digest: bytes
    replica: int


@register
@dataclass(frozen=True)
class Commit:
    """Second-phase vote: the sender holds a prepared certificate."""

    KIND: ClassVar[str] = "commit"
    view: int
    seqno: int
    digest: bytes
    replica: int


@register
@dataclass(frozen=True)
class Reply:
    """Execution result returned to the submitting client."""

    KIND: ClassVar[str] = "reply"
    view: int
    timestamp: int
    client: str
    replica: int
    result: Any


@register
@dataclass(frozen=True)
class Checkpoint:
    """Proof-of-state message multicast every K sequence numbers."""

    KIND: ClassVar[str] = "checkpoint"
    seqno: int
    state_digest: bytes
    replica: int


@register
@dataclass(frozen=True)
class PreparedProof:
    """Evidence that a request prepared at the sender: the pre-prepare
    plus 2f matching prepares (authenticators checked on receipt of the
    containing view-change)."""

    KIND: ClassVar[str] = "prepared-proof"
    pre_prepare: PrePrepare
    prepares: tuple


@register
@dataclass(frozen=True)
class ViewChange:
    """Vote to move to ``new_view``.

    ``stable_seqno`` / ``checkpoint_proof`` establish the sender's stable
    checkpoint; ``prepared`` carries a :class:`PreparedProof` per in-flight
    sequence number above it.
    """

    KIND: ClassVar[str] = "view-change"
    new_view: int
    stable_seqno: int
    checkpoint_proof: tuple
    prepared: tuple
    replica: int


@register
@dataclass(frozen=True)
class NewView:
    """New primary's view installation: 2f+1 view-changes plus the
    pre-prepares it re-issues for in-flight sequence numbers."""

    KIND: ClassVar[str] = "new-view"
    view: int
    view_changes: tuple
    pre_prepares: tuple
