"""CLBFT protocol messages and their wire codec.

Messages are frozen dataclasses; the codec converts them to and from the
canonical-JSON-safe structures of :mod:`repro.common.encoding` so they can
be MAC'd and shipped by the ChannelAdapter. View-change and new-view
messages embed other messages (checkpoint and prepared-certificate
proofs), which the codec handles recursively.
"""

from __future__ import annotations

from base64 import b64encode as _b64encode
from dataclasses import dataclass, fields
from json import dumps as _json_dumps, loads as _json_loads
from json.encoder import encode_basestring_ascii as _escape_ascii
from typing import Any, ClassVar

from repro.common.encoding import _LEAF_ENCODERS, _TAG, _from_jsonable
from repro.common.errors import ProtocolError
from repro.common.metrics import METRICS

_REGISTRY: dict[str, type] = {}

# Per-class field-name tuples, resolved once (dataclasses.fields walks the
# MRO on every call; the hot path asks per message).
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def register(cls):
    """Class decorator adding a message type to the codec registry."""
    _REGISTRY[cls.KIND] = cls
    _FIELD_NAMES[cls] = tuple(f.name for f in fields(cls))
    return cls


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def message_to_wire(msg: Any) -> Any:
    """Recursively convert a message (or container of them) to plain data."""
    if isinstance(msg, tuple):
        return {"__seq__": "tuple", "v": [message_to_wire(m) for m in msg]}
    if isinstance(msg, list):
        return {"__seq__": "list", "v": [message_to_wire(m) for m in msg]}
    if isinstance(msg, dict):
        return {"__seq__": "dict", "v": {k: message_to_wire(v) for k, v in msg.items()}}
    kind = getattr(msg, "KIND", None)
    if kind is None:
        return msg
    body = {}
    for name in _field_names(type(msg)):
        body[name] = message_to_wire(getattr(msg, name))
    return {"__msg__": kind, "v": body}


def message_from_wire(data: Any) -> Any:
    """Inverse of :func:`message_to_wire`."""
    if isinstance(data, dict):
        if "__msg__" in data:
            kind = data["__msg__"]
            cls = _REGISTRY.get(kind)
            if cls is None:
                raise ProtocolError(f"unknown message kind: {kind!r}")
            body = {k: message_from_wire(v) for k, v in data["v"].items()}
            return cls(**body)
        if "__seq__" in data:
            shape = data["__seq__"]
            if shape == "tuple":
                return tuple(message_from_wire(v) for v in data["v"])
            if shape == "list":
                return [message_from_wire(v) for v in data["v"]]
            if shape == "dict":
                return {k: message_from_wire(v) for k, v in data["v"].items()}
            raise ProtocolError(f"unknown sequence shape: {shape!r}")
        return {k: message_from_wire(v) for k, v in data.items()}
    if isinstance(data, list):
        return [message_from_wire(v) for v in data]
    return data


# ---------------------------------------------------------------------------
# Fused wire codec (the hot path)
# ---------------------------------------------------------------------------
#
# ``canonical_encode(message_to_wire(msg))`` walks the message tree twice
# (message layer, then canonical layer) and its inverse walks twice again.
# :func:`encode_message` / :func:`decode_message` produce byte-identical
# wire data in a single walk each, which matters because every protocol
# message crosses this boundary at least once per receiver. The two-pass
# functions above remain the reference implementation; a property test
# asserts the fused codec matches them byte for byte.


def encode_message(msg: Any) -> bytes:
    """Single-walk equivalent of ``canonical_encode(message_to_wire(msg))``.

    Emits the canonical JSON text directly while walking (sorted keys,
    compact separators, ASCII escapes via the C ``encode_basestring_ascii``
    json uses internally), so one pass replaces the seed's message walk,
    canonical walk, and ``json.dumps`` walk.
    """
    METRICS.encode_calls += 1
    out: list[str] = []
    _fuse_encode(msg, out)
    return "".join(out).encode("ascii")


def decode_message(data: bytes) -> Any:
    """Single-walk equivalent of ``message_from_wire(decode_payload(data))``."""
    try:
        return _fuse_from_jsonable(_json_loads(data.decode("ascii")))
    except ProtocolError:
        raise
    except (ValueError, KeyError, IndexError, TypeError, RecursionError) as exc:
        raise ProtocolError(f"malformed canonical payload: {exc}") from exc


# Sorted field names per message class: json's sort_keys orders the
# emitted body, so the direct emitter must write fields in sorted order.
_SORTED_FIELDS: dict[type, tuple[str, ...]] = {}


def _sorted_fields(cls: type) -> tuple[str, ...]:
    names = _SORTED_FIELDS.get(cls)
    if names is None:
        names = tuple(sorted(_field_names(cls)))
        _SORTED_FIELDS[cls] = names
    return names


# Pre-escaped emit plans, one per message class: the canonical header
# ('{"__msg__":"<kind>","v":{') plus a '[,]"<name>":' prefix per sorted
# field. Field names and kinds are constants, so escaping them per
# message on the hot path was pure waste — a plan turns each message
# into one append per field.
_EMIT_PLANS: dict[type, tuple[str, tuple[tuple[str, str], ...]]] = {}

#: Canonical prefix of an encoded ``bytes`` leaf. The base64 alphabet
#: never needs JSON escaping, so the digest fast path can emit the
#: encoded text between pre-built quotes, skipping ``_escape_ascii``.
_BYTES_OPEN = '{"__repro__":"bytes","v":"'


def _emit_plan(cls: type, msg_kind: str) -> tuple[str, tuple[tuple[str, str], ...]]:
    plan = _EMIT_PLANS.get(cls)
    if plan is None:
        header = '{"__msg__":' + _escape_ascii(msg_kind) + ',"v":{'
        prefixes = tuple(
            (("" if i == 0 else ",") + _escape_ascii(name) + ":", name)
            for i, name in enumerate(_sorted_fields(cls))
        )
        plan = (header, prefixes)
        _EMIT_PLANS[cls] = plan
    return plan


def _plain_json(value: Any, out: list[str]) -> None:
    """Emit an already-canonical leaf-tag value (scalar or scalar list)."""
    kind = type(value)
    if kind is str:
        out.append(_escape_ascii(value))
    elif kind is bool:
        out.append("true" if value else "false")
    elif kind is int:
        out.append(repr(value))
    elif kind is list:
        out.append("[")
        for i, item in enumerate(value):
            if i:
                out.append(",")
            _plain_json(item, out)
        out.append("]")
    else:
        out.append(_json_dumps(value, sort_keys=True, separators=(",", ":")))


def _fuse_encode(value: Any, out: list[str]) -> None:
    """Recursive single-pass emitter of the composed wire encoding.

    The scalar and ``bytes`` cases are additionally inlined at every
    container recursion site below: protocol messages are shallow trees
    whose leaves are overwhelmingly ints, strings, and digests, so
    dispatching them without a Python call frame is the difference the
    fig7/fig8 gate measures (see ``docs/benchmarks.md``).
    """
    kind = type(value)
    append = out.append
    if kind is str:
        append(_escape_ascii(value))
        return
    if kind is int:
        append(repr(value))
        return
    if kind is bytes:
        append(_BYTES_OPEN)
        append(_b64encode(value).decode("ascii"))
        append('"}')
        return
    if kind is bool:
        append("true" if value else "false")
        return
    if value is None:
        append("null")
        return
    leaf = _LEAF_ENCODERS.get(kind)
    if leaf is not None:
        tagged = leaf(value)
        append('{"__repro__":')
        append(_escape_ascii(tagged[_TAG]))
        append(',"v":')
        _plain_json(tagged["v"], out)
        append("}")
        return
    if kind is dict:
        append('{"__seq__":"dict","v":{')
        first = True
        for k in sorted(value):
            if type(k) is not str and not isinstance(k, str):
                raise ProtocolError(f"non-string dict key not encodable: {k!r}")
            if first:
                first = False
            else:
                append(",")
            append(_escape_ascii(k))
            append(":")
            _fuse_encode(value[k], out)
        append("}}")
        return
    if kind is list or kind is tuple:
        append(
            '{"__seq__":"list","v":[' if kind is list
            else '{"__seq__":"tuple","v":['
        )
        first = True
        for item in value:
            if first:
                first = False
            else:
                append(",")
            item_kind = type(item)
            if item_kind is str:
                append(_escape_ascii(item))
            elif item_kind is int:
                append(repr(item))
            elif item_kind is bytes:
                append(_BYTES_OPEN)
                append(_b64encode(item).decode("ascii"))
                append('"}')
            else:
                _fuse_encode(item, out)
        append("]}")
        return
    if kind is float:
        raise ProtocolError(f"floats are not canonically encodable: {value!r}")
    msg_kind = getattr(value, "KIND", None)
    if msg_kind is not None:
        header, field_plan = _emit_plan(kind, msg_kind)
        append(header)
        for prefix, name in field_plan:
            append(prefix)
            field = getattr(value, name)
            field_kind = type(field)
            if field_kind is int:
                append(repr(field))
            elif field_kind is str:
                append(_escape_ascii(field))
            elif field_kind is bytes:
                append(_BYTES_OPEN)
                append(_b64encode(field).decode("ascii"))
                append('"}')
            else:
                _fuse_encode(field, out)
        append("}}")
        return
    # Subclasses of supported types (IntEnum, NamedTuple, dict/list
    # subclasses, id subclasses) keep the seed's isinstance semantics:
    # normalise to the base form and re-dispatch; anything else is not
    # encodable.
    if isinstance(value, bool):
        out.append("true" if value else "false")
    elif isinstance(value, float):
        raise ProtocolError(f"floats are not canonically encodable: {value!r}")
    elif isinstance(value, int):
        out.append(repr(int(value)))
    elif isinstance(value, str):
        out.append(_escape_ascii(str(value)))
    else:
        for leaf_type, leaf_encoder in _LEAF_ENCODERS.items():
            if isinstance(value, leaf_type):
                tagged = leaf_encoder(value)
                out.append('{"__repro__":')
                out.append(_escape_ascii(tagged[_TAG]))
                out.append(',"v":')
                _plain_json(tagged["v"], out)
                out.append("}")
                return
        if isinstance(value, tuple):
            _fuse_encode(tuple(value), out)
        elif isinstance(value, list):
            _fuse_encode(list(value), out)
        elif isinstance(value, dict):
            _fuse_encode(dict(value), out)
        else:
            raise ProtocolError(
                f"type {kind.__name__} is not canonically encodable"
            )


def _fuse_from_jsonable(obj: Any) -> Any:
    """Recursive walk composing the canonical and message decoders."""
    kind = type(obj)
    if kind is dict:
        if _TAG in obj:
            return _from_jsonable(obj)
        msg_kind = obj.get("__msg__")
        if msg_kind is not None:
            cls = _REGISTRY.get(msg_kind)
            if cls is None:
                raise ProtocolError(f"unknown message kind: {msg_kind!r}")
            return cls(
                **{k: _fuse_from_jsonable(v) for k, v in obj["v"].items()}
            )
        shape = obj.get("__seq__")
        if shape is not None:
            value = obj["v"]
            if shape == "dict":
                return {k: _fuse_from_jsonable(v) for k, v in value.items()}
            if shape == "list":
                return [_fuse_from_jsonable(v) for v in value]
            if shape == "tuple":
                return tuple(_fuse_from_jsonable(v) for v in value)
            raise ProtocolError(f"unknown sequence shape: {shape!r}")
        return {k: _fuse_from_jsonable(v) for k, v in obj.items()}
    if kind is list:
        return [_fuse_from_jsonable(v) for v in obj]
    return obj


@register
@dataclass(frozen=True)
class ClientRequest:
    """An operation submitted for agreement.

    ``client`` identifies the submitting principal; ``timestamp`` is the
    client's monotonically increasing issue number (used for exactly-once
    execution and reply caching); ``op`` is the opaque operation payload.
    In Perpetual, voter groups submit agreement items through this same
    message with the item key as the client identity.
    """

    KIND: ClassVar[str] = "request"
    client: str
    timestamp: int
    op: Any


@register
@dataclass(frozen=True)
class PrePrepare:
    """Primary's ordering proposal for a batch of requests."""

    KIND: ClassVar[str] = "pre-prepare"
    view: int
    seqno: int
    digest: bytes
    requests: tuple

    def payload_tuple(self) -> tuple:
        return (self.view, self.seqno, self.digest)


@register
@dataclass(frozen=True)
class Prepare:
    """Backup's agreement to the primary's proposal."""

    KIND: ClassVar[str] = "prepare"
    view: int
    seqno: int
    digest: bytes
    replica: int


@register
@dataclass(frozen=True)
class Commit:
    """Second-phase vote: the sender holds a prepared certificate."""

    KIND: ClassVar[str] = "commit"
    view: int
    seqno: int
    digest: bytes
    replica: int


@register
@dataclass(frozen=True)
class Reply:
    """Execution result returned to the submitting client."""

    KIND: ClassVar[str] = "reply"
    view: int
    timestamp: int
    client: str
    replica: int
    result: Any


@register
@dataclass(frozen=True)
class Checkpoint:
    """Proof-of-state message multicast every K sequence numbers."""

    KIND: ClassVar[str] = "checkpoint"
    seqno: int
    state_digest: bytes
    replica: int


@register
@dataclass(frozen=True)
class PreparedProof:
    """Evidence that a request prepared at the sender: the pre-prepare
    plus 2f matching prepares (authenticators checked on receipt of the
    containing view-change)."""

    KIND: ClassVar[str] = "prepared-proof"
    pre_prepare: PrePrepare
    prepares: tuple


@register
@dataclass(frozen=True)
class ViewChange:
    """Vote to move to ``new_view``.

    ``stable_seqno`` / ``checkpoint_proof`` establish the sender's stable
    checkpoint; ``prepared`` carries a :class:`PreparedProof` per in-flight
    sequence number above it.
    """

    KIND: ClassVar[str] = "view-change"
    new_view: int
    stable_seqno: int
    checkpoint_proof: tuple
    prepared: tuple
    replica: int


@register
@dataclass(frozen=True)
class NewView:
    """New primary's view installation: 2f+1 view-changes plus the
    pre-prepares it re-issues for in-flight sequence numbers."""

    KIND: ClassVar[str] = "new-view"
    view: int
    view_changes: tuple
    pre_prepares: tuple
