"""Length-prefixed framing for canonical-codec envelopes over sockets.

A TCP stream has no message boundaries, so every frame the process
substrate ships over a socket — the same ``b"net\\0"`` protocol frames
and control tuples it ships over pipes — is wrapped in a 4-byte
big-endian length prefix. The payload bytes themselves stay opaque at
this layer: :class:`~repro.transport.wire.WireEnvelope` /
:class:`~repro.transport.wire.BatchEnvelope` encoding happens above, in
the canonical codec, exactly as on the pipe transport.

Two pieces:

- :class:`FrameDecoder` — incremental, allocation-light reassembly: feed
  it whatever byte chunks the socket yields (split, coalesced, or
  byte-by-byte) and it emits complete payloads in order. Oversized
  length prefixes fail fast (a corrupt or hostile peer cannot make the
  parent buffer gigabytes), and EOF mid-frame is distinguishable from a
  clean boundary so truncation is an error, not a silent drop.
- :class:`SocketConnection` — the framing applied to one TCP socket,
  exposing the :class:`multiprocessing.connection.Connection` surface
  the process substrate already speaks (``send_bytes`` / ``recv_bytes``
  / ``poll`` / ``fileno`` / ``close``), so the pipe and tcp transports
  share every line of router, egress, and worker-loop code.
"""

from __future__ import annotations

import selectors
import socket
import struct
import threading
import time
from collections import deque

from repro.common.errors import TransportError

#: Refuse frames larger than this (4-byte prefix allows 4 GiB; no sane
#: envelope — even a batch — approaches it, so treat it as corruption).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_PREFIX = struct.Struct(">I")
_RECV_CHUNK = 1 << 16


class FrameError(TransportError):
    """A length prefix announced an impossible frame, or EOF split one."""


def encode_frame(payload: bytes) -> bytes:
    """``payload`` wrapped in its 4-byte big-endian length prefix."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte transport limit"
        )
    return _PREFIX.pack(len(payload)) + payload


class FrameDecoder:
    """Reassembles length-prefixed frames from an arbitrary chunking."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Buffer ``data``; return every frame it completed, in order."""
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < _PREFIX.size:
                return frames
            (length,) = _PREFIX.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"length prefix announces {length} bytes, over the "
                    f"{MAX_FRAME_BYTES}-byte transport limit"
                )
            end = _PREFIX.size + length
            if len(self._buffer) < end:
                return frames
            frames.append(bytes(self._buffer[_PREFIX.size:end]))
            del self._buffer[:end]

    @property
    def pending(self) -> int:
        """Bytes buffered toward an incomplete frame (0 at a boundary)."""
        return len(self._buffer)

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary.

        Call at EOF: leftover bytes mean the peer died mid-frame (or the
        stream was truncated), which must surface as an error rather
        than a silently shorter conversation.
        """
        if self._buffer:
            raise FrameError(
                f"stream truncated: EOF with {len(self._buffer)} bytes of "
                "an incomplete frame buffered"
            )


class SocketConnection:
    """One framed TCP socket with the duplex-pipe Connection surface.

    Reads are single-threaded by contract (the substrate's router thread
    or the worker's event loop owns the receiving side), while writes
    take a lock so an egress writer and a shutdown broadcast cannot
    interleave partial frames.
    """

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._decoder = FrameDecoder()
        self._frames: deque[bytes] = deque()
        self._send_lock = threading.Lock()

    def fileno(self) -> int:
        return self._sock.fileno()

    def send_bytes(self, payload: bytes) -> None:
        data = encode_frame(payload)
        with self._send_lock:
            self._sock.sendall(data)

    def recv_bytes(self) -> bytes:
        """The next frame, blocking until one is complete.

        Raises ``EOFError`` on a clean peer close at a frame boundary
        and :class:`FrameError` when the close splits a frame.
        """
        while not self._frames:
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except socket.timeout as exc:
                raise TimeoutError("socket read timed out") from exc
            if not chunk:
                self._decoder.finish()
                raise EOFError("peer closed the connection")
            self._frames.extend(self._decoder.feed(chunk))
        return self._frames.popleft()

    def poll(self, timeout: float | None = 0.0) -> bool:
        """True when a complete frame is ready (buffered or readable).

        Mirrors ``Connection.poll``: a decoder-buffered frame counts
        immediately; otherwise wait up to ``timeout`` for socket
        readability and opportunistically drain what arrived. May return
        ``False`` with bytes buffered toward an incomplete frame — those
        keep their socket readable state for the next poll/select.
        """
        if self._frames:
            return True
        with selectors.DefaultSelector() as selector:
            selector.register(self._sock, selectors.EVENT_READ)
            deadline = None
            remaining = timeout
            while True:
                ready = selector.select(remaining)
                if not ready:
                    return bool(self._frames)
                try:
                    chunk = self._sock.recv(_RECV_CHUNK)
                except (BlockingIOError, InterruptedError):
                    chunk = b""
                if chunk:
                    self._frames.extend(self._decoder.feed(chunk))
                else:
                    # EOF: report readable so the next recv_bytes raises
                    # EOFError (or FrameError on a mid-frame truncation)
                    # where the caller's error handling lives.
                    return True
                if self._frames:
                    return True
                # A partial frame arrived; keep waiting out the timeout.
                if timeout is not None:
                    if deadline is None:
                        deadline = time.monotonic() + timeout
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
