"""The ChannelAdapter: authentication + cost accounting above Connections.

One ChannelAdapter serves one protocol principal (a voter, a driver, or an
unreplicated client). It:

- signs every outgoing protocol message with a MAC authenticator covering
  all addressees (one signing pass per multicast, as in CLBFT);
- verifies the authenticator on every incoming envelope, dropping
  messages that fail (Byzantine senders cannot forge MACs — the paper's
  standing cryptographic assumption);
- charges the configured crypto cost model to the local CPU, which is how
  the MAC-vs-signature scalability argument becomes measurable in the
  simulator;
- optionally *batches*: with ``batching`` enabled, outgoing messages are
  buffered until :meth:`flush` and everything bound for the same
  destination leaves as one :class:`~repro.transport.wire.BatchEnvelope`
  under a single MAC vector (see ``docs/architecture.md``, "Batching").

Batching semantics (the sanctioned batch path the WIRE rules recognise):

- a message whose signing ``audience`` exceeds its ``recipients`` (the
  stage-1 proof path) is signed for the full audience immediately and
  rides as an embedded ``("e", envelope)`` item, still individually
  verifiable by principals outside the pair;
- a message alone in every destination's batch flushes as a classic
  shared :class:`WireEnvelope` — batching never pessimises singletons;
- everything else becomes a plain ``("p", payload)`` item covered only
  by the batch MAC: one authenticator computation and one verification
  per *batch* instead of per message.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.encoding import IdentityMemo, decode_payload, wire_blob
from repro.common.metrics import METRICS
from repro.crypto.auth import Authenticator, AuthenticatorFactory
from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.crypto.keys import KeyStore
from repro.transport.connection import Connection
from repro.transport.wire import BatchEnvelope, WireEnvelope, batch_frame

#: Timer tag nodes use for window-mode flushing (``batching=<window_us>``):
#: armed via ``on_first_pending`` when the first message buffers, handled
#: in the node's ``on_timer`` by calling :meth:`ChannelAdapter.flush`.
CHANNEL_FLUSH_TAG = "channel-flush"

#: Synthesized envelopes for plain batch items, keyed on the payload bytes
#: object: every destination's batch of one multicast references the same
#: bytes object (in-process substrates), so co-addressed receivers share
#: one synthesized envelope — and through it the decode-once memo.
_BATCH_ITEM_ENVELOPES = IdentityMemo()


class ChannelAdapter:
    """Authenticated messaging endpoint for one principal."""

    #: Simulated CPU charged per envelope handled, beyond crypto: framing,
    #: socket work, and SSL record processing on the paper's testbed class.
    DEFAULT_WIRE_CPU_US = 40

    def __init__(
        self,
        me: Any,
        keys: KeyStore,
        connection: Connection,
        charge: Callable[[int], None] | None = None,
        cost_model: CryptoCostModel = MAC_COST_MODEL,
        wire_cpu_us: int = DEFAULT_WIRE_CPU_US,
        encode: Callable[[Any], bytes] | None = None,
        decode: Callable[[bytes], Any] | None = None,
        batching: str | int = "off",
        on_first_pending: Callable[[], None] | None = None,
    ) -> None:
        self._me = me
        self._auth = AuthenticatorFactory(keys, me)
        self._connection = connection
        self._charge = charge or (lambda us: None)
        self._cost = cost_model
        self._wire_cpu_us = wire_cpu_us
        # The cost model is frozen: fold the two per-envelope receive
        # charges (wire handling + MAC verification) into one constant so
        # the hot accept path makes a single charge call.
        self._accept_charge_us = wire_cpu_us + cost_model.verification_cost_us()
        # Injected wire codec: protocol nodes pass the fused message codec
        # so their dataclass messages cross the channel in one walk; the
        # default canonical codec serves plain payloads.
        self._encode = encode
        self._decode = decode or decode_payload
        #: ``off`` | ``tick`` | positive int (flush window in µs). The
        #: adapter only buffers; *when* flush happens is the substrate's
        #: business (end of kernel tick / handler / window timer).
        self.batching = batching
        self._buffering = batching != "off"
        self._on_first_pending = on_first_pending
        self._pending: list[list] = []
        self.sent_count = 0
        self.received_count = 0
        self.rejected_count = 0

    @property
    def principal(self) -> Any:
        return self._me

    @property
    def auth_factory(self) -> AuthenticatorFactory:
        """The adapter's authenticator factory, shared so protocol code
        above the channel signs/verifies without rebuilding factories."""
        return self._auth

    # -- sending ----------------------------------------------------------

    def send(self, dst: Any, message: Any) -> None:
        """Authenticate and transmit ``message`` to a single destination."""
        self.multicast([dst], message)

    def multicast(self, dsts: list[Any], message: Any) -> None:
        """Sign once for all destinations, then transmit to each.

        The authenticator carries one MAC entry per destination; each
        receiver verifies only its own entry. Signing cost is charged
        once, with the per-receiver increment from the cost model.
        """
        self.multicast_to(dsts, dsts, message)

    def multicast_to(
        self, audience: list[Any], recipients: list[Any], message: Any
    ) -> None:
        """Authenticate for ``audience`` but transmit only to ``recipients``.

        The Perpetual stage-1 fast path signs a request for every target
        voter while transmitting only to the primary, so the primary can
        embed the envelope as proof every voter can verify. ``message``
        may be a pre-encoded :class:`~repro.common.encoding.WireBlob`;
        plain messages are encoded exactly once through the blob cache.

        With batching enabled the message is buffered until
        :meth:`flush`; proof-path messages (audience beyond recipients)
        are signed now so the embedded envelope stays full-audience.
        """
        if not recipients:
            return
        blob = wire_blob(message, self._encode)
        METRICS.multicasts += 1
        if not self._buffering:
            self._charge(self._cost.authenticator_cost_us(len(audience)))
            auth = self._auth.sign(blob, list(audience))
            envelope = WireEnvelope(payload=blob.data, auth=auth)
            transmit = self._connection.transmit
            for dst in recipients:
                self._charge(self._wire_cpu_us)
                transmit(dst, envelope)
                METRICS.envelopes_sent += 1
            self.sent_count += len(recipients)
            return
        if audience is recipients or list(audience) == list(recipients):
            # Signing deferred to flush: covered by the batch MAC unless
            # the message turns out to travel alone.
            self._pending.append(["p", blob, list(recipients)])
        else:
            self._charge(self._cost.authenticator_cost_us(len(audience)))
            auth = self._auth.sign(blob, list(audience))
            envelope = WireEnvelope(payload=blob.data, auth=auth)
            self._pending.append(["e", envelope, list(recipients)])
        if len(self._pending) == 1 and self._on_first_pending is not None:
            self._on_first_pending()

    def flush(self) -> None:
        """Transmit everything buffered since the last flush.

        Messages grouped per destination: a destination with one pending
        message receives a classic :class:`WireEnvelope`; a destination
        with several receives one :class:`BatchEnvelope` signed with a
        single MAC entry over the batch digest.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        per_dst: dict[Any, list[list]] = {}
        for op in pending:
            for dst in op[2]:
                per_dst.setdefault(dst, []).append(op)
        # Resolve deferred signing for "p" ops that travel alone somewhere.
        for op in pending:
            kind, blob, recipients = op
            if kind != "p":
                continue
            solo = sum(1 for d in recipients if len(per_dst[d]) == 1)
            if solo == 0:
                continue  # batched everywhere: batch MAC covers it
            self._charge(self._cost.authenticator_cost_us(len(recipients)))
            auth = self._auth.sign(blob, recipients)
            # Alone everywhere -> exactly the unbatched wire form; mixed
            # -> the same full-audience envelope rides embedded where the
            # destination's batch has company.
            op[0] = "solo" if solo == len(recipients) else "e"
            op[1] = WireEnvelope(payload=blob.data, auth=auth)
        transmit = self._connection.transmit
        for dst, ops in per_dst.items():
            if len(ops) == 1:
                self._charge(self._wire_cpu_us)
                transmit(dst, ops[0][1])
            else:
                items = tuple(
                    ("p", op[1].data) if op[0] == "p" else ("e", op[1])
                    for op in ops
                )
                self._charge(self._cost.authenticator_cost_us(1))
                auth = self._auth.sign(batch_frame(items), [dst])
                self._charge(self._wire_cpu_us)
                transmit(dst, BatchEnvelope(items=items, auth=auth))
                METRICS.batches_sent += 1
                METRICS.batch_messages += len(items)
            METRICS.envelopes_sent += 1
        self.sent_count += sum(len(op[2]) for op in pending)

    @property
    def pending_count(self) -> int:
        """Messages buffered and awaiting :meth:`flush`."""
        return len(self._pending)

    # -- receiving ----------------------------------------------------------

    def accept(self, envelope: WireEnvelope) -> Any | None:
        """Verify and decode an incoming envelope.

        Returns the decoded protocol message, or ``None`` if verification
        failed (the envelope is silently dropped, as a correct CLBFT
        replica does with unauthenticated input).

        Decoding is memoized on the envelope: a multicast delivers one
        envelope object to every co-resident receiver, so later receivers
        reuse the first decode. The decoded graph is therefore shared —
        receivers must treat messages as immutable, which replica
        determinism already demands.
        """
        if getattr(envelope, "_preverified", False):
            # A plain batch item: the batch MAC already authenticated it
            # (in open_batch, charged once per batch).
            self.received_count += 1
        else:
            self._charge(self._accept_charge_us)
            if not self._auth.verify_prehashed(
                envelope.payload_digest, envelope.auth
            ):
                self.rejected_count += 1
                return None
            self.received_count += 1
        # Memo keyed by decoder: receivers with a different codec (mixed
        # deployments) re-decode rather than alias the wrong object form.
        memo = getattr(envelope, "_decoded", None)
        if memo is not None and memo[0] is self._decode:
            return memo[1]
        decoded = self._decode(envelope.payload)
        object.__setattr__(envelope, "_decoded", (self._decode, decoded))
        return decoded

    def open_batch(self, batch: BatchEnvelope) -> list[WireEnvelope]:
        """Verify a batch MAC once and unpack the inner envelopes.

        Returns the inner envelopes in send order, ready for
        :meth:`accept` — embedded items verify their own full-audience
        authenticator there; plain items are marked pre-verified (the
        single batch verification just vouched for them) so accept skips
        the per-message MAC. An empty list means the batch MAC failed and
        every inner message was dropped.
        """
        self._charge(self._accept_charge_us)
        if not self._auth.verify_prehashed(batch.batch_digest, batch.auth):
            self.rejected_count += len(batch.items)
            return []
        sender = batch.auth.sender
        out = []
        for kind, value in batch.items:
            if kind == "e":
                out.append(value)
                continue

            def synthesize(payload: bytes, _sender: str = sender) -> WireEnvelope:
                env = WireEnvelope(
                    payload=payload,
                    auth=Authenticator(sender=_sender, entries=()),
                )
                object.__setattr__(env, "_preverified", True)
                return env

            out.append(_BATCH_ITEM_ENVELOPES.get(value, synthesize))
        return out

    def sender_of(self, envelope: WireEnvelope | BatchEnvelope) -> str:
        """The claimed sender (authenticated iff :meth:`accept` passed)."""
        return envelope.auth.sender
