"""The ChannelAdapter: authentication + cost accounting above Connections.

One ChannelAdapter serves one protocol principal (a voter, a driver, or an
unreplicated client). It:

- signs every outgoing protocol message with a MAC authenticator covering
  all addressees (one signing pass per multicast, as in CLBFT);
- verifies the authenticator on every incoming envelope, dropping
  messages that fail (Byzantine senders cannot forge MACs — the paper's
  standing cryptographic assumption);
- charges the configured crypto cost model to the local CPU, which is how
  the MAC-vs-signature scalability argument becomes measurable in the
  simulator.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.encoding import canonical_encode, decode_payload
from repro.crypto.auth import AuthenticatorFactory
from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.crypto.keys import KeyStore
from repro.transport.connection import Connection
from repro.transport.wire import WireEnvelope


class ChannelAdapter:
    """Authenticated messaging endpoint for one principal."""

    #: Simulated CPU charged per envelope handled, beyond crypto: framing,
    #: socket work, and SSL record processing on the paper's testbed class.
    DEFAULT_WIRE_CPU_US = 40

    def __init__(
        self,
        me: Any,
        keys: KeyStore,
        connection: Connection,
        charge: Callable[[int], None] | None = None,
        cost_model: CryptoCostModel = MAC_COST_MODEL,
        wire_cpu_us: int = DEFAULT_WIRE_CPU_US,
    ) -> None:
        self._me = me
        self._auth = AuthenticatorFactory(keys, me)
        self._connection = connection
        self._charge = charge or (lambda us: None)
        self._cost = cost_model
        self._wire_cpu_us = wire_cpu_us
        self.sent_count = 0
        self.received_count = 0
        self.rejected_count = 0

    @property
    def principal(self) -> Any:
        return self._me

    # -- sending ----------------------------------------------------------

    def send(self, dst: Any, message: Any) -> None:
        """Authenticate and transmit ``message`` to a single destination."""
        self.multicast([dst], message)

    def multicast(self, dsts: list[Any], message: Any) -> None:
        """Sign once for all destinations, then transmit to each.

        The authenticator carries one MAC entry per destination; each
        receiver verifies only its own entry. Signing cost is charged
        once, with the per-receiver increment from the cost model.
        """
        if not dsts:
            return
        payload = canonical_encode(message)
        self._charge(self._cost.authenticator_cost_us(len(dsts)))
        auth = self._auth.sign(payload, list(dsts))
        envelope = WireEnvelope(payload=payload, auth=auth)
        for dst in dsts:
            self._charge(self._wire_cpu_us)
            self._connection.transmit(dst, envelope)
            self.sent_count += 1

    # -- receiving ----------------------------------------------------------

    def accept(self, envelope: WireEnvelope) -> Any | None:
        """Verify and decode an incoming envelope.

        Returns the decoded protocol message, or ``None`` if verification
        failed (the envelope is silently dropped, as a correct CLBFT
        replica does with unauthenticated input).
        """
        self._charge(self._wire_cpu_us)
        self._charge(self._cost.verification_cost_us())
        if not self._auth.verify(envelope.payload, envelope.auth):
            self.rejected_count += 1
            return None
        self.received_count += 1
        return decode_payload(envelope.payload)

    def sender_of(self, envelope: WireEnvelope) -> str:
        """The claimed sender (authenticated iff :meth:`accept` passed)."""
        return envelope.auth.sender
