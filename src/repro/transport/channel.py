"""The ChannelAdapter: authentication + cost accounting above Connections.

One ChannelAdapter serves one protocol principal (a voter, a driver, or an
unreplicated client). It:

- signs every outgoing protocol message with a MAC authenticator covering
  all addressees (one signing pass per multicast, as in CLBFT);
- verifies the authenticator on every incoming envelope, dropping
  messages that fail (Byzantine senders cannot forge MACs — the paper's
  standing cryptographic assumption);
- charges the configured crypto cost model to the local CPU, which is how
  the MAC-vs-signature scalability argument becomes measurable in the
  simulator.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.encoding import decode_payload, wire_blob
from repro.common.metrics import METRICS
from repro.crypto.auth import AuthenticatorFactory
from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.crypto.keys import KeyStore
from repro.transport.connection import Connection
from repro.transport.wire import WireEnvelope


class ChannelAdapter:
    """Authenticated messaging endpoint for one principal."""

    #: Simulated CPU charged per envelope handled, beyond crypto: framing,
    #: socket work, and SSL record processing on the paper's testbed class.
    DEFAULT_WIRE_CPU_US = 40

    def __init__(
        self,
        me: Any,
        keys: KeyStore,
        connection: Connection,
        charge: Callable[[int], None] | None = None,
        cost_model: CryptoCostModel = MAC_COST_MODEL,
        wire_cpu_us: int = DEFAULT_WIRE_CPU_US,
        encode: Callable[[Any], bytes] | None = None,
        decode: Callable[[bytes], Any] | None = None,
    ) -> None:
        self._me = me
        self._auth = AuthenticatorFactory(keys, me)
        self._connection = connection
        self._charge = charge or (lambda us: None)
        self._cost = cost_model
        self._wire_cpu_us = wire_cpu_us
        # Injected wire codec: protocol nodes pass the fused message codec
        # so their dataclass messages cross the channel in one walk; the
        # default canonical codec serves plain payloads.
        self._encode = encode
        self._decode = decode or decode_payload
        self.sent_count = 0
        self.received_count = 0
        self.rejected_count = 0

    @property
    def principal(self) -> Any:
        return self._me

    @property
    def auth_factory(self) -> AuthenticatorFactory:
        """The adapter's authenticator factory, shared so protocol code
        above the channel signs/verifies without rebuilding factories."""
        return self._auth

    # -- sending ----------------------------------------------------------

    def send(self, dst: Any, message: Any) -> None:
        """Authenticate and transmit ``message`` to a single destination."""
        self.multicast([dst], message)

    def multicast(self, dsts: list[Any], message: Any) -> None:
        """Sign once for all destinations, then transmit to each.

        The authenticator carries one MAC entry per destination; each
        receiver verifies only its own entry. Signing cost is charged
        once, with the per-receiver increment from the cost model.
        """
        self.multicast_to(dsts, dsts, message)

    def multicast_to(
        self, audience: list[Any], recipients: list[Any], message: Any
    ) -> None:
        """Authenticate for ``audience`` but transmit only to ``recipients``.

        The Perpetual stage-1 fast path signs a request for every target
        voter while transmitting only to the primary, so the primary can
        embed the envelope as proof every voter can verify. ``message``
        may be a pre-encoded :class:`~repro.common.encoding.WireBlob`;
        plain messages are encoded exactly once through the blob cache.
        """
        if not recipients:
            return
        blob = wire_blob(message, self._encode)
        METRICS.multicasts += 1
        self._charge(self._cost.authenticator_cost_us(len(audience)))
        auth = self._auth.sign(blob, list(audience))
        envelope = WireEnvelope(payload=blob.data, auth=auth)
        transmit = self._connection.transmit
        for dst in recipients:
            self._charge(self._wire_cpu_us)
            transmit(dst, envelope)
            METRICS.envelopes_sent += 1
        self.sent_count += len(recipients)

    # -- receiving ----------------------------------------------------------

    def accept(self, envelope: WireEnvelope) -> Any | None:
        """Verify and decode an incoming envelope.

        Returns the decoded protocol message, or ``None`` if verification
        failed (the envelope is silently dropped, as a correct CLBFT
        replica does with unauthenticated input).

        Decoding is memoized on the envelope: a multicast delivers one
        envelope object to every co-resident receiver, so later receivers
        reuse the first decode. The decoded graph is therefore shared —
        receivers must treat messages as immutable, which replica
        determinism already demands.
        """
        self._charge(self._wire_cpu_us)
        self._charge(self._cost.verification_cost_us())
        if not self._auth.verify_prehashed(envelope.payload_digest, envelope.auth):
            self.rejected_count += 1
            return None
        self.received_count += 1
        # Memo keyed by decoder: receivers with a different codec (mixed
        # deployments) re-decode rather than alias the wrong object form.
        memo = getattr(envelope, "_decoded", None)
        if memo is not None and memo[0] is self._decode:
            return memo[1]
        decoded = self._decode(envelope.payload)
        object.__setattr__(envelope, "_decoded", (self._decode, decoded))
        return decoded

    def sender_of(self, envelope: WireEnvelope) -> str:
        """The claimed sender (authenticated iff :meth:`accept` passed)."""
        return envelope.auth.sender
