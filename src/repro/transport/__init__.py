"""Transport: the ChannelAdapter and Connection abstraction.

The Perpetual prototype (paper section 2.1.2) abstracts "transport,
authentication, and encryption details" behind a ChannelAdapter whose
transport-specific parts live in pluggable Connection modules (the Java
prototype ships an SSL/TCP Connection). This package reproduces that
layering:

- :class:`repro.transport.channel.ChannelAdapter` — signs outgoing
  messages with MAC authenticators, verifies incoming ones, charges the
  crypto cost model, and hands verified protocol messages up;
- :class:`repro.transport.connection.Connection` — the wire; the simulated
  connection rides the discrete-event kernel, and the in-process
  connection backs the threaded runtime;
- :mod:`repro.transport.wire` — framing of protocol messages into
  authenticated wire envelopes.

Contract: this is the only layer that constructs envelopes (rule
WIRE003) — encode once through the blob cache, digest once per message,
sign once per multicast, and, with batching enabled, one MAC vector per
(sender, receiver) batch via :class:`repro.transport.wire.BatchEnvelope`
and ``ChannelAdapter.flush``/``open_batch``. Full description:
``docs/architecture.md`` ("The channel layer and batching").
"""

from repro.transport.channel import ChannelAdapter
from repro.transport.connection import Connection, SimConnection, DirectConnection
from repro.transport.wire import WireEnvelope

__all__ = [
    "ChannelAdapter",
    "Connection",
    "DirectConnection",
    "SimConnection",
    "WireEnvelope",
]
