"""Wire framing: authenticated envelopes around protocol messages.

A :class:`WireEnvelope` is what a Connection actually carries: the
canonical payload bytes plus the sender's authenticator over them. The
envelope is deliberately dumb — all interpretation happens above (protocol
codecs) and below (connections) this layer, mirroring the paper's
separation between the Perpetual core and the ChannelAdapter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.auth import Authenticator
from repro.crypto.digest import digest


def auth_to_wire(auth: Authenticator) -> list:
    """Flatten an authenticator into canonically encodable structures."""
    return [auth.sender, [[name, tag] for name, tag in auth.entries]]


def auth_from_wire(data: list) -> Authenticator:
    sender, entries = data
    return Authenticator(
        sender=sender, entries=tuple((name, tag) for name, tag in entries)
    )


@dataclass(frozen=True)
class WireEnvelope:
    """Payload bytes plus the sender's MAC authenticator over them."""

    payload: bytes
    auth: Authenticator

    @property
    def size_bytes(self) -> int:
        """Approximate wire size, used by the network latency model.

        Computed once per envelope: a multicast envelope is transmitted
        to every receiver and the size model queries it per transmit.
        """
        cached = getattr(self, "_size_bytes", None)
        if cached is None:
            mac_bytes = sum(len(tag) + 24 for _, tag in self.auth.entries)
            cached = len(self.payload) + mac_bytes + 32
            object.__setattr__(self, "_size_bytes", cached)
        return cached

    @property
    def payload_digest(self) -> bytes:
        """SHA-256 of the payload, computed once per envelope.

        Every co-resident receiver of a multicast verifies the same
        envelope object, so the verification pre-hash is shared instead
        of recomputed per receiver.
        """
        cached = getattr(self, "_payload_digest", None)
        if cached is None:
            cached = digest(self.payload)
            object.__setattr__(self, "_payload_digest", cached)
        return cached


#: Wire marker distinguishing a batch from a plain envelope: a plain
#: envelope's first wire element is the payload *bytes*, so a string tag
#: can never collide with it.
BATCH_WIRE_TAG = "__batch__"


def batch_frame(items: tuple) -> bytes:
    """Deterministic byte framing of a batch's items, the MAC input.

    Length-prefixed so no item boundary is ambiguous: the batch MAC
    covers every inner payload (and, for embedded envelopes, the inner
    authenticator too), so a faulty relay cannot re-segment, reorder, or
    splice items without the single batch verification failing.
    """
    parts: list[bytes] = []
    append = parts.append
    for kind, value in items:
        if kind == "p":
            append(b"p" + len(value).to_bytes(4, "big"))
            append(value)
        else:
            append(b"e" + len(value.payload).to_bytes(4, "big"))
            append(value.payload)
            sender = value.auth.sender.encode()
            append(len(sender).to_bytes(2, "big") + sender)
            for name, tag in value.auth.entries:
                encoded = name.encode()
                append(len(encoded).to_bytes(2, "big") + encoded)
                append(len(tag).to_bytes(2, "big") + tag)
    return b"".join(parts)


@dataclass(frozen=True)
class BatchEnvelope:
    """Several protocol messages under one MAC vector.

    The channel layer aggregates every message bound for the same
    (sender, receiver) pair within one flush interval into a batch.
    ``items`` holds ``("p", payload_bytes)`` entries — plain payloads
    covered *only* by the batch MAC — and ``("e", WireEnvelope)``
    entries, embedded envelopes that keep their own full-audience
    authenticator (used when the inner message must remain relayable or
    provable to principals outside this pair, e.g. stage-1 request
    proofs). One :class:`~repro.crypto.auth.Authenticator` entry over
    :attr:`batch_digest` authenticates the whole batch.
    """

    items: tuple
    auth: Authenticator

    @property
    def size_bytes(self) -> int:
        """Approximate wire size: inner payloads + one MAC entry."""
        cached = getattr(self, "_size_bytes", None)
        if cached is None:
            body = 0
            for kind, value in self.items:
                if kind == "p":
                    body += len(value) + 8
                else:
                    body += value.size_bytes + 8
            mac_bytes = sum(len(tag) + 24 for _, tag in self.auth.entries)
            cached = body + mac_bytes + 32
            object.__setattr__(self, "_size_bytes", cached)
        return cached

    @property
    def batch_digest(self) -> bytes:
        """SHA-256 over the framed items, computed once per batch."""
        cached = getattr(self, "_batch_digest", None)
        if cached is None:
            cached = digest(batch_frame(self.items))
            object.__setattr__(self, "_batch_digest", cached)
        return cached


def envelope_to_wire(envelope: WireEnvelope | BatchEnvelope) -> list:
    """Flatten an envelope so it can ride *inside* another message.

    Perpetual embeds the ``fc + 1`` matching caller request envelopes in
    the agreement payload as proof that the calling service really issued
    the request; every target voter re-verifies its own MAC entry in each
    embedded envelope. Batch envelopes flatten recursively (the process
    substrate frames them through this same function).
    """
    if type(envelope) is BatchEnvelope:
        return [
            BATCH_WIRE_TAG,
            auth_to_wire(envelope.auth),
            [
                [kind, value if kind == "p" else envelope_to_wire(value)]
                for kind, value in envelope.items
            ],
        ]
    return [envelope.payload, auth_to_wire(envelope.auth)]


def envelope_from_wire(data: list) -> WireEnvelope | BatchEnvelope:
    if data[0] == BATCH_WIRE_TAG:
        _, auth, items = data
        return BatchEnvelope(
            items=tuple(
                (kind, value if kind == "p" else envelope_from_wire(value))
                for kind, value in items
            ),
            auth=auth_from_wire(auth),
        )
    payload, auth = data
    return WireEnvelope(payload=payload, auth=auth_from_wire(auth))
