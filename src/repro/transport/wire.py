"""Wire framing: authenticated envelopes around protocol messages.

A :class:`WireEnvelope` is what a Connection actually carries: the
canonical payload bytes plus the sender's authenticator over them. The
envelope is deliberately dumb — all interpretation happens above (protocol
codecs) and below (connections) this layer, mirroring the paper's
separation between the Perpetual core and the ChannelAdapter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.auth import Authenticator
from repro.crypto.digest import digest


def auth_to_wire(auth: Authenticator) -> list:
    """Flatten an authenticator into canonically encodable structures."""
    return [auth.sender, [[name, tag] for name, tag in auth.entries]]


def auth_from_wire(data: list) -> Authenticator:
    sender, entries = data
    return Authenticator(
        sender=sender, entries=tuple((name, tag) for name, tag in entries)
    )


@dataclass(frozen=True)
class WireEnvelope:
    """Payload bytes plus the sender's MAC authenticator over them."""

    payload: bytes
    auth: Authenticator

    @property
    def size_bytes(self) -> int:
        """Approximate wire size, used by the network latency model.

        Computed once per envelope: a multicast envelope is transmitted
        to every receiver and the size model queries it per transmit.
        """
        cached = getattr(self, "_size_bytes", None)
        if cached is None:
            mac_bytes = sum(len(tag) + 24 for _, tag in self.auth.entries)
            cached = len(self.payload) + mac_bytes + 32
            object.__setattr__(self, "_size_bytes", cached)
        return cached

    @property
    def payload_digest(self) -> bytes:
        """SHA-256 of the payload, computed once per envelope.

        Every co-resident receiver of a multicast verifies the same
        envelope object, so the verification pre-hash is shared instead
        of recomputed per receiver.
        """
        cached = getattr(self, "_payload_digest", None)
        if cached is None:
            cached = digest(self.payload)
            object.__setattr__(self, "_payload_digest", cached)
        return cached


def envelope_to_wire(envelope: WireEnvelope) -> list:
    """Flatten an envelope so it can ride *inside* another message.

    Perpetual embeds the ``fc + 1`` matching caller request envelopes in
    the agreement payload as proof that the calling service really issued
    the request; every target voter re-verifies its own MAC entry in each
    embedded envelope.
    """
    return [envelope.payload, auth_to_wire(envelope.auth)]


def envelope_from_wire(data: list) -> WireEnvelope:
    payload, auth = data
    return WireEnvelope(payload=payload, auth=auth_from_wire(auth))
