"""Connection modules: the pluggable bottom of the ChannelAdapter.

``Connection`` is the transport-independence seam the paper calls out
(section 3, "Transport independence"): the ChannelAdapter never names a
protocol; a Connection moves envelopes between principals.

Two implementations ship:

- :class:`SimConnection` rides the discrete-event kernel (the default for
  all experiments);
- :class:`DirectConnection` delivers synchronously in-process via a
  router callable (used by the threaded runtime, where the router pushes
  onto per-node thread-safe queues).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.transport.wire import WireEnvelope


class Connection:
    """Moves wire envelopes from this principal to others."""

    def transmit(self, dst: Any, envelope: WireEnvelope) -> None:
        raise NotImplementedError


class SimConnection(Connection):
    """Connection over the simulated network.

    Wraps a :class:`repro.sim.kernel.SimNodeEnv`; delivery latency and
    drops come from the kernel's installed network model.
    """

    def __init__(self, env) -> None:
        self._env = env

    def transmit(self, dst: Any, envelope: WireEnvelope) -> None:
        self._env.send(dst, envelope, size_bytes=envelope.size_bytes)


class DirectConnection(Connection):
    """Synchronous in-process delivery through a router callable.

    ``router(src, dst, envelope)`` is supplied by the hosting runtime; the
    threaded runtime implements it with thread-safe queues.
    """

    def __init__(self, src: Any, router: Callable[[Any, Any, WireEnvelope], None]) -> None:
        self._src = src
        self._router = router

    def transmit(self, dst: Any, envelope: WireEnvelope) -> None:
        self._router(self._src, dst, envelope)
