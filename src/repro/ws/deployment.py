"""Compatibility shim: deployment now lives in :mod:`repro.scenario`.

The single deployment entry point of the reproduction is the declarative
scenario API — build a :class:`repro.scenario.ScenarioSpec` (directly,
with :class:`repro.scenario.ScenarioBuilder`, or from a preset in
:mod:`repro.scenario.presets`) and hand it to a runtime::

    from repro.scenario import ScenarioBuilder, run_scenario

    spec = (
        ScenarioBuilder("demo")
        .service("target", n=4, app="echo")
        .service("caller", n=4, app="sync_caller",
                 target="target", total_calls=10)
        .build()
    )
    metrics = run_scenario(spec, runtime="sim")   # or threaded / process

The imperative :class:`Deployment` facade (declare services, add apps,
run the simulator) moved to :mod:`repro.scenario.sim`, where
``SimRuntime`` drives it; it is re-exported here unchanged for existing
tests and bespoke simulator setups.
"""

from repro.scenario.sim import Deployment, ServiceDeployment

__all__ = ["Deployment", "ServiceDeployment"]
