"""Deployment of Perpetual-WS services onto the simulation substrate.

A :class:`Deployment` owns the simulator, the key store, the topology
(``replicas.xml`` model), and the registry; services are added with either
a WS-level application (generator over the :mod:`repro.ws.api`
operations) or a raw executor-level application. ``deployment.run()``
then drives the whole multi-tier system deterministically.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import ConfigurationError
from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.crypto.keys import KeyStore
from repro.perpetual.executor import AppFactory
from repro.perpetual.group import ServiceGroup, Topology, deploy_service
from repro.sim.kernel import Simulator, US_PER_S
from repro.sim.network import LanModel, NetworkModel
from repro.soap.engine import SoapEngine
from repro.ws.adapter import WsAdapter, WsAppFactory
from repro.ws.descriptor import parse_replicas_xml
from repro.ws.registry import ServiceRegistry


class ServiceDeployment:
    """One deployed service: the replica group plus per-replica adapters."""

    def __init__(
        self,
        name: str,
        group: ServiceGroup,
        adapters: list[WsAdapter] | None = None,
    ) -> None:
        self.name = name
        self.group = group
        self.adapters = adapters or []

    @property
    def n(self) -> int:
        return self.group.n

    def completed_calls(self) -> int:
        return self.group.completed_calls()

    def aborted_calls(self) -> int:
        return self.group.aborted_calls()

    def requests_served(self) -> int:
        if self.adapters:
            return self.adapters[0].requests_served
        return self.group.delivered_requests()

    def engines(self) -> list[SoapEngine]:
        return [adapter.engine for adapter in self.adapters]


class Deployment:
    """A whole multi-tier Perpetual-WS system on one simulator."""

    def __init__(
        self,
        name: str = "deployment",
        network: NetworkModel | None = None,
        sim: Simulator | None = None,
    ) -> None:
        self.name = name
        self.sim = sim or Simulator()
        self.sim.set_network(network or LanModel())
        self.keys = KeyStore.for_deployment(name)
        self.topology = Topology()
        self.registry = ServiceRegistry()
        self.services: dict[str, ServiceDeployment] = {}
        self._declared: set[str] = set()

    # ------------------------------------------------------------------
    # Topology declaration
    # ------------------------------------------------------------------

    def declare(self, name: str, n: int) -> None:
        """Declare a service's replication degree before deploying it.

        All services must be declared before any is deployed, because
        every node needs the complete topology for quorum arithmetic
        (exactly the role of ``replicas.xml``).
        """
        spec = self.topology.add(name, n)
        self.registry.register(spec)
        self._declared.add(name)

    def declare_from_xml(self, replicas_xml: str | bytes) -> None:
        """Declare every service listed in a replicas.xml document."""
        for spec in parse_replicas_xml(replicas_xml):
            self.topology.specs[str(spec.service)] = spec
            self.registry.register(spec)
            self._declared.add(str(spec.service))

    # ------------------------------------------------------------------
    # Service deployment
    # ------------------------------------------------------------------

    def add_service(
        self,
        name: str,
        app: WsAppFactory,
        n: int | None = None,
        cost_model: CryptoCostModel = MAC_COST_MODEL,
        clbft_overrides: dict | None = None,
        engine_factory: Callable[[], SoapEngine] | None = None,
        hosts: list[str] | None = None,
    ) -> ServiceDeployment:
        """Deploy a WS-level application as a replicated service."""
        self._ensure_declared(name, n)
        adapters: list[WsAdapter] = []

        def app_factory_for_replica() -> Any:
            engine = engine_factory() if engine_factory else SoapEngine()
            adapter = WsAdapter(
                service=name,
                app_factory=app,
                engine=engine,
                resolve=self.registry.service_name,
            )
            adapters.append(adapter)
            return adapter.executor_app()()

        group = deploy_service(
            sim=self.sim,
            topology=self.topology,
            keys=self.keys,
            service=name,
            app_factory=app_factory_for_replica,
            cost_model=cost_model,
            clbft_overrides=clbft_overrides,
            hosts=hosts,
        )
        deployed = ServiceDeployment(name=name, group=group, adapters=adapters)
        self.services[name] = deployed
        return deployed

    def add_raw_service(
        self,
        name: str,
        app_factory: AppFactory,
        n: int | None = None,
        cost_model: CryptoCostModel = MAC_COST_MODEL,
        clbft_overrides: dict | None = None,
    ) -> ServiceDeployment:
        """Deploy an executor-level application (no SOAP layer)."""
        self._ensure_declared(name, n)
        group = deploy_service(
            sim=self.sim,
            topology=self.topology,
            keys=self.keys,
            service=name,
            app_factory=app_factory,
            cost_model=cost_model,
            clbft_overrides=clbft_overrides,
        )
        deployed = ServiceDeployment(name=name, group=group)
        self.services[name] = deployed
        return deployed

    def _ensure_declared(self, name: str, n: int | None) -> None:
        if name not in self._declared:
            if n is None:
                raise ConfigurationError(
                    f"service {name!r} was never declared and no replication "
                    "degree was given"
                )
            self.declare(name, n)
        elif n is not None and self.topology.spec(name).n != n:
            raise ConfigurationError(
                f"service {name!r} declared with n={self.topology.spec(name).n} "
                f"but deployed with n={n}"
            )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, seconds: float | None = None, max_events: int | None = None) -> int:
        """Run the simulation (bounded by time and/or event count)."""
        until_us = None
        if seconds is not None:
            until_us = self.sim.now_us + int(seconds * US_PER_S)
        return self.sim.run(until_us=until_us, max_events=max_events)

    @property
    def now_us(self) -> int:
        return self.sim.now_us
