"""Parsing of ``replicas.xml`` deployment descriptors (paper section 5.2).

The deployment process "mirrors that of Axis2 except we require an
additional replicas.xml file" holding the static endpoint mappings. A
descriptor looks like::

    <replicas>
      <service name="pge" replicas="4">
        <endpoint>host1:8443</endpoint>
        ...
      </service>
      <service name="bank" replicas="4"/>
    </replicas>

Endpoints are optional (simulated deployments synthesise them).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.common.config import ReplicationConfig, ServiceSpec
from repro.common.errors import ConfigurationError
from repro.common.ids import ServiceId


def parse_replicas_xml(text: str | bytes) -> list[ServiceSpec]:
    """Parse a replicas.xml document into service specs."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConfigurationError(f"malformed replicas.xml: {exc}") from exc
    if root.tag != "replicas":
        raise ConfigurationError(
            f"replicas.xml root must be <replicas>, got <{root.tag}>"
        )
    specs = []
    for service_el in root.findall("service"):
        name = service_el.get("name")
        if not name:
            raise ConfigurationError("<service> element missing name attribute")
        replicas_attr = service_el.get("replicas", "1")
        if not replicas_attr.isdigit() or int(replicas_attr) < 1:
            raise ConfigurationError(
                f"service {name!r}: bad replicas count {replicas_attr!r}"
            )
        n = int(replicas_attr)
        endpoints = tuple(
            (el.text or "").strip() for el in service_el.findall("endpoint")
        )
        if endpoints and len(endpoints) != n:
            raise ConfigurationError(
                f"service {name!r}: {len(endpoints)} endpoints for {n} replicas"
            )
        specs.append(
            ServiceSpec(
                service=ServiceId(name),
                replication=ReplicationConfig.for_group_size(n),
                endpoints=endpoints,
            )
        )
    return specs


def render_replicas_xml(specs: list[ServiceSpec]) -> str:
    """Inverse of :func:`parse_replicas_xml` (round-trip tested)."""
    root = ET.Element("replicas")
    for spec in specs:
        service_el = ET.SubElement(root, "service")
        service_el.set("name", str(spec.service))
        service_el.set("replicas", str(spec.n))
        for endpoint in spec.endpoints:
            ET.SubElement(service_el, "endpoint").text = endpoint
    return ET.tostring(root, encoding="unicode")
