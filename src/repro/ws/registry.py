"""A static service registry: the UDDI stand-in.

The paper notes UDDI cannot serve replicated endpoint references and that
Perpetual-WS therefore uses static ``replicas.xml`` mappings (section
5.2); dynamic discovery is listed as future work (section 7). This module
provides the registry both modes share: endpoint references of the form
``perpetual://service`` resolve to the service name and replica-group
spec; unknown references raise, mirroring a failed UDDI lookup.
"""

from __future__ import annotations

from repro.common.config import ServiceSpec
from repro.common.errors import ConfigurationError

SCHEME = "perpetual://"


class ServiceRegistry:
    """Maps endpoint references to replica-group information."""

    def __init__(self) -> None:
        self._by_name: dict[str, ServiceSpec] = {}

    def register(self, spec: ServiceSpec) -> None:
        self._by_name[str(spec.service)] = spec

    def deregister(self, name: str) -> None:
        self._by_name.pop(name, None)

    def resolve(self, endpoint: str) -> ServiceSpec:
        """Resolve ``perpetual://name`` (or a bare name) to its spec."""
        name = self.service_name(endpoint)
        spec = self._by_name.get(name)
        if spec is None:
            raise ConfigurationError(f"unknown endpoint reference: {endpoint!r}")
        return spec

    @staticmethod
    def service_name(endpoint: str) -> str:
        if endpoint.startswith(SCHEME):
            endpoint = endpoint[len(SCHEME):]
        return endpoint.split("/", 1)[0]

    def known_services(self) -> list[str]:
        return sorted(self._by_name)
