"""Perpetual-WS: the middleware's public programming surface.

This package is what a downstream web-service developer imports:

- :mod:`repro.ws.api`        -- ``MessageContext``, the ``MessageHandler``
  operations (paper Figure 3: send / receiveReply / sendReceive /
  receiveRequest / sendReply) and the deterministic ``Utils``;
- :mod:`repro.ws.adapter`    -- bridges WS-level applications onto the
  Perpetual executor model (WS-Addressing correlation, SOAP marshaling
  through the engine pipes);
- :mod:`repro.ws.deployment` -- deploys replicated services from a
  topology (the ``replicas.xml`` model of section 5.2);
- :mod:`repro.ws.descriptor` -- parses an actual ``replicas.xml`` document;
- :mod:`repro.ws.registry`   -- a static UDDI stand-in for endpoint
  resolution (the paper's future-work discovery direction).
"""

from repro.ws.api import MessageContext, MessageHandler, Options, Utils
from repro.ws.deployment import Deployment, ServiceDeployment
from repro.ws.registry import ServiceRegistry

__all__ = [
    "Deployment",
    "MessageContext",
    "MessageHandler",
    "Options",
    "ServiceDeployment",
    "ServiceRegistry",
    "Utils",
]
