"""Perpetual-WS: the middleware's public programming surface.

This package is what a downstream web-service developer imports:

- :mod:`repro.ws.api`        -- ``MessageContext``, the ``MessageHandler``
  operations (paper Figure 3: send / receiveReply / sendReceive /
  receiveRequest / sendReply) and the deterministic ``Utils``;
- :mod:`repro.ws.adapter`    -- bridges WS-level applications onto the
  Perpetual executor model (WS-Addressing correlation, SOAP marshaling
  through the engine pipes);
- :mod:`repro.ws.deployment` -- compatibility shim; deployment moved to
  the declarative scenario API in :mod:`repro.scenario` (one spec, any
  substrate: sim / threaded / process);
- :mod:`repro.ws.descriptor` -- parses an actual ``replicas.xml`` document;
- :mod:`repro.ws.registry`   -- a static UDDI stand-in for endpoint
  resolution (the paper's future-work discovery direction).

Contract: handlers are deterministic (``Utils`` supplies agreed time
and randomness) and all messaging rides the channel layer — the
encode-once/digest-once path of ``docs/architecture.md``.
"""

from repro.ws.api import MessageContext, MessageHandler, Options, Utils
from repro.ws.registry import ServiceRegistry


def __getattr__(name: str):
    # Deployment lives in repro.scenario.sim (which imports repro.ws
    # submodules); resolving it lazily keeps this package importable
    # from inside that module without a cycle.
    if name in ("Deployment", "ServiceDeployment"):
        from repro.ws import deployment

        return getattr(deployment, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Deployment",
    "MessageContext",
    "MessageHandler",
    "Options",
    "ServiceDeployment",
    "ServiceRegistry",
    "Utils",
]
