"""The Perpetual-WS API (paper Figure 3).

Applications are deterministic generator coroutines. Where the Java API
blocks, the Python application *yields* the corresponding operation and is
resumed with its outcome::

    def store_app():
        while True:
            request = yield MessageHandler.receive_request()
            auth = yield MessageHandler.send_receive(
                MessageContext(to="pge", body={"amount": 100}))
            reply = MessageContext(body={"ok": not auth.is_fault})
            yield MessageHandler.send_reply(reply, request)

``Utils`` provides the deterministic host-information functions of section
4.2: each one round-trips through voter agreement, so every replica
observes the identical value regardless of host clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.perpetual.executor import CurrentTime, Random, Timestamp
from repro.soap.addressing import WsAddressing
from repro.soap.envelope import SoapEnvelope
from repro.soap.faults import fault_of


@dataclass
class Options:
    """Per-request options (the Axis2 ``Options`` object).

    ``timeout_ms`` arms the deterministic abort: if no reply is agreed
    before the timeout, every calling replica aborts the request at the
    same logical point (paper section 4.2). ``None`` — the default —
    never aborts.
    """

    timeout_ms: int | None = None

    def set_timeout_in_milliseconds(self, value: int) -> None:
        """Paper-faithful alias for configuring the abort timeout."""
        self.timeout_ms = value


class MessageContext:
    """One SOAP message plus its delivery metadata.

    Mirrors ``org.apache.axis2.context.MessageContext``: the envelope, the
    addressing fields, and the per-request :class:`Options`. Constructed
    by applications for outgoing messages (``to`` + ``body``) and by the
    middleware for incoming ones.
    """

    def __init__(
        self,
        to: str = "",
        body: Any = None,
        action: str = "",
        options: Options | None = None,
        envelope: SoapEnvelope | None = None,
    ) -> None:
        self.envelope = envelope if envelope is not None else SoapEnvelope()
        if to:
            WsAddressing.set_to(self.envelope, to)
        if action:
            WsAddressing.set_action(self.envelope, action)
        if body is not None:
            self.envelope.body = body
        self.options = options or Options()
        # Filled by pipes / adapter.
        self.message_id: str = WsAddressing.message_id(self.envelope)
        self.relates_to: str = WsAddressing.relates_to(self.envelope)
        self.caller: str = ""
        self.local_service: str = ""
        # "request" or "reply", set by the adapter on received contexts.
        self.kind: str = ""
        self._allocate = None

    # -- payload accessors ---------------------------------------------------

    @property
    def body(self) -> Any:
        return self.envelope.body

    @body.setter
    def body(self, value: Any) -> None:
        self.envelope.body = value

    @property
    def to(self) -> str:
        return WsAddressing.to(self.envelope)

    @property
    def reply_to(self) -> str:
        return WsAddressing.reply_to(self.envelope)

    @property
    def is_fault(self) -> bool:
        return fault_of(self.envelope) is not None

    @property
    def fault(self):
        return fault_of(self.envelope)

    # -- used by the AddressingOutHandler ------------------------------------

    def allocate_message_id(self) -> str:
        if self._allocate is None:
            raise RuntimeError(
                "MessageContext not bound to a replica message-id allocator"
            )
        return self._allocate()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MessageContext(to={self.to!r}, message_id={self.message_id!r}, "
            f"relates_to={self.relates_to!r}, fault={self.is_fault})"
        )


# ---------------------------------------------------------------------------
# Operations applications yield
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WsSend:
    context: MessageContext


@dataclass(frozen=True)
class WsReceiveReply:
    request: MessageContext | None = None


@dataclass(frozen=True)
class WsSendReceive:
    context: MessageContext


@dataclass(frozen=True)
class WsReceiveRequest:
    pass


@dataclass(frozen=True)
class WsReceiveAny:
    pass


@dataclass(frozen=True)
class WsSendReply:
    reply: MessageContext
    request: MessageContext


@dataclass(frozen=True)
class WsCompute:
    """Simulated request-processing CPU time (benchmark workloads)."""

    cpu_us: int


class MessageHandler:
    """Namespace of the messaging operations of paper Figure 3.

    Each method returns an operation object the application yields; the
    adapter performs it and resumes the application with the outcome.
    """

    @staticmethod
    def send(request: MessageContext) -> WsSend:
        """Sends the message without blocking; resumes with the message id."""
        return WsSend(request)

    @staticmethod
    def receive_reply(request: MessageContext | None = None) -> WsReceiveReply:
        """Blocks for the next reply (or for a specific request's reply);
        resumes with the reply MessageContext."""
        return WsReceiveReply(request)

    @staticmethod
    def send_receive(request: MessageContext) -> WsSendReceive:
        """Sends the message and blocks for its reply (synchronous MEP)."""
        return WsSendReceive(request)

    @staticmethod
    def receive_request() -> WsReceiveRequest:
        """Blocks for the next incoming request."""
        return WsReceiveRequest()

    @staticmethod
    def send_reply(reply: MessageContext, request: MessageContext) -> WsSendReply:
        """Asynchronously sends ``reply`` as the response to ``request``."""
        return WsSendReply(reply, request)

    @staticmethod
    def receive_any() -> WsReceiveAny:
        """Blocks for the next agreed event — an incoming request *or* a
        reply to one of this service's out-calls, whichever the voter
        group agreed first.

        Resumes with a MessageContext whose ``kind`` attribute is
        ``"request"`` or ``"reply"``. This exposes Perpetual's local
        event queue directly and is what fully-asynchronous services use
        to overlap serving new requests with in-flight out-calls.
        """
        return WsReceiveAny()

    @staticmethod
    def compute(cpu_us: int) -> WsCompute:
        """Consume simulated CPU (models non-trivial business logic)."""
        return WsCompute(cpu_us)


class Utils:
    """Deterministic utility functions (paper Figure 3 / section 4.2).

    The returned operations resolve through voter agreement: the primary
    proposes a value and the group agrees, so replicas never diverge even
    though their host clocks do.
    """

    @staticmethod
    def current_time_millis() -> CurrentTime:
        """Replaces ``System.currentTimeMillis()``; resumes with int ms."""
        return CurrentTime()

    @staticmethod
    def timestamp() -> Timestamp:
        """Replaces direct ``java.util.Date`` creation; resumes with an
        agreed timestamp in milliseconds."""
        return Timestamp()

    @staticmethod
    def random() -> Random:
        """Replaces direct ``java.util.Random`` creation; resumes with a
        ``random.Random`` seeded identically on every replica."""
        return Random()
