"""Bridges WS-level applications onto the Perpetual executor model.

The adapter is the reproduction's MessageHandler *implementation* (the
darkly shaded middleware box of paper Figure 4): it wraps a WS application
generator in an executor-level generator, translating each yielded
operation:

- ``WsSend`` — stamp WS-Addressing headers through the OUT-PIPE, marshal
  the envelope, and issue the Perpetual ``Send``; record the
  messageID <-> RequestId correlation;
- ``WsReceiveReply`` — block on the Perpetual reply, demarshal through the
  IN-PIPE, and synthesise a SOAP fault context for deterministic aborts;
- ``WsReceiveRequest`` / ``WsSendReply`` — mirror path on the target side,
  copying ``wsa:messageID`` into ``wsa:relatesTo`` and ``wsa:replyTo``
  into ``wsa:to`` exactly as section 5.1 describes;
- ``Utils`` operations pass straight through to voter agreement, with
  ``timestamp()`` converting the agreed milliseconds into a ``datetime``.

Message ids come from a deterministic per-replica counter — every correct
replica runs the same application, so the counters agree; a UUID source
would silently break replica consistency.
"""

from __future__ import annotations

import datetime
from typing import Any, Callable, Generator, Iterator

from repro.common.errors import ExecutorViolation
from repro.common.ids import RequestId
from repro.perpetual.executor import (
    AppFactory,
    Compute,
    CurrentTime,
    Random,
    ReceiveAny,
    ReceiveReply,
    ReceiveRequest,
    ReplyEvent,
    RequestEvent,
    Send,
    SendReply,
    Sleep,
    Timestamp,
)
from repro.soap.addressing import WsAddressing
from repro.soap.engine import SoapEngine
from repro.soap.faults import CODE_ABORTED, make_fault_envelope
from repro.ws.api import (
    MessageContext,
    WsCompute,
    WsReceiveAny,
    WsReceiveReply,
    WsReceiveRequest,
    WsSend,
    WsSendReceive,
    WsSendReply,
)

WsAppFactory = Callable[[], Generator[Any, Any, None]]

#: Simulated CPU for one XML marshal / demarshal pass. Calibrated to the
#: paper's testbed class; section 6.4 notes this cost is dwarfed by the
#: ChannelAdapter's authentication and encryption work.
MARSHAL_CPU_US = 120
DEMARSHAL_CPU_US = 120

#: Fixed reference for agreed-timestamp construction (see Timestamp below).
_UTC_EPOCH = datetime.datetime(1970, 1, 1, tzinfo=datetime.timezone.utc)


class WsAdapter:
    """Builds the executor app for one replica of a WS application."""

    def __init__(
        self,
        service: str,
        app_factory: WsAppFactory,
        engine: SoapEngine | None = None,
        resolve: Callable[[str], str] | None = None,
        marshal_cpu_us: int = MARSHAL_CPU_US,
        demarshal_cpu_us: int = DEMARSHAL_CPU_US,
    ) -> None:
        self.service = service
        self.engine = engine or SoapEngine()
        self._app_factory = app_factory
        self._resolve = resolve or (lambda endpoint: endpoint)
        self._marshal_cpu_us = marshal_cpu_us
        self._demarshal_cpu_us = demarshal_cpu_us
        self._msg_counter = 0
        # Correlation state.
        self._rid_by_mid: dict[str, RequestId] = {}
        self._mid_by_rid: dict[RequestId, str] = {}
        self._event_by_mid: dict[str, RequestEvent] = {}
        self.requests_served = 0
        self.replies_received = 0

    # ------------------------------------------------------------------

    def _allocate_message_id(self) -> str:
        self._msg_counter += 1
        return f"urn:{self.service}:msg:{self._msg_counter}"

    def _bind(self, context: MessageContext) -> MessageContext:
        context.local_service = self.service
        context._allocate = self._allocate_message_id
        return context

    def executor_app(self) -> AppFactory:
        """The executor-level generator factory for this replica."""

        def app() -> Iterator[Any]:
            gen = self._app_factory()
            resume: Any = None
            throw: BaseException | None = None
            while True:
                try:
                    if throw is not None:
                        op, throw = gen.throw(throw), None
                    else:
                        op = gen.send(resume)
                except StopIteration:
                    return
                try:
                    resume = yield from self._perform(op)
                except ExecutorViolation:
                    raise
                except Exception as exc:  # surface app-level misuse
                    throw = exc
                    resume = None

        return app

    # ------------------------------------------------------------------
    # Operation translation
    # ------------------------------------------------------------------

    def _perform(self, op: Any):
        if isinstance(op, WsSend):
            message_id = yield from self._do_send(op.context)
            return message_id
        if isinstance(op, WsSendReceive):
            yield from self._do_send(op.context)
            return (yield from self._do_receive_reply(op.context))
        if isinstance(op, WsReceiveReply):
            return (yield from self._do_receive_reply(op.request))
        if isinstance(op, WsReceiveRequest):
            return (yield from self._do_receive_request())
        if isinstance(op, WsReceiveAny):
            return (yield from self._do_receive_any())
        if isinstance(op, WsSendReply):
            yield from self._do_send_reply(op.reply, op.request)
            return None
        if isinstance(op, WsCompute):
            yield Compute(op.cpu_us)
            return None
        if isinstance(op, (CurrentTime, Random, Sleep)):
            value = yield op
            return value
        if isinstance(op, Timestamp):
            millis = yield op
            # Integer timedelta arithmetic from the fixed epoch: the
            # float-seconds fromtimestamp path rounds, and without tz=
            # would read the host's local timezone — either way replicas
            # could disagree on the same agreed millis.
            return _UTC_EPOCH + datetime.timedelta(milliseconds=millis)
        raise ExecutorViolation(f"application yielded unknown operation: {op!r}")

    def _do_send(self, context: MessageContext):
        self._bind(context)
        if not context.to:
            raise ExecutorViolation("outgoing MessageContext has no wsa:To")
        if self._marshal_cpu_us:
            yield Compute(self._marshal_cpu_us)
        payload = self.engine.send_through(context)
        context.message_id = WsAddressing.message_id(context.envelope)
        target = self._resolve(context.to)
        request_id = yield Send(
            target=target,
            payload=payload,
            timeout_ms=context.options.timeout_ms,
        )
        self._rid_by_mid[context.message_id] = request_id
        self._mid_by_rid[request_id] = context.message_id
        return context.message_id

    def _do_receive_reply(self, request: MessageContext | None):
        if request is None:
            event = yield ReceiveReply()
        else:
            request_id = self._rid_by_mid.get(request.message_id)
            if request_id is None:
                raise ExecutorViolation(
                    f"receive_reply for unknown request {request.message_id!r}"
                )
            event = yield ReceiveReply(request_id)
        self.replies_received += 1
        if self._demarshal_cpu_us and not event.aborted:
            yield Compute(self._demarshal_cpu_us)
        return self._reply_context(event)

    def _do_receive_any(self):
        event = yield ReceiveAny()
        if self._demarshal_cpu_us and not getattr(event, "aborted", False):
            yield Compute(self._demarshal_cpu_us)
        if isinstance(event, RequestEvent):
            return self._request_context(event)
        context = self._reply_context(event)
        self.replies_received += 1
        return context

    def _reply_context(self, event: ReplyEvent) -> MessageContext:
        message_id = self._mid_by_rid.pop(event.request_id, "")
        self._rid_by_mid.pop(message_id, None)
        if event.aborted:
            envelope = make_fault_envelope(
                CODE_ABORTED, f"request {message_id} aborted by voter agreement"
            )
            WsAddressing.set_relates_to(envelope, message_id)
            context = MessageContext(envelope=envelope)
        else:
            context = self._bind(MessageContext())
            self.engine.receive_through(context, event.payload)
        context.relates_to = WsAddressing.relates_to(context.envelope) or message_id
        context.message_id = WsAddressing.message_id(context.envelope)
        context.kind = "reply"
        return context

    def _do_receive_request(self):
        event = yield ReceiveRequest()
        if self._demarshal_cpu_us:
            yield Compute(self._demarshal_cpu_us)
        return self._request_context(event)

    def _request_context(self, event: RequestEvent) -> MessageContext:
        context = self._bind(MessageContext())
        self.engine.receive_through(context, event.payload)
        context.caller = event.caller
        context.kind = "request"
        context.message_id = WsAddressing.message_id(context.envelope)
        self._event_by_mid[context.message_id] = event
        self.requests_served += 1
        return context

    def _do_send_reply(self, reply: MessageContext, request: MessageContext):
        event = self._event_by_mid.pop(request.message_id, None)
        if event is None:
            raise ExecutorViolation(
                f"send_reply for unknown or already answered request "
                f"{request.message_id!r}"
            )
        self._bind(reply)
        # Section 5.1: the reply's wsa:To is the request's wsa:ReplyTo and
        # its wsa:RelatesTo is the request's wsa:MessageID.
        WsAddressing.set_to(reply.envelope, WsAddressing.reply_to(request.envelope))
        WsAddressing.set_relates_to(reply.envelope, request.message_id)
        if self._marshal_cpu_us:
            yield Compute(self._marshal_cpu_us)
        payload = self.engine.send_through(reply)
        yield SendReply(event, payload)


def collecting_executor_factory(
    service: str,
    app_factory: WsAppFactory,
    adapters: list["WsAdapter"],
    engine_factory: Callable[[], SoapEngine] | None = None,
    resolve: Callable[[str], str] | None = None,
) -> Callable[[], Any]:
    """The per-replica executor factory every substrate deploys with.

    Each invocation (one per replica, in replica order — the driver
    constructs its executor eagerly) builds a fresh engine and adapter,
    appends the adapter to ``adapters`` for observability, and returns
    the executor-level generator. ``resolve`` defaults to the static
    registry resolution so ``perpetual://`` endpoint references work
    identically on every substrate.
    """
    if resolve is None:
        from repro.ws.registry import ServiceRegistry

        resolve = ServiceRegistry.service_name

    def factory() -> Any:
        engine = engine_factory() if engine_factory is not None else SoapEngine()
        adapter = WsAdapter(
            service=service,
            app_factory=app_factory,
            engine=engine,
            resolve=resolve,
        )
        adapters.append(adapter)
        return adapter.executor_app()()

    return factory


def adapt_service(
    service: str,
    app_factory: WsAppFactory,
    engine_factory: Callable[[], SoapEngine] | None = None,
    resolve: Callable[[str], str] | None = None,
) -> Callable[[int], tuple[AppFactory, WsAdapter]]:
    """Per-replica adapter factory used by the deployment layer."""

    def build(index: int) -> tuple[AppFactory, WsAdapter]:
        engine = engine_factory() if engine_factory is not None else SoapEngine()
        adapter = WsAdapter(
            service=service,
            app_factory=app_factory,
            engine=engine,
            resolve=resolve,
        )
        return adapter.executor_app(), adapter

    return build
