"""Perpetual: Byzantine fault-tolerant replicated-to-replicated interaction.

Implements the algorithm of paper section 2.1 (Figure 1): each service
replica is a co-located (voter, driver) pair; voter groups run CLBFT to
agree on external requests and on replies to the service's own out-calls;
drivers host the application *executor* — a deterministic, long-running,
single thread of computation that issues requests, consumes replies, and
serves incoming requests, synchronously or asynchronously.

Package layout:

- :mod:`repro.perpetual.executor`  -- the effect-based executor model
  (``Send`` / ``ReceiveReply`` / ``ReceiveRequest`` / ``SendReply`` /
  ``Compute`` / ``CurrentTime`` / ``Timestamp`` / ``Random``);
- :mod:`repro.perpetual.messages`  -- Perpetual wire messages (stage-1
  requests, stage-5 reply forwards, stage-6 reply bundles, stage-7 result
  submissions) and agreement-item construction;
- :mod:`repro.perpetual.voter`     -- the voter node (embeds CLBFT);
- :mod:`repro.perpetual.driver`    -- the driver node (hosts the executor);
- :mod:`repro.perpetual.group`     -- topology and deployment of service
  groups on the simulation kernel;
- :mod:`repro.perpetual.scheduler` -- deterministic round-robin scheduling
  of multiple executor coroutines (the paper's section 7 future-work
  direction, provided as an extension).

Contract: voters and drivers are deterministic protocol nodes speaking
only through their ChannelAdapter (encode-once / digest-once, see
``docs/architecture.md``); with batching enabled they expose the
``wants_flush``/``on_flush`` hooks the substrates call at tick/handler
boundaries.
"""

from repro.perpetual.executor import (
    Compute,
    CurrentTime,
    ExecutorRuntime,
    Random,
    ReceiveAny,
    ReceiveReply,
    ReceiveRequest,
    ReplyEvent,
    RequestEvent,
    Send,
    SendReply,
    Timestamp,
)
from repro.perpetual.group import ServiceGroup, Topology

__all__ = [
    "Compute",
    "CurrentTime",
    "ExecutorRuntime",
    "Random",
    "ReceiveAny",
    "ReceiveReply",
    "ReceiveRequest",
    "ReplyEvent",
    "RequestEvent",
    "Send",
    "SendReply",
    "ServiceGroup",
    "Timestamp",
    "Topology",
]
