"""Topology and deployment of Perpetual service groups.

:class:`Topology` is the in-memory form of the paper's ``replicas.xml``
(section 5.2): every deployment ships a static map from service name to
replica-group description because UDDI cannot resolve replicated endpoint
references. :class:`ServiceGroup` deploys one service's voters and drivers
on the simulation kernel, co-locating each replica's pair on one simulated
host CPU exactly as the paper co-locates them on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.config import ServiceSpec, make_spec
from repro.common.errors import ConfigurationError
from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.crypto.keys import KeyStore
from repro.perpetual.driver import DriverNode
from repro.perpetual.executor import AppFactory
from repro.perpetual.voter import VoterNode, driver_name, voter_name
from repro.sim.kernel import Simulator


@dataclass
class Topology:
    """The deployment-wide service registry (``replicas.xml`` stand-in)."""

    specs: dict[str, ServiceSpec] = field(default_factory=dict)

    def add(self, name: str, n: int) -> ServiceSpec:
        spec = make_spec(name, n)
        self.specs[name] = spec
        return spec

    def spec(self, name: str) -> ServiceSpec:
        try:
            return self.specs[name]
        except KeyError:
            raise ConfigurationError(
                f"service {name!r} is not in the deployment topology"
            ) from None

    def spec_or_none(self, name: str) -> ServiceSpec | None:
        return self.specs.get(name)

    def services(self) -> list[str]:
        return sorted(self.specs)


@dataclass
class ServiceGroup:
    """A deployed replica group: n co-located (voter, driver) pairs."""

    service: str
    voters: list[VoterNode]
    drivers: list[DriverNode]

    @property
    def n(self) -> int:
        return len(self.voters)

    def completed_calls(self) -> int:
        """Out-calls completed, as observed by replica 0's driver."""
        return self.drivers[0].completed_calls

    def aborted_calls(self) -> int:
        return self.drivers[0].aborted_calls

    def delivered_requests(self) -> int:
        return self.voters[0].delivered_requests


def build_replica(
    topology: Topology,
    service: str,
    index: int,
    keys: KeyStore,
    app_factory: AppFactory,
    cost_model: CryptoCostModel = MAC_COST_MODEL,
    clbft_overrides: dict | None = None,
    retransmit_timeout_us: int | None = None,
    fault_script: Any | None = None,
    batching: str | int = "off",
    router: Any | None = None,
    home_group: str | None = None,
) -> tuple[VoterNode, DriverNode]:
    """One replica's co-located voter/driver pair, unattached.

    The single construction path every substrate shares — the simulator,
    the threaded cluster, and multi-process workers all build replicas
    here and differ only in the environment they attach. ``fault_script``
    (a :class:`repro.faults.ReplicaFaultScript`) scripts this replica as
    faulty: each half gets its own injector wired into its hooks.
    """
    voter_fault = driver_fault = None
    if fault_script is not None:
        from repro.faults import FaultInjector

        voter_fault = FaultInjector(fault_script, role="voter")
        driver_fault = FaultInjector(fault_script, role="driver")
    voter = VoterNode(
        topology=topology,
        service=service,
        index=index,
        keys=keys,
        cost_model=cost_model,
        clbft_overrides=clbft_overrides,
        fault=voter_fault,
        batching=batching,
    )
    driver_kwargs: dict[str, Any] = {}
    if retransmit_timeout_us is not None:
        driver_kwargs["retransmit_timeout_us"] = retransmit_timeout_us
    driver = DriverNode(
        topology=topology,
        service=service,
        index=index,
        keys=keys,
        app_factory=app_factory,
        cost_model=cost_model,
        fault=driver_fault,
        batching=batching,
        router=router,
        home_group=home_group,
        **driver_kwargs,
    )
    return voter, driver


def deploy_service(
    sim: Simulator,
    topology: Topology,
    keys: KeyStore,
    service: str,
    app_factory: AppFactory,
    cost_model: CryptoCostModel = MAC_COST_MODEL,
    clbft_overrides: dict | None = None,
    retransmit_timeout_us: int | None = None,
    hosts: list[str] | None = None,
    fault_plan: Any | None = None,
    batching: str | int = "off",
    router: Any | None = None,
    home_group: str | None = None,
) -> ServiceGroup:
    """Deploy every replica of ``service`` onto the simulator.

    The voter and driver of replica ``i`` share the simulated host
    ``{service}/h{i}`` so their work serialises on one CPU, matching the
    paper's co-location of both halves on a single machine. ``hosts``
    overrides the host names, letting several services share machines
    (the TPC-W setup runs every RBE on one host).
    """
    spec = topology.spec(service)
    voters: list[VoterNode] = []
    drivers: list[DriverNode] = []
    for index in range(spec.n):
        host = hosts[index] if hosts is not None else f"{service}/h{index}"
        voter, drv = build_replica(
            topology=topology,
            service=service,
            index=index,
            keys=keys,
            app_factory=app_factory,
            cost_model=cost_model,
            clbft_overrides=clbft_overrides,
            retransmit_timeout_us=retransmit_timeout_us,
            fault_script=(
                fault_plan.script_for(service, index)
                if fault_plan is not None else None
            ),
            batching=batching,
            router=router,
            home_group=home_group,
        )
        voter.attach(sim.add_node(voter_name(service, index), voter, host=host))
        voters.append(voter)
        drv.attach(sim.add_node(driver_name(service, index), drv, host=host))
        drivers.append(drv)
    return ServiceGroup(service=service, voters=voters, drivers=drivers)
