"""Perpetual wire messages and agreement items.

The protocol of Figure 1 adds four message types around the two CLBFT
instances:

- :class:`OutRequest`   — stage 1: calling driver -> target voter primary;
- :class:`ReplyForward` — stage 5: target voter -> responder voter;
- :class:`ReplyBundle`  — stage 6: responder -> every calling driver;
- :class:`ResultSubmission` — stage 7: calling driver -> calling voters.

Plus the *local* (same-host) messages between a replica's driver and voter,
and the construction of CLBFT agreement items. Agreement items are
:class:`repro.clbft.messages.ClientRequest` values whose ``(client,
timestamp)`` identity is derived deterministically from the item content
so that every correct voter submits the *same* item and CLBFT's dedup
applies; non-deterministic fields (utility values) are filled in by the
primary only, as in PBFT's standard treatment of non-determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

from repro.clbft.messages import ClientRequest, encode_message, register
from repro.common.ids import RequestId, ServiceId

# Agreement item kinds (the "op" dict carries a matching "kind" field).
ITEM_REQUEST = "req"
ITEM_RESULT = "result"
ITEM_UTILITY = "util"
ITEM_ABORT = "abort"


@register
@dataclass(frozen=True)
class OutRequest:
    """Stage 1: one calling driver's copy of an outgoing request.

    The authenticator on the carrying envelope covers *all* target voters,
    so the target primary can embed ``fc + 1`` matching envelopes in the
    agreement item as proof the calling service issued the request, and
    every target voter can verify its own MAC entry in each.

    ``responder_index`` designates the target voter that will bundle the
    replies (stage 6); the caller rotates it deterministically so retries
    of a request route around a faulty responder.
    """

    KIND: ClassVar[str] = "perp-out-request"
    request_id: RequestId
    caller: ServiceId
    target: ServiceId
    payload: Any
    responder_index: int
    attempt: int = 0


@register
@dataclass(frozen=True)
class ReplyForward:
    """Stage 5: a target voter's reply, routed via the responder.

    ``auth`` is the voter's MAC authenticator over ``(request_id, result)``
    with one entry per *calling driver* (flattened wire form); the
    responder cannot forge it and the calling drivers can each verify
    their own entry.
    """

    KIND: ClassVar[str] = "perp-reply-forward"
    request_id: RequestId
    result: Any
    voter_index: int
    auth: list


@register
@dataclass(frozen=True)
class ReplyBundle:
    """Stage 6: the responder's bundle of ``ft + 1`` matching replies."""

    KIND: ClassVar[str] = "perp-reply-bundle"
    request_id: RequestId
    result: Any
    vouchers: tuple  # tuple of (voter_index, wire-auth) pairs


@register
@dataclass(frozen=True)
class ResultSubmission:
    """Stage 7: a calling driver's verified result, echoed to its voters.

    A correct voter treats the result as valid when its *co-located*
    driver echoed it (same failure domain) or when ``fc + 1`` distinct
    drivers did (at least one correct host vouches).
    """

    KIND: ClassVar[str] = "perp-result-submission"
    request_id: RequestId
    result: Any
    aborted: bool = False


@register
@dataclass(frozen=True)
class UtilityRequest:
    """Local driver -> voter: the executor needs an agreed utility value."""

    KIND: ClassVar[str] = "perp-utility-request"
    util_seq: int
    utility: str  # "time" | "timestamp" | "random"


@register
@dataclass(frozen=True)
class AbortRequest:
    """Local driver -> voter: a request's timeout fired; propose abort."""

    KIND: ClassVar[str] = "perp-abort-request"
    request_id: RequestId


@register
@dataclass(frozen=True)
class LocalResult:
    """Local driver -> voter, stage 4: the executor's reply to an incoming
    request, ready for forwarding to the responder."""

    KIND: ClassVar[str] = "perp-local-result"
    request_id: RequestId
    result: Any


@register
@dataclass(frozen=True)
class AgreedEvent:
    """Local voter -> driver, stages 3 and 9: one agreed event.

    ``kind`` selects the payload interpretation: an incoming request, a
    reply to an out-call, an agreed utility value, or an abort decision.
    """

    KIND: ClassVar[str] = "perp-agreed-event"
    kind: str
    body: Any


# ---------------------------------------------------------------------------
# Agreement item construction
# ---------------------------------------------------------------------------


def request_item(out_request_wire: Any, proof: list) -> ClientRequest:
    """Agreement item for an external request (submitted by the target
    primary with the ``fc + 1`` supporting envelopes as proof)."""
    request_id = _wire_request_id(out_request_wire)
    return ClientRequest(
        client=f"{ITEM_REQUEST}/{request_id}",
        timestamp=0,
        op={"kind": ITEM_REQUEST, "request": out_request_wire, "proof": proof},
    )


def result_item(request_id: RequestId, result: Any, aborted: bool = False) -> ClientRequest:
    """Agreement item for the result of one of the service's out-calls."""
    return ClientRequest(
        client=f"{ITEM_RESULT}/{request_id}",
        timestamp=0,
        op={
            "kind": ITEM_RESULT,
            "request_id": request_id,
            "value": result,
            "aborted": aborted,
        },
    )


def utility_item(util_seq: int, utility: str, value: int | None) -> ClientRequest:
    """Agreement item for a deterministic utility value.

    All voters submit the value-free form (identical identity); the
    primary's proposal carries its chosen ``value``. CLBFT agrees on the
    primary's version; bounds checking is the validation hook's job.
    """
    op: dict[str, Any] = {"kind": ITEM_UTILITY, "utility": utility}
    if value is not None:
        op["value"] = value
    return ClientRequest(client=ITEM_UTILITY, timestamp=util_seq, op=op)


def abort_item(request_id: RequestId) -> ClientRequest:
    """Agreement item for the deterministic abort of an out-call."""
    return ClientRequest(
        client=f"{ITEM_ABORT}/{request_id}",
        timestamp=0,
        op={"kind": ITEM_ABORT, "request_id": request_id},
    )


def reply_auth_bytes(request_id: RequestId, result: Any) -> bytes:
    """Canonical bytes both ends MAC for stage-5/6 reply vouchers.

    Target voters sign these bytes for the calling drivers; calling
    drivers recompute them from the bundle to verify each voucher.
    """
    # analysis: allow(WIRE001) — MAC input, not a wire send: target
    # voters and calling drivers must each derive these bytes from their
    # own decoded values, so there is no shared blob to reuse
    return encode_message((request_id, result))


def item_kind(request: ClientRequest) -> str:
    op = request.op
    if isinstance(op, dict):
        return op.get("kind", "")
    return ""


def _wire_request_id(out_request_wire: Any) -> Any:
    """Extract the request id from a wire-form OutRequest dict."""
    if isinstance(out_request_wire, dict) and "v" in out_request_wire:
        return out_request_wire["v"].get("request_id")
    return out_request_wire
