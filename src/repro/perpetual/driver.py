"""The Perpetual driver node.

One driver runs per service replica, co-located with the replica's voter.
The driver hosts the *executor* — the application's deterministic thread
of computation — and performs the active sides of Figure 1:

- stage 1: ship the executor's out-calls to the target voter primary,
  authenticated for every target voter, with retransmission to the whole
  target group (and deterministic responder rotation) on timeout;
- stage 4: hand the executor's replies to the co-located voter;
- stage 7: verify reply bundles from target responders (``ft + 1``
  distinct voter MACs over the result) and echo the verified result to
  the calling voter group;
- timeouts: when an out-call carried a timeout, propose the deterministic
  abort to the voter group when it expires.

All state the executor observes flows through voter agreement, so every
correct replica's executor sees the identical event sequence.
"""

from __future__ import annotations

from typing import Any

from repro.clbft.messages import decode_message, encode_message
from repro.common.encoding import IdentityMemo
from repro.common.ids import RequestId, RequestIdAllocator, ServiceId
from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.crypto.keys import KeyStore
from repro.perpetual.executor import (
    AppFactory,
    ExecutorRuntime,
    ReplyEvent,
    RequestEvent,
    Send,
)
from repro.perpetual.messages import (
    AgreedEvent,
    LocalResult,
    OutRequest,
    ReplyBundle,
    ResultSubmission,
    UtilityRequest,
    reply_auth_bytes,
)
from repro.common.metrics import METRICS
from repro.perpetual.voter import driver_name, principal_index, voter_name
from repro.sim.kernel import ProtocolNode, SimNodeEnv, US_PER_MS
from repro.sim.rng import DeterministicRng
from repro.transport.channel import CHANNEL_FLUSH_TAG, ChannelAdapter
from repro.transport.connection import SimConnection
from repro.transport.wire import BatchEnvelope, WireEnvelope, auth_from_wire

RETRANSMIT_TIMEOUT_US = 250_000
#: Truncated binary exponential backoff: ceiling on the rearm delay.
RETRANSMIT_CAP_US = 4_000_000
#: Uniform jitter fraction added to each backoff delay (deterministic:
#: drawn from a per-driver seeded stream, so sim runs stay reproducible).
RETRANSMIT_JITTER = 0.1
#: Retry budget: after this many retransmissions the driver proposes the
#: deterministic abort rather than rearming forever.
RETRY_BUDGET = 10

_BUNDLE_AUTH_BYTES = IdentityMemo()


class DriverNode(ProtocolNode):
    """One Perpetual driver, bound to the simulation kernel."""

    def __init__(
        self,
        topology,
        service: str,
        index: int,
        keys: KeyStore,
        app_factory: AppFactory,
        cost_model: CryptoCostModel = MAC_COST_MODEL,
        retransmit_timeout_us: int = RETRANSMIT_TIMEOUT_US,
        retry_budget: int = RETRY_BUDGET,
        fault: Any | None = None,
        batching: str | int = "off",
        router: Any | None = None,
        home_group: str | None = None,
    ) -> None:
        self.topology = topology
        self.service = service
        self.index = index
        self.name = driver_name(service, index)
        self._keys = keys
        self._cost_model = cost_model
        self._retransmit_timeout_us = retransmit_timeout_us
        self._retry_budget = retry_budget
        self._rtx_rng = DeterministicRng(0, f"rtx/{self.name}")
        self._fault = fault
        self._batching = batching
        # Sharded scenarios inject the routing tier: an opaque handle
        # with forward(home_group, target) -> decision.cross_group. The
        # driver never asks which group owns a principal (SHARD001).
        self._router = router
        self._home_group = home_group
        self.wants_flush = batching == "tick"
        self._env: SimNodeEnv | None = None
        self._channel: ChannelAdapter | None = None
        self._allocator = RequestIdAllocator(ServiceId(service), start=1)
        self.runtime = ExecutorRuntime(
            app_factory=app_factory,
            allocate_request_id=self._allocator.next_id,
        )
        # Out-calls awaiting a reply: request-id -> the Send effect's data.
        self._outstanding: dict[RequestId, OutRequest] = {}
        self._timeouts_ms: dict[RequestId, int | None] = {}
        self._echoed: set[RequestId] = set()
        self._util_seq = 0

        # Observability.
        self.completed_calls = 0
        self.aborted_calls = 0
        self.first_issue_us: int | None = None
        self.last_completion_us: int = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, env: SimNodeEnv) -> None:
        if self._fault is not None:
            env = self._fault.wrap_env(env)
        self._env = env
        window = self._batching if isinstance(self._batching, int) else None
        self._channel = ChannelAdapter(
            me=self.name,
            keys=self._keys,
            connection=SimConnection(env),
            charge=env.charge,
            cost_model=self._cost_model,
            encode=encode_message,
            decode=decode_message,
            batching=self._batching,
            on_first_pending=(
                None if window is None
                else lambda: env.set_timer(CHANNEL_FLUSH_TAG, window)
            ),
        )

    @property
    def voter(self) -> str:
        return voter_name(self.service, self.index)

    @property
    def in_flight_calls(self) -> int:
        """Out-calls issued but not yet settled (completed or aborted).

        Real-parallelism runtimes use this as the workload-done signal: a
        scenario is settled when every live driver reports zero and the
        message queues are drained.
        """
        return len(self._outstanding)

    def _own_voters(self) -> list[str]:
        spec = self.topology.spec(self.service)
        return [voter_name(self.service, i) for i in range(spec.n)]

    # ------------------------------------------------------------------
    # Kernel entry points
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        # Active applications may compute and issue out-calls before any
        # message arrives (the long-running thread of section 4.1).
        self._pump()

    def on_message(self, src: Any, msg: Any) -> None:
        if self._fault is not None and not self._fault.deliver_ok(src):
            return
        if isinstance(msg, WireEnvelope):
            self._on_envelope(msg)
            return
        if isinstance(msg, BatchEnvelope):
            for inner in self._channel.open_batch(msg):
                self._on_envelope(inner)
            return
        if isinstance(msg, AgreedEvent):
            self._on_agreed_event(msg)

    def _on_envelope(self, envelope: WireEnvelope) -> None:
        protocol_msg = self._channel.accept(envelope)
        if protocol_msg is None:
            return
        sender = self._channel.sender_of(envelope)
        if isinstance(protocol_msg, ReplyBundle):
            self._on_reply_bundle(sender, protocol_msg)

    def on_flush(self) -> None:
        self._channel.flush()

    def on_timer(self, tag: Any) -> None:
        if self._fault is not None and self._fault.on_timer(tag):
            return
        if tag == "sleep":
            self.runtime.deliver_wakeup()
            self._pump()
            return
        if tag == CHANNEL_FLUSH_TAG:
            self._channel.flush()
            return
        kind, request_id = tag
        if request_id not in self._outstanding:
            return
        if kind == "rtx":
            self._retransmit(request_id)
        elif kind == "abort":
            self._propose_abort(request_id)

    # ------------------------------------------------------------------
    # Executor pump
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        """Resume the executor and act on everything it emitted."""
        self.runtime.step()
        outbox = self.runtime.take_outbox()
        if outbox.compute_us:
            self._env.charge(outbox.compute_us)
        for request_id, send in outbox.sends:
            self._issue(request_id, send)
        for reply in outbox.replies:
            self._env.local_deliver(
                self.voter,
                LocalResult(
                    request_id=reply.request.request_id, result=reply.payload
                ),
            )
        if outbox.utility is not None:
            self._util_seq += 1
            self._env.local_deliver(
                self.voter,
                UtilityRequest(util_seq=self._util_seq, utility=outbox.utility),
            )
        if outbox.sleep_us is not None:
            self._env.set_timer("sleep", outbox.sleep_us)

    # ------------------------------------------------------------------
    # Stage 1: issuing out-calls
    # ------------------------------------------------------------------

    def _issue(self, request_id: RequestId, send: Send) -> None:
        if self._router is not None:
            METRICS.requests_routed += 1
            if self._router.forward(self._home_group, send.target).cross_group:
                METRICS.cross_group_calls += 1
        spec = self.topology.spec(send.target)
        request = OutRequest(
            request_id=request_id,
            caller=ServiceId(self.service),
            target=ServiceId(send.target),
            payload=send.payload,
            responder_index=request_id.seqno % spec.n,
            attempt=0,
        )
        self._outstanding[request_id] = request
        self._timeouts_ms[request_id] = send.timeout_ms
        if self.first_issue_us is None:
            self.first_issue_us = self._env.now_us()
        self._transmit_request(request, to_all=False)
        self._env.set_timer(("rtx", request_id), self._retransmit_delay_us(0))
        if send.timeout_ms is not None:
            self._env.set_timer(("abort", request_id), send.timeout_ms * US_PER_MS)

    def _transmit_request(self, request: OutRequest, to_all: bool) -> None:
        """Send a stage-1 request, authenticated for every target voter.

        The primary-only fast path matches the paper; retransmissions go
        to the whole group, whose members relay to their current primary.
        The channel signs for the full audience from one encoding pass.
        """
        spec = self.topology.spec(str(request.target))
        voters = [voter_name(str(request.target), i) for i in range(spec.n)]
        if to_all:
            self._channel.multicast(voters, request)
        else:
            primary_hint = voter_name(str(request.target), 0)
            self._channel.multicast_to(voters, [primary_hint], request)

    def _retransmit_delay_us(self, attempt: int) -> int:
        """Backoff schedule: truncated binary exponential with jitter.

        ``base * 2^attempt`` capped at :data:`RETRANSMIT_CAP_US`, plus a
        uniform jitter of up to :data:`RETRANSMIT_JITTER` of the delay so
        a whole calling group does not retransmit in lockstep. The jitter
        stream is seeded per driver name, keeping simulator runs
        deterministic.
        """
        base = min(self._retransmit_timeout_us << attempt, RETRANSMIT_CAP_US)
        spread = int(base * RETRANSMIT_JITTER)
        if spread <= 0:
            return base
        return base + self._rtx_rng.randint(0, spread)

    def _retransmit(self, request_id: RequestId) -> None:
        request = self._outstanding[request_id]
        attempt = request.attempt + 1
        if attempt > self._retry_budget:
            # Budget exhausted: stop rearming and propose the
            # deterministic abort so the call settles instead of
            # retrying a dead or unreachable target forever.
            self._propose_abort(request_id)
            return
        spec = self.topology.spec(str(request.target))
        retried = OutRequest(
            request_id=request.request_id,
            caller=request.caller,
            target=request.target,
            payload=request.payload,
            responder_index=(request.responder_index + 1) % spec.n,
            attempt=attempt,
        )
        self._outstanding[request_id] = retried
        METRICS.retransmissions += 1
        self._transmit_request(retried, to_all=True)
        self._env.set_timer(("rtx", request_id), self._retransmit_delay_us(attempt))

    # ------------------------------------------------------------------
    # Stage 7: reply bundles
    # ------------------------------------------------------------------

    def _on_reply_bundle(self, sender: str, bundle: ReplyBundle) -> None:
        request = self._outstanding.get(bundle.request_id)
        if request is None or bundle.request_id in self._echoed:
            return
        target = str(request.target)
        sender_index = principal_index(sender)
        if sender_index is None or sender != voter_name(target, sender_index):
            return
        if not self._verify_bundle(target, bundle):
            return
        self._echoed.add(bundle.request_id)
        submission = ResultSubmission(
            request_id=bundle.request_id, result=bundle.result
        )
        self._echo_submission(submission)

    def _verify_bundle(self, target: str, bundle: ReplyBundle) -> bool:
        """Check ``ft + 1`` distinct target voters vouch for the result."""
        spec = self.topology.spec(target)
        # Every calling driver receives the same decoded bundle object, so
        # the vouched-for bytes are recomputed once per bundle, not per
        # driver.
        data = _BUNDLE_AUTH_BYTES.get(
            bundle, lambda b: reply_auth_bytes(b.request_id, b.result)
        )
        factory = self._channel.auth_factory
        vouching = set()
        for voter_index, wire_auth in bundle.vouchers:
            self._env.charge(self._cost_model.verification_cost_us())
            try:
                auth = auth_from_wire(wire_auth)
            except (ValueError, TypeError):
                continue
            if auth.sender != voter_name(target, voter_index):
                continue
            if factory.verify(data, auth):
                vouching.add(voter_index)
        return len(vouching) >= spec.f + 1

    def _echo_submission(self, submission: ResultSubmission) -> None:
        """Echo a verified (or timed-out) result to every calling voter."""
        remote = [v for v in self._own_voters() if v != self.voter]
        if remote:
            self._channel.multicast(remote, submission)
        self._env.local_deliver(self.voter, submission)

    def _propose_abort(self, request_id: RequestId) -> None:
        self._echo_submission(
            ResultSubmission(request_id=request_id, result=None, aborted=True)
        )

    # ------------------------------------------------------------------
    # Stages 3 and 9: agreed events from the voter
    # ------------------------------------------------------------------

    def _on_agreed_event(self, event: AgreedEvent) -> None:
        if event.kind == "request":
            body = event.body
            self.runtime.deliver_request(
                RequestEvent(
                    request_id=body["request_id"],
                    caller=body["caller"],
                    payload=body["payload"],
                    responder_index=body["responder_index"],
                )
            )
        elif event.kind == "reply":
            body = event.body
            request_id = body["request_id"]
            self._settle(request_id)
            self.last_completion_us = self._env.now_us()
            if body["aborted"]:
                self.aborted_calls += 1
            else:
                self.completed_calls += 1
            self.runtime.deliver_reply(
                ReplyEvent(
                    request_id=request_id,
                    payload=body["value"],
                    aborted=body["aborted"],
                )
            )
        elif event.kind == "utility":
            body = event.body
            self.runtime.deliver_utility(body["utility"], body["value"])
        self._pump()

    def _settle(self, request_id: RequestId) -> None:
        self._outstanding.pop(request_id, None)
        self._timeouts_ms.pop(request_id, None)
        self._echoed.discard(request_id)
        self._env.cancel_timer(("rtx", request_id))
        self._env.cancel_timer(("abort", request_id))
