"""Deterministic scheduling of multiple application coroutines.

Paper section 7 plans "a deterministic thread scheduler for Perpetual-WS
... [to] write multi-threaded Web Service applications", citing
deterministic-multithreading work. This module provides that extension
within the coroutine model: :func:`round_robin` composes several
generator applications into one deterministic executor application.

Scheduling policy: strict round-robin over *runnable* coroutines. A
coroutine blocked on an unsatisfiable receive is skipped; because
runnability is a pure function of the agreed event sequence, every
replica makes the identical scheduling decisions — the property the
cited deterministic schedulers enforce for Java threads.

Receives are partitioned to keep semantics well-defined: each coroutine
declares a ``match`` predicate over incoming request payloads; replies
are routed to the coroutine that issued the request.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterator

from repro.common.errors import ExecutorViolation
from repro.perpetual.executor import (
    Compute,
    ReceiveAny,
    ReceiveReply,
    ReceiveRequest,
    ReplyEvent,
    RequestEvent,
    Send,
    SendReply,
)


class _Thread:
    """One scheduled coroutine and its blocking state."""

    def __init__(self, name: str, gen: Generator,
                 match: Callable[[Any], bool]) -> None:
        self.name = name
        self.gen = gen
        self.match = match
        self.waiting: Any = None          # effect blocked on, or None
        self.resume_value: Any = None      # value to deliver when runnable
        self.runnable = True
        self.finished = False
        self.started = False


def round_robin(
    threads: list[tuple[str, Callable[[], Generator], Callable[[Any], bool]]],
) -> Callable[[], Iterator[Any]]:
    """Compose ``(name, app_factory, request_match)`` triples into one app.

    The composed application multiplexes the Perpetual event queue across
    the coroutines deterministically. Non-blocking effects (Send,
    SendReply, Compute) pass straight through; ReceiveRequest and
    ReceiveReply block only the issuing coroutine.
    """

    def app() -> Iterator[Any]:
        table = [_Thread(name, factory(), match) for name, factory, match in threads]
        rid_owner: dict[Any, _Thread] = {}
        pending_requests: list[RequestEvent] = []
        pending_replies: list[ReplyEvent] = []

        def step(thread: _Thread, value: Any):
            """Advance one coroutine until it blocks; yields pass-throughs."""
            send_value = value
            while True:
                try:
                    if not thread.started:
                        thread.started = True
                        effect = thread.gen.send(None)
                    else:
                        effect = thread.gen.send(send_value)
                except StopIteration:
                    thread.finished = True
                    thread.runnable = False
                    return
                if isinstance(effect, (SendReply, Compute)):
                    send_value = yield effect
                elif isinstance(effect, Send):
                    rid = yield effect
                    rid_owner[rid] = thread
                    send_value = rid
                elif isinstance(effect, (ReceiveRequest, ReceiveReply)):
                    thread.waiting = effect
                    thread.runnable = False
                    return
                else:
                    raise ExecutorViolation(
                        f"scheduler thread {thread.name} yielded "
                        f"unsupported effect {effect!r}"
                    )

        def try_unblock(thread: _Thread) -> bool:
            """Satisfy a blocked coroutine from the buffered events."""
            effect = thread.waiting
            if isinstance(effect, ReceiveRequest):
                for i, event in enumerate(pending_requests):
                    if thread.match(event.payload):
                        pending_requests.pop(i)
                        thread.waiting = None
                        thread.runnable = True
                        thread.resume_value = event
                        return True
                return False
            if isinstance(effect, ReceiveReply):
                for i, event in enumerate(pending_replies):
                    owner = rid_owner.get(event.request_id)
                    if owner is not thread:
                        continue
                    if effect.request is not None and event.request_id != effect.request:
                        continue
                    pending_replies.pop(i)
                    rid_owner.pop(event.request_id, None)
                    thread.waiting = None
                    thread.runnable = True
                    thread.resume_value = event
                    return True
                return False
            return False

        while True:
            progressed = False
            for thread in table:
                if thread.finished:
                    continue
                if not thread.runnable:
                    try_unblock(thread)
                if thread.runnable:
                    value, thread.resume_value = thread.resume_value, None
                    yield from step(thread, value)
                    progressed = True
            if all(t.finished for t in table):
                return
            if progressed:
                continue
            # Every live coroutine is blocked: pull one event from the
            # queue. ReceiveRequest if any coroutine wants requests,
            # otherwise a reply; buffered until someone matches.
            wants_requests = any(
                isinstance(t.waiting, ReceiveRequest) for t in table if not t.finished
            )
            wants_replies = any(
                isinstance(t.waiting, ReceiveReply) for t in table if not t.finished
            )
            if wants_requests and not wants_replies:
                event = yield ReceiveRequest()
                pending_requests.append(event)
            elif wants_replies and not wants_requests:
                event = yield ReceiveReply()
                pending_replies.append(event)
            else:
                event = yield ReceiveAny()
                if isinstance(event, RequestEvent):
                    pending_requests.append(event)
                else:
                    pending_replies.append(event)

    return app
